//! Per-fingerprint circuit breaker for shared-subplan execution.
//!
//! Shared execution concentrates risk as well as cost: a shared group
//! whose one-shot execution keeps failing makes every batch that re-forms
//! it pay the failed attempt *and* the per-consumer detach/re-execute
//! fallback. The breaker caps that tax: after `threshold` *consecutive*
//! failures of the same fingerprint, the breaker opens and the workload
//! optimizer stops forming groups for it — consumers simply run their
//! original plans, with a note in `OptimizerReport::reuse` explaining
//! why. A later successful execution (after [`FailureBreaker::cool_down`]
//! half-opens the breaker) closes it again.
//!
//! The breaker is deliberately *not* time-based: the engine has no
//! background clock, so cooling down is driven by batch arrivals — every
//! `cool_after` batches that observe an open breaker, one probe group is
//! allowed through (half-open). If the probe succeeds the breaker closes;
//! if it fails the breaker re-opens for another round.

use std::collections::HashMap;

/// State of one fingerprint's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Failures below threshold; groups form normally.
    Closed { consecutive_failures: u32 },
    /// Too many consecutive failures; groups are not formed.
    Open { batches_waited: u32 },
    /// One probe group is in flight; its outcome decides the next state.
    HalfOpen,
}

/// Circuit breakers for every fingerprint that ever failed a shared
/// execution. Fingerprints with no entry are implicitly closed.
#[derive(Debug)]
pub struct FailureBreaker {
    threshold: u32,
    cool_after: u32,
    states: HashMap<u64, State>,
}

impl Default for FailureBreaker {
    fn default() -> Self {
        FailureBreaker::new(3, 4)
    }
}

impl FailureBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// half-opens a probe after `cool_after` skipped batches. A zero
    /// `threshold` disables the breaker entirely (it never opens).
    pub fn new(threshold: u32, cool_after: u32) -> Self {
        FailureBreaker {
            threshold,
            cool_after: cool_after.max(1),
            states: HashMap::new(),
        }
    }

    /// Whether shared groups may be formed for this fingerprint right
    /// now. An open breaker counts the ask toward its cool-down and
    /// half-opens (allowing one probe) once `cool_after` asks have been
    /// swallowed.
    pub fn allows(&mut self, fp: u64) -> bool {
        match self.states.get_mut(&fp) {
            None | Some(State::Closed { .. }) | Some(State::HalfOpen) => true,
            Some(State::Open { batches_waited }) => {
                *batches_waited += 1;
                if *batches_waited >= self.cool_after {
                    self.states.insert(fp, State::HalfOpen);
                }
                false
            }
        }
    }

    /// Record a failed shared execution. Returns `true` when this failure
    /// tripped the breaker open (closed→open or a failed half-open
    /// probe), so the caller can count `circuit_breaker_trips` exactly
    /// once per trip.
    pub fn record_failure(&mut self, fp: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let state = self
            .states
            .entry(fp)
            .or_insert(State::Closed { consecutive_failures: 0 });
        match state {
            State::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.threshold {
                    *state = State::Open { batches_waited: 0 };
                    return true;
                }
                false
            }
            State::HalfOpen => {
                // The probe failed: straight back to open.
                *state = State::Open { batches_waited: 0 };
                true
            }
            State::Open { .. } => false,
        }
    }

    /// Record a successful shared execution: the breaker closes and the
    /// consecutive-failure count resets.
    pub fn record_success(&mut self, fp: u64) {
        self.states.remove(&fp);
    }

    /// Whether the breaker is currently open (no probe allowed yet).
    /// Unlike [`FailureBreaker::allows`] this does not advance cool-down.
    pub fn is_open(&self, fp: u64) -> bool {
        matches!(self.states.get(&fp), Some(State::Open { .. }))
    }

    /// Drop all breaker state (e.g. when the cache is cleared).
    pub fn clear(&mut self) {
        self.states.clear();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = FailureBreaker::new(3, 4);
        assert!(!b.record_failure(1));
        assert!(!b.record_failure(1));
        assert!(b.allows(1), "still closed below threshold");
        assert!(b.record_failure(1), "third failure trips");
        assert!(b.is_open(1));
        assert!(!b.allows(1));
    }

    #[test]
    fn success_resets_the_count() {
        let mut b = FailureBreaker::new(2, 4);
        assert!(!b.record_failure(1));
        b.record_success(1);
        assert!(!b.record_failure(1), "count restarted after success");
        assert!(b.record_failure(1));
    }

    #[test]
    fn cool_down_half_opens_then_probe_decides() {
        let mut b = FailureBreaker::new(1, 2);
        assert!(b.record_failure(7));
        // Two swallowed asks reach cool_after; the third is the probe.
        assert!(!b.allows(7));
        assert!(!b.allows(7));
        assert!(b.allows(7), "half-open probe allowed");
        // Failed probe re-opens and counts as a trip.
        assert!(b.record_failure(7));
        assert!(!b.allows(7));
        assert!(!b.allows(7));
        assert!(b.allows(7));
        // Successful probe closes for good.
        b.record_success(7);
        assert!(b.allows(7));
        assert!(!b.is_open(7));
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = FailureBreaker::new(0, 1);
        for _ in 0..10 {
            assert!(!b.record_failure(1));
        }
        assert!(b.allows(1));
    }

    #[test]
    fn fingerprints_are_independent() {
        let mut b = FailureBreaker::new(1, 4);
        assert!(b.record_failure(1));
        assert!(!b.allows(1));
        assert!(b.allows(2), "other fingerprints unaffected");
    }
}
