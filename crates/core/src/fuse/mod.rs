//! The `Fuse(P1, P2)` primitive (Section III).
//!
//! `Fuse` is a recursive procedure over logical plans. It requires the two
//! inputs to have the same root operator (per-operator definitions live in
//! the submodules), with the Section III.G extensions for mismatched
//! roots: a `MarkDistinct` root can be skipped and re-added, a missing
//! `Filter` can be manufactured as `TRUE`, and a missing `Project` can be
//! manufactured as the identity projection. The dispatcher tries the
//! alternatives in that order — the paper's example shows why skipping a
//! `MarkDistinct` must be preferred over injecting a trivial filter.

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod mark_distinct;
pub mod project;
pub mod scan;

use std::sync::{Arc, Mutex, PoisonError};

use fusion_common::{IdGen, Schema};
use fusion_expr::{ColumnMap, Expr};
use fusion_plan::{EnforceSingleRow, LogicalPlan, MarkDistinct, Project, ProjExpr};

/// Shared context for fusion: the session id generator, used to mint
/// compensating columns (counts, masks), plus the trace sink recording
/// every `Fuse` attempt for the optimizer trace.
#[derive(Debug, Clone)]
pub struct FuseContext {
    pub gen: IdGen,
    pub trace: Arc<FuseTrace>,
}

impl FuseContext {
    pub fn new(gen: IdGen) -> Self {
        FuseContext {
            gen,
            trace: Arc::new(FuseTrace::default()),
        }
    }
}

/// One recorded `Fuse(P1, P2)` attempt: which root operator pair was
/// tried and how it ended. Recursive attempts (on the inputs of the pair)
/// are recorded too, so a bailed fusion leaves the innermost reason on
/// the trace.
#[derive(Debug, Clone)]
pub struct FuseEvent {
    /// Root operator of `P1` (e.g. `"Aggregate"`).
    pub left: String,
    /// Root operator of `P2`.
    pub right: String,
    /// Whether this pair fused.
    pub fused: bool,
    /// Outcome detail: compensation triviality on success, the bail
    /// reason on `⊥`.
    pub detail: String,
}

/// Bounded, thread-shared sink for [`FuseEvent`]s. A poisoned lock is
/// recovered: events are append-only strings and stay structurally valid
/// even if a panicking thread held the lock.
#[derive(Debug, Default)]
pub struct FuseTrace {
    events: Mutex<Vec<FuseEvent>>,
}

/// Cap on recorded events so a pathological plan cannot balloon the
/// report; past the cap the trace silently stops growing.
const FUSE_TRACE_CAP: usize = 512;

impl FuseTrace {
    fn record(&self, event: FuseEvent) {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if events.len() < FUSE_TRACE_CAP {
            events.push(event);
        }
    }

    /// Drain all recorded events, leaving the trace empty.
    pub fn take(&self) -> Vec<FuseEvent> {
        std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// Short root-operator name used in fuse trace events.
fn root_name(p: &LogicalPlan) -> &'static str {
    match p {
        LogicalPlan::Scan(_) => "Scan",
        LogicalPlan::Filter(_) => "Filter",
        LogicalPlan::Project(_) => "Project",
        LogicalPlan::Join(_) => "Join",
        LogicalPlan::Aggregate(_) => "Aggregate",
        LogicalPlan::Window(_) => "Window",
        LogicalPlan::MarkDistinct(_) => "MarkDistinct",
        LogicalPlan::UnionAll(_) => "UnionAll",
        LogicalPlan::ConstantTable(_) => "ConstantTable",
        LogicalPlan::EnforceSingleRow(_) => "EnforceSingleRow",
        LogicalPlan::Sort(_) => "Sort",
        LogicalPlan::Limit(_) => "Limit",
    }
}

/// The result of a successful fusion: the paper's `(P, M, L, R)` 4-tuple.
///
/// * `plan` (`P`) outputs all columns of `P1` plus, optionally, additional
///   columns needed to restore `P2`.
/// * `mapping` (`M`) maps output columns of `P2` to columns of `plan`;
///   columns absent from the map kept their identity.
/// * `left` (`L`) and `right` (`R`) are filters over `plan`'s output that
///   restore `P1` and `P2` respectively:
///   `P1 = Project_outCols(P1)(Filter_L(P))` and
///   `P2 = Project_M(outCols(P2))(Filter_R(P))`.
#[derive(Debug, Clone)]
pub struct Fused {
    pub plan: LogicalPlan,
    pub mapping: ColumnMap,
    pub left: Expr,
    pub right: Expr,
}

impl Fused {
    /// Rewrite an expression over `P2`'s columns into `plan`'s columns.
    pub fn map(&self, e: &Expr) -> Expr {
        e.map_columns(&self.mapping)
    }

    /// Whether both compensating filters are trivially TRUE (the inputs
    /// were equivalent up to the mapping).
    pub fn trivial(&self) -> bool {
        self.left.is_true_literal() && self.right.is_true_literal()
    }

    /// Restrict the mapping to entries for the given schema's columns
    /// (useful for reporting); identity entries are implied elsewhere.
    pub fn mapped_id(&self, id: fusion_common::ColumnId) -> fusion_common::ColumnId {
        *self.mapping.get(&id).unwrap_or(&id)
    }
}

/// Fuse two plans; `None` is the paper's `⊥`.
///
/// Every attempt — including the recursive ones on the pair's inputs —
/// is recorded on the context's [`FuseTrace`] so the optimizer report
/// can say which operator pair bailed and why.
pub fn fuse(p1: &LogicalPlan, p2: &LogicalPlan, ctx: &FuseContext) -> Option<Fused> {
    let result = fuse_inner(p1, p2, ctx);
    let (left, right) = (root_name(p1), root_name(p2));

    // Gate every successful fusion on the §III.A contract: a result with
    // a broken mapping, mis-typed compensation or widened mask is turned
    // back into ⊥ so the calling rule simply does not fire. The rejection
    // reason lands in the fuse trace (and therefore EXPLAIN).
    if let Some(f) = &result {
        let violations = crate::analysis::check_fuse_contract(p1, p2, f);
        if !violations.is_empty() {
            if std::env::var("FUSION_ANALYZE_DEBUG").is_ok() {
                eprintln!(
                    "contract rejection {left}/{right}: {}",
                    crate::analysis::render_violations(&violations)
                );
            }
            ctx.trace.record(FuseEvent {
                left: left.into(),
                right: right.into(),
                fused: false,
                detail: crate::analysis::render_violations(&violations),
            });
            return None;
        }
    }

    let event = match &result {
        Some(f) => FuseEvent {
            left: left.into(),
            right: right.into(),
            fused: true,
            detail: if f.trivial() {
                "trivial compensations".into()
            } else {
                "compensating filters required".into()
            },
        },
        None => FuseEvent {
            left: left.into(),
            right: right.into(),
            fused: false,
            detail: if left == right {
                format!("same-root {left} fusion rejected by its per-operator definition")
            } else {
                format!("mismatched roots {left}/{right}: no §III.G adapter applied")
            },
        },
    };
    ctx.trace.record(event);
    result
}

fn fuse_inner(p1: &LogicalPlan, p2: &LogicalPlan, ctx: &FuseContext) -> Option<Fused> {
    // Same-root definitions (Section III.A–III.F).
    let same_root = match (p1, p2) {
        (LogicalPlan::Scan(a), LogicalPlan::Scan(b)) => scan::fuse_scans(a, b),
        (LogicalPlan::Filter(a), LogicalPlan::Filter(b)) => filter::fuse_filters(a, b, ctx),
        (LogicalPlan::Project(a), LogicalPlan::Project(b)) => {
            project::fuse_projects(a, b, ctx)
        }
        (LogicalPlan::Join(a), LogicalPlan::Join(b)) => join::fuse_joins(a, b, ctx),
        (LogicalPlan::Aggregate(a), LogicalPlan::Aggregate(b)) => {
            aggregate::fuse_aggregates(a, b, ctx)
        }
        (LogicalPlan::MarkDistinct(a), LogicalPlan::MarkDistinct(b)) => {
            mark_distinct::fuse_mark_distinct(a, b, ctx)
        }
        (LogicalPlan::EnforceSingleRow(a), LogicalPlan::EnforceSingleRow(b)) => {
            fuse_enforce_single_row(a, b, ctx)
        }
        _ => None,
    };
    if same_root.is_some() {
        return same_root;
    }

    // §III.G mismatched-root extensions, best alternative first.
    // 1. Skip a MarkDistinct root and add it back onto the fused result.
    if let LogicalPlan::MarkDistinct(m1) = p1 {
        if !matches!(p2, LogicalPlan::MarkDistinct(_)) {
            if let Some(f) = fuse(&m1.input, p2, ctx) {
                return Some(readd_mark_distinct(m1, f, true, ctx));
            }
        }
    }
    if let LogicalPlan::MarkDistinct(m2) = p2 {
        if !matches!(p1, LogicalPlan::MarkDistinct(_)) {
            if let Some(f) = fuse(p1, &m2.input, ctx) {
                return Some(readd_mark_distinct(m2, f, false, ctx));
            }
        }
    }

    // 2. Manufacture an identity projection on the side lacking one.
    //
    // Ordering matters (the paper's §III.G example): this must be
    // preferred over the trivial-filter adapter. With
    // `P1 = Project(Filter(T))` and `P2 = Filter(T)`, peeling the
    // projection first lets the two real filters meet and fuse
    // trivially; manufacturing a TRUE filter first would compare
    // `TRUE` against `Filter(T)`'s condition at one level and the real
    // condition against `TRUE` at the next, leaving needless
    // compensating filters that block downstream rules.
    if let LogicalPlan::Project(_) = p1 {
        if !matches!(p2, LogicalPlan::Project(_)) {
            let identity = identity_projection(p2);
            if let (LogicalPlan::Project(a), LogicalPlan::Project(b)) = (p1, &identity) {
                if let Some(f) = project::fuse_projects(a, b, ctx) {
                    return Some(f);
                }
            }
        }
    }
    if let LogicalPlan::Project(_) = p2 {
        if !matches!(p1, LogicalPlan::Project(_)) {
            let identity = identity_projection(p1);
            if let (LogicalPlan::Project(a), LogicalPlan::Project(b)) = (&identity, p2) {
                if let Some(f) = project::fuse_projects(a, b, ctx) {
                    return Some(f);
                }
            }
        }
    }

    // 3. Manufacture a trivial TRUE filter on the side lacking one.
    if let LogicalPlan::Filter(_) = p1 {
        if !matches!(p2, LogicalPlan::Filter(_)) {
            let trivial = LogicalPlan::Filter(fusion_plan::Filter {
                input: Box::new(p2.clone()),
                predicate: Expr::boolean(true),
            });
            if let (LogicalPlan::Filter(a), LogicalPlan::Filter(b)) = (p1, &trivial) {
                return filter::fuse_filters(a, b, ctx);
            }
        }
    }
    if let LogicalPlan::Filter(_) = p2 {
        if !matches!(p1, LogicalPlan::Filter(_)) {
            let trivial = LogicalPlan::Filter(fusion_plan::Filter {
                input: Box::new(p1.clone()),
                predicate: Expr::boolean(true),
            });
            if let (LogicalPlan::Filter(a), LogicalPlan::Filter(b)) = (&trivial, p2) {
                return filter::fuse_filters(a, b, ctx);
            }
        }
    }

    None
}

/// `EnforceSingleRow` accepts the generic (default) fusion of §III.G: fuse
/// the children, check equivalence, put the operator back. Because the
/// operator asserts a single output row, fusion is only sound when the
/// children fused with trivial compensations (otherwise the fused child
/// could hold two distinct rows).
fn fuse_enforce_single_row(
    a: &EnforceSingleRow,
    b: &EnforceSingleRow,
    ctx: &FuseContext,
) -> Option<Fused> {
    let f = fuse(&a.input, &b.input, ctx)?;
    if !f.trivial() {
        return None;
    }
    Some(Fused {
        plan: LogicalPlan::EnforceSingleRow(EnforceSingleRow {
            input: Box::new(f.plan),
        }),
        mapping: f.mapping,
        left: f.left,
        right: f.right,
    })
}

/// Re-add a skipped MarkDistinct on top of the fused plan (§III.G step
/// iii). `left_side` says which original input carried the operator.
///
/// When the fused child carries a non-trivial compensation for that side,
/// the mark must only distinguish rows of the original input, so the
/// compensating filter is exposed as a projected boolean column and added
/// to the distinct key — the same device §III.F uses for same-root
/// MarkDistinct fusion.
fn readd_mark_distinct(m: &MarkDistinct, f: Fused, left_side: bool, _ctx: &FuseContext) -> Fused {
    let comp = if left_side {
        f.left.clone()
    } else {
        f.right.clone()
    };
    let (columns, mask): (Vec<_>, Expr) = if left_side {
        (m.columns.clone(), simp(m.mask.clone().and(comp)))
    } else {
        (
            m.columns.iter().map(|c| f.mapped_id(*c)).collect(),
            simp(f.map(&m.mask).and(comp)),
        )
    };
    Fused {
        plan: LogicalPlan::MarkDistinct(MarkDistinct {
            input: Box::new(f.plan.clone()),
            columns,
            mark_id: m.mark_id,
            mark_name: m.mark_name.clone(),
            mask,
        }),
        mapping: f.mapping,
        left: f.left,
        right: f.right,
    }
}

/// Identity projection over a plan's output (every field passed through
/// under its own identity).
pub fn identity_projection(plan: &LogicalPlan) -> LogicalPlan {
    let schema = plan.schema();
    LogicalPlan::Project(Project {
        input: Box::new(plan.clone()),
        exprs: schema.fields().iter().map(ProjExpr::passthrough).collect(),
    })
}

/// Utility shared by submodules: simplify a predicate and return it.
/// Every caller feeds this a filter-position expression (compensating
/// filters, masks, join/dispatch conditions), so the NULL≡FALSE folding
/// of `simplify_filter` is sound here.
pub(crate) fn simp(e: Expr) -> Expr {
    fusion_expr::simplify_filter(&e)
}

/// Utility: the set of columns two compensating filters reference.
pub(crate) fn comp_columns(l: &Expr, r: &Expr) -> std::collections::HashSet<fusion_common::ColumnId> {
    let mut cols = l.columns();
    cols.extend(r.columns());
    cols
}

/// Utility: schema lookup that tolerates missing fields (used when
/// carrying compensation columns through projections).
pub(crate) fn field_of(schema: &Schema, id: fusion_common::ColumnId) -> Option<fusion_common::Field> {
    schema.field_by_id(id).cloned()
}

#[cfg(test)]
mod dispatcher_tests {
    use super::*;
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit, AggregateExpr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("a", DataType::Int64, true),
            ColumnDef::new("b", DataType::Int64, true),
        ]
    }

    /// EnforceSingleRow accepts the generic fusion when children fuse
    /// exactly (scalar aggregates with different filters: the filters
    /// land in masks, so the compensations stay trivial).
    #[test]
    fn enforce_single_row_fuses_scalar_aggregates() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |bound: i64| {
            let t = PlanBuilder::scan(&gen, "t", &cols());
            let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
            t.filter(col(a).gt(lit(bound)))
                .aggregate(vec![], vec![("s", AggregateExpr::sum(col(b)))])
                .enforce_single_row()
                .build()
        };
        let p1 = mk(0);
        let p2 = mk(100);
        let f = fuse(&p1, &p2, &ctx).expect("single-row plans fuse");
        f.plan.validate().unwrap();
        assert!(f.trivial());
        assert!(matches!(f.plan, LogicalPlan::EnforceSingleRow(_)));
    }

    /// EnforceSingleRow refuses fusion when the fused child could hold
    /// two rows (keyed aggregates with different groups per side).
    #[test]
    fn enforce_single_row_rejects_inexact_fusion() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |bound: i64| {
            let t = PlanBuilder::scan(&gen, "t", &cols());
            let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
            t.filter(col(b).gt(lit(bound)))
                .aggregate(vec![a], vec![("s", AggregateExpr::sum(col(b)))])
                .enforce_single_row()
                .build()
        };
        let p1 = mk(0);
        let p2 = mk(100);
        assert!(fuse(&p1, &p2, &ctx).is_none());
    }

    /// Distinct aggregates refuse mask tightening: fusing two
    /// differently-filtered GroupBys with a native-distinct aggregate
    /// must fail rather than silently corrupt the dedup scope.
    #[test]
    fn distinct_aggregate_with_nontrivial_compensation_rejected() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |bound: i64| {
            let t = PlanBuilder::scan(&gen, "t", &cols());
            let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
            t.filter(col(b).gt(lit(bound)))
                .aggregate(
                    vec![a],
                    vec![(
                        "d",
                        AggregateExpr::count(col(b)).with_distinct(true),
                    )],
                )
                .build()
        };
        let p1 = mk(0);
        let p2 = mk(100);
        assert!(fuse(&p1, &p2, &ctx).is_none());
        // ... while identical inputs (trivial compensations) fuse fine.
        let p3 = mk(0);
        let p4 = {
            let t = PlanBuilder::scan(&gen, "t", &cols());
            let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
            t.filter(col(b).gt(lit(0i64)))
                .aggregate(
                    vec![a],
                    vec![("d", AggregateExpr::count(col(b)).with_distinct(true))],
                )
                .build()
        };
        assert!(fuse(&p3, &p4, &ctx).is_some());
    }

    /// Sort/Limit roots have no fusion definition: Fuse must return ⊥,
    /// never panic.
    #[test]
    fn unsupported_roots_return_bottom() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = || {
            let t = PlanBuilder::scan(&gen, "t", &cols());
            let a = t.col("a").unwrap();
            t.sort(vec![fusion_plan::SortKey::asc(col(a))]).limit(5).build()
        };
        assert!(fuse(&mk(), &mk(), &ctx).is_none());
    }

    /// Fusion is reflexive-ish: any supported plan fuses with a clone of
    /// itself (fresh ids) with trivial compensations.
    #[test]
    fn identical_pipelines_always_fuse_trivially() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = || {
            let t = PlanBuilder::scan(&gen, "t", &cols());
            let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
            t.filter(col(a).gt(lit(3i64)))
                .project(vec![("x", col(a)), ("y", col(b).add(lit(1i64)))])
                .aggregate(vec![], vec![("n", AggregateExpr::count_star())])
                .build()
        };
        let f = fuse(&mk(), &mk(), &ctx).expect("identical plans fuse");
        assert!(f.trivial());
    }
}
