//! Optimization rules (Section IV) and supporting rewrites.
//!
//! Each rule matches a plan node shape and produces a replacement built
//! from standard operators. Fusion-based rules handle n-ary operators via
//! the [`graph::JoinGraph`] flattening described in §IV.E: a join tree is
//! conceptually flattened into an n-ary join, pairs of inputs are tried
//! quadratically, and the tree is rebuilt.

pub mod graph;
pub mod join_on_keys;
pub mod normalize;
pub mod pruning;
pub mod pushdown;
pub mod semijoin;
pub mod union_fusion;
pub mod union_on_join;
pub mod window;

use fusion_plan::LogicalPlan;

use crate::fuse::FuseContext;

/// A rewrite rule. `apply` inspects one node (the rule may look arbitrarily
/// deep below it) and returns a replacement, or `None` if it does not
/// match. The driver walks the tree and re-applies to fixpoint.
pub trait Rule {
    fn name(&self) -> &'static str;
    fn apply(&self, plan: &LogicalPlan, ctx: &FuseContext) -> Option<LogicalPlan>;
}

/// Apply a rule across the whole tree, top-down, returning `Some` if
/// anything changed.
pub fn apply_everywhere(
    rule: &dyn Rule,
    plan: &LogicalPlan,
    ctx: &FuseContext,
) -> Option<LogicalPlan> {
    apply_everywhere_traced(rule, plan, ctx).0
}

/// Like [`apply_everywhere`], additionally returning the labels of the
/// plan nodes the rule fired at (in top-down walk order) for the
/// optimizer trace.
pub fn apply_everywhere_traced(
    rule: &dyn Rule,
    plan: &LogicalPlan,
    ctx: &FuseContext,
) -> (Option<LogicalPlan>, Vec<String>) {
    let mut fired_at = Vec::new();
    let rewritten = plan.transform_down(&mut |node| match rule.apply(node, ctx) {
        Some(new) => {
            fired_at.push(node.node_label());
            Some(new)
        }
        None => None,
    });
    let changed = !fired_at.is_empty();
    (changed.then_some(rewritten), fired_at)
}
