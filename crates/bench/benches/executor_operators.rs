// One-shot benchmark driver: aborting on a setup or I/O failure is the
// desired behavior, so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Executor operator throughput: scans (with pruning), hash joins, hash
//! aggregation with masks, window aggregates, MarkDistinct.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_common::{DataType, IdGen, Value};
use fusion_exec::table::TableColumn;
use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
use fusion_expr::{col, lit, AggFunc, AggregateExpr, WindowExpr};
use fusion_plan::builder::ColumnDef;
use fusion_plan::{JoinType, PlanBuilder};

const ROWS: i64 = 100_000;

fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "fact",
        vec![
            TableColumn {
                name: "k".into(),
                data_type: DataType::Int64,
                nullable: false,
            },
            TableColumn {
                name: "grp".into(),
                data_type: DataType::Int64,
                nullable: true,
            },
            TableColumn {
                name: "v".into(),
                data_type: DataType::Float64,
                nullable: true,
            },
        ],
    )
    .partition_by("k", ROWS / 40)
    .unwrap();
    for i in 0..ROWS {
        b.add_row(vec![
            Value::Int64(i),
            Value::Int64(i % 1000),
            Value::Float64((i % 97) as f64),
        ])
        .unwrap();
    }
    let mut dim = TableBuilder::new(
        "dim",
        vec![
            TableColumn {
                name: "d_k".into(),
                data_type: DataType::Int64,
                nullable: false,
            },
            TableColumn {
                name: "d_name".into(),
                data_type: DataType::Utf8,
                nullable: true,
            },
        ],
    );
    for i in 0..1000i64 {
        dim.add_row(vec![Value::Int64(i), Value::Utf8(format!("dim-{i}"))])
            .unwrap();
    }
    let mut c = Catalog::new();
    c.register(b.build());
    c.register(dim.build());
    c
}

fn cols() -> Vec<ColumnDef> {
    vec![
        ColumnDef::new("k", DataType::Int64, false),
        ColumnDef::new("grp", DataType::Int64, true),
        ColumnDef::new("v", DataType::Float64, true),
    ]
}

fn dim_cols() -> Vec<ColumnDef> {
    vec![
        ColumnDef::new("d_k", DataType::Int64, false),
        ColumnDef::new("d_name", DataType::Utf8, true),
    ]
}

fn bench_operators(c: &mut Criterion) {
    let catalog = catalog();
    let gen = IdGen::new();
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);

    // Full scan.
    let scan = PlanBuilder::scan(&gen, "fact", &cols()).build();
    group.bench_function("scan_100k", |b| {
        b.iter(|| execute_plan(&scan, &catalog, &ExecMetrics::new()).unwrap())
    });

    // Pruned scan: one partition of 40.
    let t = PlanBuilder::scan(&gen, "fact", &cols());
    let k = t.col("k").unwrap();
    let mut pruned = match t.build() {
        fusion_plan::LogicalPlan::Scan(mut s) => {
            s.filters.push(col(k).lt(lit(ROWS / 40)));
            fusion_plan::LogicalPlan::Scan(s)
        }
        _ => unreachable!(),
    };
    group.bench_function("scan_pruned_1_of_40", |b| {
        b.iter(|| execute_plan(&pruned, &catalog, &ExecMetrics::new()).unwrap())
    });
    let _ = &mut pruned;

    // Hash aggregate with masks.
    let t = PlanBuilder::scan(&gen, "fact", &cols());
    let (g, v) = (t.col("grp").unwrap(), t.col("v").unwrap());
    let agg = t
        .aggregate(
            vec![g],
            vec![
                ("s", AggregateExpr::sum(col(v))),
                (
                    "masked",
                    AggregateExpr::avg(col(v)).with_mask(col(v).gt(lit(50.0))),
                ),
            ],
        )
        .build();
    group.bench_function("hash_aggregate_masked_1000_groups", |b| {
        b.iter(|| execute_plan(&agg, &catalog, &ExecMetrics::new()).unwrap())
    });

    // Hash join 100k x 1k.
    let f = PlanBuilder::scan(&gen, "fact", &cols());
    let d = PlanBuilder::scan(&gen, "dim", &dim_cols());
    let (fg, dk) = (f.col("grp").unwrap(), d.col("d_k").unwrap());
    let join = f
        .join(d.build(), JoinType::Inner, col(fg).eq_to(col(dk)))
        .build();
    group.bench_function("hash_join_100k_x_1k", |b| {
        b.iter(|| execute_plan(&join, &catalog, &ExecMetrics::new()).unwrap())
    });

    // Window aggregate.
    let t = PlanBuilder::scan(&gen, "fact", &cols());
    let (g, v) = (t.col("grp").unwrap(), t.col("v").unwrap());
    let win = t
        .window(vec![(
            "w",
            WindowExpr::new(AggFunc::Avg, Some(col(v)), vec![g]),
        )])
        .build();
    group.bench_function("window_avg_1000_partitions", |b| {
        b.iter(|| execute_plan(&win, &catalog, &ExecMetrics::new()).unwrap())
    });

    // MarkDistinct.
    let t = PlanBuilder::scan(&gen, "fact", &cols());
    let g = t.col("grp").unwrap();
    let md = t.mark_distinct(vec![g], "d").build();
    group.bench_function("mark_distinct_100k", |b| {
        b.iter(|| execute_plan(&md, &catalog, &ExecMetrics::new()).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
