//! AST → logical plan.

mod expr;
mod scope;
mod select;

use std::collections::HashMap;

use fusion_common::{DataType, FusionError, IdGen, Result};
use fusion_plan::builder::ColumnDef;
use fusion_plan::{Join, JoinType, LogicalPlan, PlanBuilder, Sort, SortKey};

use crate::ast::{JoinKind, OrderItem, Query, SetExpr, TableRef};
pub(crate) use scope::{Scope, ScopeItem};

/// Column definitions of one base table, as exposed to the planner.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub columns: Vec<(String, DataType, bool)>,
}

impl TableSchema {
    pub fn column_defs(&self) -> Vec<ColumnDef> {
        self.columns
            .iter()
            .map(|(n, t, null)| ColumnDef::new(n.clone(), *t, *null))
            .collect()
    }
}

/// Source of base-table schemas (implemented by the engine's catalog).
pub trait SchemaProvider {
    fn table_schema(&self, name: &str) -> Option<TableSchema>;
}

/// Plan a parsed query against a schema provider.
pub fn plan_query(
    query: &Query,
    provider: &dyn SchemaProvider,
    gen: &IdGen,
) -> Result<LogicalPlan> {
    let mut planner = Planner {
        provider,
        gen: gen.clone(),
        cte_stack: Vec::new(),
        depth: 0,
    };
    let (plan, _) = planner.plan_query(query)?;
    plan.validate()?;
    Ok(plan)
}

pub(crate) struct Planner<'a> {
    pub provider: &'a dyn SchemaProvider,
    pub gen: IdGen,
    /// Stack of CTE definition scopes; inner queries see outer CTEs.
    pub cte_stack: Vec<HashMap<String, Query>>,
    pub depth: usize,
}

impl Planner<'_> {
    pub(crate) fn plan_query(&mut self, query: &Query) -> Result<(LogicalPlan, Scope)> {
        self.depth += 1;
        if self.depth > 64 {
            return Err(FusionError::Sql("query nesting too deep".into()));
        }
        let mut cte_scope = HashMap::new();
        for (name, q) in &query.ctes {
            cte_scope.insert(name.to_ascii_lowercase(), q.clone());
        }
        self.cte_stack.push(cte_scope);

        let result = self.plan_query_inner(query);

        self.cte_stack.pop();
        self.depth -= 1;
        result
    }

    fn plan_query_inner(&mut self, query: &Query) -> Result<(LogicalPlan, Scope)> {
        let (mut plan, scope) = self.plan_set_expr(&query.body)?;

        if !query.order_by.is_empty() {
            let keys = query
                .order_by
                .iter()
                .map(|OrderItem { expr, asc }| {
                    // ORDER BY resolves against the output columns.
                    let planned = expr::plan_output_expr(expr, &scope)?;
                    Ok(SortKey {
                        expr: planned,
                        asc: *asc,
                        nulls_first: false,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            plan = LogicalPlan::Sort(Sort {
                input: Box::new(plan),
                keys,
            });
        }
        if let Some(n) = query.limit {
            plan = LogicalPlan::Limit(fusion_plan::Limit {
                input: Box::new(plan),
                fetch: n as usize,
            });
        }
        Ok((plan, scope))
    }

    fn plan_set_expr(&mut self, body: &SetExpr) -> Result<(LogicalPlan, Scope)> {
        match body {
            SetExpr::Select(s) => self.plan_select(s),
            SetExpr::UnionAll(l, r) => {
                // Flatten the union chain into an n-ary UnionAll.
                let mut branches = Vec::new();
                collect_union_branches(body, &mut branches);
                let mut plans = Vec::new();
                let mut first_scope = None;
                for b in branches {
                    let (p, s) = self.plan_set_expr_leaf(b)?;
                    if first_scope.is_none() {
                        first_scope = Some(s);
                    }
                    plans.push(p);
                }
                let _ = (l, r);
                let first = plans.remove(0);
                let scope = first_scope.expect("at least one branch");
                let builder = PlanBuilder::from_plan(&self.gen, first).union_all(plans)?;
                let union_schema = builder.schema();
                let out_scope = Scope {
                    items: union_schema
                        .fields()
                        .iter()
                        .map(|f| ScopeItem {
                            qualifier: None,
                            name: f.name.clone(),
                            id: f.id,
                        })
                        .collect(),
                };
                let _ = scope;
                Ok((builder.build(), out_scope))
            }
        }
    }

    fn plan_set_expr_leaf(&mut self, body: &SetExpr) -> Result<(LogicalPlan, Scope)> {
        match body {
            SetExpr::Select(s) => self.plan_select(s),
            SetExpr::UnionAll(..) => self.plan_set_expr(body),
        }
    }

    /// Plan a FROM item list (comma = cross join).
    pub(crate) fn plan_from(&mut self, from: &[TableRef]) -> Result<(LogicalPlan, Scope)> {
        if from.is_empty() {
            // SELECT without FROM: a single empty row.
            let plan = LogicalPlan::ConstantTable(fusion_plan::ConstantTable {
                fields: vec![],
                rows: vec![vec![]],
            });
            return Ok((plan, Scope::default()));
        }
        let mut iter = from.iter();
        let first = iter.next().expect("non-empty FROM list checked above");
        let (mut plan, mut scope) = self.plan_table_ref(first)?;
        for tr in iter {
            let (right, right_scope) = self.plan_table_ref(tr)?;
            plan = LogicalPlan::Join(Join {
                left: Box::new(plan),
                right: Box::new(right),
                join_type: JoinType::Cross,
                condition: fusion_expr::Expr::boolean(true),
            });
            scope.items.extend(right_scope.items);
        }
        Ok((plan, scope))
    }

    fn plan_table_ref(&mut self, tr: &TableRef) -> Result<(LogicalPlan, Scope)> {
        match tr {
            TableRef::Table { name, alias } => {
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                // CTE reference? Inline it with fresh identities — the
                // streaming-engine behavior the fusion rules target.
                if let Some(cte) = self.lookup_cte(name) {
                    let (plan, scope) = self.plan_query(&cte)?;
                    return Ok((plan, scope.requalified(&qualifier)));
                }
                let schema = self.provider.table_schema(name).ok_or_else(|| {
                    FusionError::Sql(format!("table `{name}` not found"))
                })?;
                let builder = PlanBuilder::scan(&self.gen, name.clone(), &schema.column_defs());
                let plan_schema = builder.schema();
                let scope = Scope {
                    items: plan_schema
                        .fields()
                        .iter()
                        .map(|f| ScopeItem {
                            qualifier: Some(qualifier.to_ascii_lowercase()),
                            name: f.name.clone(),
                            id: f.id,
                        })
                        .collect(),
                };
                Ok((builder.build(), scope))
            }
            TableRef::Subquery { query, alias } => {
                let (plan, scope) = self.plan_query(query)?;
                Ok((plan, scope.requalified(alias)))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.plan_table_ref(left)?;
                let (rp, rs) = self.plan_table_ref(right)?;
                let mut combined = ls;
                combined.items.extend(rs.items);
                let (join_type, condition) = match (kind, on) {
                    (JoinKind::Cross, _) | (_, None) => {
                        (JoinType::Cross, fusion_expr::Expr::boolean(true))
                    }
                    (JoinKind::Inner, Some(e)) => {
                        (JoinType::Inner, expr::plan_scalar(e, &combined)?)
                    }
                    (JoinKind::Left, Some(e)) => {
                        (JoinType::Left, expr::plan_scalar(e, &combined)?)
                    }
                };
                let plan = LogicalPlan::Join(Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    join_type,
                    condition,
                });
                Ok((plan, combined))
            }
        }
    }

    fn lookup_cte(&self, name: &str) -> Option<Query> {
        let key = name.to_ascii_lowercase();
        for scope in self.cte_stack.iter().rev() {
            if let Some(q) = scope.get(&key) {
                return Some(q.clone());
            }
        }
        None
    }
}

fn collect_union_branches<'a>(body: &'a SetExpr, out: &mut Vec<&'a SetExpr>) {
    match body {
        SetExpr::UnionAll(l, r) => {
            collect_union_branches(l, out);
            collect_union_branches(r, out);
        }
        leaf => out.push(leaf),
    }
}
