//! Structural equivalence of expressions, optionally modulo a column map.
//!
//! `Fuse` repeatedly asks "is `C1` equivalent to `M(C2)`?" (join
//! conditions, grouping keys, aggregate pairs, filter conditions). We
//! answer with a normalization-based test: simplify, canonically order
//! commutative operands and AND/OR chains, then compare structurally.
//! This is sound (never claims equivalence wrongly) but incomplete, the
//! same engineering trade-off production rewriters make.

use crate::expr::{conjoin, disjoin, split_conjuncts, split_disjuncts, BinaryOp, ColumnMap, Expr};
use crate::simplify::{order_operands, simplify};

/// Normalize an expression to a canonical form for comparison.
pub fn normalize(expr: &Expr) -> Expr {
    let simplified = simplify(expr);
    canon(&simplified)
}

fn canon(e: &Expr) -> Expr {
    match e {
        Expr::Binary {
            op: BinaryOp::And, ..
        } => {
            // `simplify` already orders raw conjuncts; re-sort here
            // because canonizing children (operand commuting below) can
            // change their rendered form, and with it the sort key.
            let mut cs: Vec<Expr> = split_conjuncts(e).iter().map(canon).collect();
            order_operands(&mut cs);
            cs.dedup();
            conjoin(cs)
        }
        Expr::Binary {
            op: BinaryOp::Or, ..
        } => {
            let mut ds: Vec<Expr> = split_disjuncts(e).iter().map(canon).collect();
            order_operands(&mut ds);
            ds.dedup();
            disjoin(ds)
        }
        Expr::Binary { op, left, right } => {
            let l = canon(left);
            let r = canon(right);
            // Put the lexicographically smaller operand on the left for
            // commutative/flippable operators.
            if let Some(flipped) = op.commuted() {
                if l.to_string() > r.to_string() {
                    return Expr::Binary {
                        op: flipped,
                        left: Box::new(r),
                        right: Box::new(l),
                    };
                }
            }
            Expr::Binary {
                op: *op,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        Expr::Not(inner) => Expr::Not(Box::new(canon(inner))),
        Expr::Negate(inner) => Expr::Negate(Box::new(canon(inner))),
        Expr::IsNull(inner) => Expr::IsNull(Box::new(canon(inner))),
        Expr::IsNotNull(inner) => Expr::IsNotNull(Box::new(canon(inner))),
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (canon(c), canon(v)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(canon(e))),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let mut items: Vec<Expr> = list.iter().map(canon).collect();
            items.sort_by_key(|i| i.to_string());
            items.dedup();
            Expr::InList {
                expr: Box::new(canon(expr)),
                list: items,
                negated: *negated,
            }
        }
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(canon(expr)),
            to: *to,
        },
        Expr::ScalarFunction { func, args } => Expr::ScalarFunction {
            func: *func,
            args: args.iter().map(canon).collect(),
        },
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
    }
}

/// Are the two expressions equivalent (best-effort, sound)?
pub fn equiv(a: &Expr, b: &Expr) -> bool {
    normalize(a) == normalize(b)
}

/// Is `a` equivalent to `M(b)` — i.e. `b` with its columns rewritten
/// through the fused mapping?
pub fn equiv_mod(a: &Expr, b: &Expr, m: &ColumnMap) -> bool {
    equiv(a, &b.map_columns(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use fusion_common::ColumnId;

    fn c(i: u32) -> Expr {
        col(ColumnId(i))
    }

    #[test]
    fn commuted_equality_is_equivalent() {
        assert!(equiv(&c(1).eq_to(c(2)), &c(2).eq_to(c(1))));
        assert!(equiv(&c(1).lt(c(2)), &c(2).gt(c(1))));
        assert!(!equiv(&c(1).lt(c(2)), &c(2).lt(c(1))));
    }

    #[test]
    fn and_order_does_not_matter() {
        let a = c(1).gt(lit(0i64)).and(c(2).lt(lit(5i64)));
        let b = c(2).lt(lit(5i64)).and(c(1).gt(lit(0i64)));
        assert!(equiv(&a, &b));
    }

    #[test]
    fn equiv_mod_maps_right_side() {
        let mut m = ColumnMap::new();
        m.insert(ColumnId(10), ColumnId(1));
        m.insert(ColumnId(20), ColumnId(2));
        let a = c(1).eq_to(c(2));
        let b = c(10).eq_to(c(20));
        assert!(equiv_mod(&a, &b, &m));
        assert!(!equiv_mod(&a, &b, &ColumnMap::new()));
    }

    #[test]
    fn simplification_feeds_equivalence() {
        // (x AND TRUE) == x
        assert!(equiv(&c(1).and(Expr::boolean(true)), &c(1)));
        // 1 + 2 == 3
        assert!(equiv(&lit(1i64).add(lit(2i64)), &lit(3i64)));
    }

    #[test]
    fn in_list_order_insensitive() {
        let a = Expr::InList {
            expr: Box::new(c(1)),
            list: vec![lit("m"), lit("l")],
            negated: false,
        };
        let b = Expr::InList {
            expr: Box::new(c(1)),
            list: vec![lit("l"), lit("m")],
            negated: false,
        };
        assert!(equiv(&a, &b));
    }

    #[test]
    fn different_predicates_not_equivalent() {
        assert!(!equiv(&c(1).gt(lit(0i64)), &c(1).gt_eq(lit(0i64))));
    }
}
