//! SQL lexer.

use fusion_common::{FusionError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original text is preserved).
    Word(String),
    /// Quoted identifier: `"name"`.
    QuotedIdent(String),
    /// Numeric literal text.
    Number(String),
    /// Single-quoted string literal (with `''` escapes resolved).
    String(String),
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Eof,
}

impl Token {
    /// Is this word token equal (case-insensitively) to the keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' if !next_is_digit(bytes, i + 1) || !prev_is_word_or_none(&tokens) => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(FusionError::Sql("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token::String(s));
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(FusionError::Sql("unterminated quoted identifier".into()));
                }
                i += 1;
                tokens.push(Token::QuotedIdent(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(FusionError::Sql(format!(
                    "unexpected character `{other}` at byte {i}"
                )));
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    i < bytes.len() && bytes[i].is_ascii_digit()
}

fn prev_is_word_or_none(tokens: &[Token]) -> bool {
    matches!(
        tokens.last(),
        Some(Token::Word(_)) | Some(Token::QuotedIdent(_)) | Some(Token::RParen)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_select() {
        let ts = tokenize("SELECT a, b FROM t WHERE a >= 1.5 AND b <> 'x''y'").unwrap();
        assert!(ts.contains(&Token::GtEq));
        assert!(ts.contains(&Token::Number("1.5".into())));
        assert!(ts.contains(&Token::NotEq));
        assert!(ts.contains(&Token::String("x'y".into())));
        assert_eq!(*ts.last().unwrap(), Token::Eof);
    }

    #[test]
    fn qualified_names_and_star() {
        let ts = tokenize("SELECT t.a, t.* FROM s.t").unwrap();
        let dots = ts.iter().filter(|t| **t == Token::Dot).count();
        assert_eq!(dots, 3);
        assert!(ts.contains(&Token::Star));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Word("SELECT".into()),
                Token::Number("1".into()),
                Token::Comma,
                Token::Number("2".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn decimal_starting_number() {
        let ts = tokenize("0.1 * x").unwrap();
        assert_eq!(ts[0], Token::Number("0.1".into()));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("SELECT 'oops").is_err());
    }
}
