// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! End-to-end correctness of workload-level reuse: batches of TPC-DS
//! queries must produce results bit-identical to running each query
//! independently — with the fused and the baseline optimizer, across
//! worker counts — while shared subplans actually execute once, and the
//! shared-subplan cache must drop entries when a table is re-registered.

use fusion_common::{DataType, Value};
use fusion_engine::Session;
use fusion_exec::table::TableColumn;
use fusion_exec::TableBuilder;
use fusion_tpcds::{all_queries, generate_catalog, TpcdsConfig};

/// Smaller than the correctness suite's 0.12: each test here builds
/// several catalogs (solo + batch session per worker count).
const SCALE: f64 = 0.08;

fn tpcds_session(fusion: bool, workers: usize) -> Session {
    let cfg = TpcdsConfig::with_scale(SCALE);
    let mut s = if fusion {
        Session::new()
    } else {
        Session::baseline()
    };
    for table in generate_catalog(&cfg).into_tables() {
        s.register_table(table);
    }
    s.set_parallelism(workers);
    s
}

fn sql_of(id: &str) -> String {
    all_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("no corpus query named {id}"))
        .sql
}

/// The corpus batches: an identical pair (exact cross-query sharing), an
/// identical triple, and a mixed pair with no engineered overlap (the
/// optimizer must not manufacture wrong sharing).
fn corpus_batches() -> Vec<Vec<String>> {
    vec![
        vec![sql_of("INTRO"), sql_of("INTRO")],
        vec![sql_of("C42"), sql_of("C42"), sql_of("C42")],
        vec![sql_of("Q09"), sql_of("C55")],
    ]
}

/// Run every corpus batch through `run_batch` and through independent
/// `sql` calls (reuse disabled) and require bit-identical rows per query.
/// The same pair of sessions serves all batches, so later batches also
/// exercise warm-cache servings.
fn check_batches_match_independent(fusion: bool, workers: usize) {
    let mut solo = tpcds_session(fusion, workers);
    solo.set_reuse_enabled(false);
    let batcher = tpcds_session(fusion, workers);

    for (b, sqls) in corpus_batches().iter().enumerate() {
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let independent: Vec<_> = refs
            .iter()
            .map(|sql| solo.sql(sql).unwrap_or_else(|e| panic!("solo run: {e}")))
            .collect();
        let batch = batcher
            .run_batch(&refs)
            .unwrap_or_else(|e| panic!("batch {b} failed: {e}"));

        assert_eq!(batch.results.len(), refs.len());
        assert_eq!(batch.metrics.queries_batched, refs.len() as u64);
        assert!(batch.all_succeeded(), "no faults injected, no failures");
        for (i, (r, ind)) in batch.results.iter().zip(&independent).enumerate() {
            let r = r.as_ref().unwrap();
            assert_eq!(
                r.sorted_rows(),
                ind.sorted_rows(),
                "batch {b} query {i} diverged from its independent run \
                 (fusion={fusion}, workers={workers})\nreuse notes: {:?}",
                r.report.reuse
            );
        }
    }
}

#[test]
fn fused_batches_bit_identical_1_worker() {
    check_batches_match_independent(true, 1);
}

#[test]
fn fused_batches_bit_identical_2_workers() {
    check_batches_match_independent(true, 2);
}

#[test]
fn fused_batches_bit_identical_4_workers() {
    check_batches_match_independent(true, 4);
}

#[test]
fn baseline_batches_bit_identical_1_worker() {
    check_batches_match_independent(false, 1);
}

#[test]
fn baseline_batches_bit_identical_4_workers() {
    check_batches_match_independent(false, 4);
}

/// A batch of N identical queries executes the shared subplan once: the
/// shared-execution counter fires and the batch runs strictly fewer scan
/// morsels than N independent runs.
#[test]
fn identical_pair_executes_shared_subplan_once() {
    let mut solo = tpcds_session(true, 2);
    solo.set_reuse_enabled(false);
    let batcher = tpcds_session(true, 2);

    let sql = sql_of("INTRO");
    let refs = [sql.as_str(), sql.as_str()];
    let independent: Vec<_> = refs.iter().map(|q| solo.sql(q).unwrap()).collect();
    let batch = batcher.run_batch(&refs).unwrap();

    for (r, ind) in batch.results.iter().zip(&independent) {
        let r = r.as_ref().unwrap();
        assert_eq!(r.sorted_rows(), ind.sorted_rows());
        assert!(r.reused(), "reuse notes: {:?}", r.report.reuse);
    }
    assert!(
        batch.metrics.shared_subplans_executed >= 1,
        "expected a shared execution; report: {:?}",
        batch.report
    );
    assert!(batch.report.shared_executions() >= 1);
    assert!(batch.report.consumers_spliced() >= 2);
    // Every served splice carries a soundness certificate, and a pristine
    // batch never trips the prover.
    assert!(
        batch.metrics.reuse_certificates_issued >= batch.report.consumers_spliced() as u64,
        "each splice must be certified: issued={} spliced={}",
        batch.metrics.reuse_certificates_issued,
        batch.report.consumers_spliced()
    );
    assert_eq!(
        batch.metrics.reuse_certificates_rejected, 0,
        "pristine batch must not be rejected"
    );

    let solo_morsels: u64 = independent.iter().map(|r| r.metrics.morsels_executed).sum();
    assert!(
        batch.metrics.morsels_executed < solo_morsels,
        "sharing must reduce scan work: batch ran {} morsels vs {} independent",
        batch.metrics.morsels_executed,
        solo_morsels
    );
}

fn orders_table(totals_scale: f64) -> fusion_exec::Table {
    let mut b = TableBuilder::new(
        "orders",
        vec![
            TableColumn {
                name: "o_id".into(),
                data_type: DataType::Int64,
                nullable: false,
            },
            TableColumn {
                name: "o_cust".into(),
                data_type: DataType::Int64,
                nullable: true,
            },
            TableColumn {
                name: "o_total".into(),
                data_type: DataType::Float64,
                nullable: true,
            },
        ],
    );
    for i in 0..40i64 {
        b.add_row(vec![
            Value::Int64(i),
            Value::Int64(i % 5),
            Value::Float64((i % 9) as f64 * totals_scale),
        ])
        .unwrap();
    }
    b.build()
}

fn orders_session() -> Session {
    let mut s = Session::new();
    s.register_table(orders_table(10.0));
    s
}

/// Two *different* queries over the same scan+filter shape fuse across
/// the batch: the shared plan executes once and each consumer reads it
/// through its own compensating filter.
#[test]
fn different_filters_fuse_across_queries() {
    let q1 = "SELECT o_id FROM orders WHERE o_total > 30";
    let q2 = "SELECT o_id FROM orders WHERE o_total <= 30";

    let mut solo = orders_session();
    solo.set_reuse_enabled(false);
    let i1 = solo.sql(q1).unwrap();
    let i2 = solo.sql(q2).unwrap();
    assert_ne!(i1.sorted_rows(), i2.sorted_rows(), "disjoint filters");

    let batcher = orders_session();
    let batch = batcher.run_batch(&[q1, q2]).unwrap();
    assert_eq!(batch.query(0).unwrap().sorted_rows(), i1.sorted_rows());
    assert_eq!(batch.query(1).unwrap().sorted_rows(), i2.sorted_rows());
    assert!(
        batch.metrics.shared_subplans_executed >= 1,
        "expected cross-query fusion of the near-matching subplans; report: {:?}",
        batch.report
    );
    assert!(
        batch.report.groups.iter().any(|g| g.fused),
        "the shared group should come from Fuse, not an exact match: {:?}",
        batch.report
    );
    // Both fused consumers go through the mapping/compensation
    // certificate; a pristine fuse never trips the prover.
    assert!(
        batch.metrics.reuse_certificates_issued >= 2,
        "fused splices must be certified: {:?}",
        batch.metrics
    );
    assert_eq!(batch.metrics.reuse_certificates_rejected, 0);
}

/// Re-registering a table bumps its catalog version; cached results that
/// depend on it must be evicted, never served stale.
#[test]
fn cache_invalidated_by_table_reregistration() {
    let mut s = orders_session();
    let sql = "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust";

    let batch = s.run_batch(&[sql, sql]).unwrap();
    assert!(batch.metrics.shared_subplans_executed >= 1);
    assert!(s.reuse_cache_len() >= 1, "batch admitted the shared result");

    let warm = s.sql(sql).unwrap();
    assert_eq!(warm.metrics.reuse_cache_hits, 1, "warm cache serves the query");
    assert_eq!(warm.sorted_rows(), batch.query(0).unwrap().sorted_rows());

    // Same schema, different data: totals are halved.
    s.register_table(orders_table(5.0));

    let fresh = s.sql(sql).unwrap();
    assert_eq!(
        fresh.metrics.reuse_cache_hits, 0,
        "stale entry must not hit: {:?}",
        fresh.report.reuse
    );
    assert!(
        fresh.metrics.reuse_cache_evictions >= 1,
        "version mismatch evicts the stale entry"
    );
    assert!(fresh.metrics.bytes_scanned > 0, "query re-reads the table");
    assert_ne!(
        fresh.sorted_rows(),
        warm.sorted_rows(),
        "results reflect the new data, not the cached old rows"
    );

    // Cross-check against a reuse-free session over the same new data.
    let mut check = Session::new();
    check.set_reuse_enabled(false);
    check.register_table(orders_table(5.0));
    assert_eq!(fresh.sorted_rows(), check.sql(sql).unwrap().sorted_rows());
}

/// The admission queue drains as one batch and shares work between
/// queued queries.
#[test]
fn queued_queries_share_on_drain() {
    let s = orders_session();
    let sql = "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust";
    s.enqueue(sql);
    s.enqueue(sql);
    let batch = s.run_queued().unwrap();
    assert_eq!(s.queued_len(), 0);
    assert_eq!(batch.results.len(), 2);
    assert!(batch.metrics.shared_subplans_executed >= 1);
    assert_eq!(
        batch.query(0).unwrap().sorted_rows(),
        batch.query(1).unwrap().sorted_rows()
    );
}
