//! Fusing table scans (§III.A).

use fusion_expr::{ColumnMap, Expr};
use fusion_plan::{LogicalPlan, Scan};

use super::Fused;

/// `Fuse(Scan(T1), Scan(T2))` succeeds when both scans read the same base
/// table (and carry no pushed-down filters — fusion runs before pushdown).
///
/// The fused scan keeps the left instance's columns and appends any
/// right-instance columns over base ordinals the left did not read. The
/// mapping pairs right columns with left columns *positionally on the
/// base table* — each scan instantiation has fresh column identities, so
/// this is exactly the paper's `columnMap(T2, T1)`.
pub fn fuse_scans(s1: &Scan, s2: &Scan) -> Option<Fused> {
    if !s1.table.eq_ignore_ascii_case(&s2.table) {
        return None;
    }
    if !s1.filters.is_empty() || !s2.filters.is_empty() {
        return None;
    }
    let mut fields = s1.fields.clone();
    let mut column_indices = s1.column_indices.clone();
    let mut mapping = ColumnMap::new();
    for (f2, &ord2) in s2.fields.iter().zip(&s2.column_indices) {
        match column_indices.iter().position(|&o| o == ord2) {
            Some(pos) => {
                mapping.insert(f2.id, fields[pos].id);
            }
            None => {
                fields.push(f2.clone());
                column_indices.push(ord2);
            }
        }
    }
    Some(Fused {
        plan: LogicalPlan::Scan(Scan {
            table: s1.table.clone(),
            fields,
            column_indices,
            filters: vec![],
        }),
        mapping,
        left: Expr::boolean(true),
        right: Expr::boolean(true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::{fuse, FuseContext};
    use fusion_common::{DataType, IdGen};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn item_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("i_item_sk", DataType::Int64, false),
            ColumnDef::new("i_brand", DataType::Utf8, true),
            ColumnDef::new("i_size", DataType::Utf8, true),
        ]
    }

    /// The §III.A example: one fragment reads (sk, brand), the other
    /// (brand, size); the fused scan reads (sk, brand, size) and maps the
    /// second brand onto the first.
    #[test]
    fn fuses_same_table_with_positional_mapping() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let a_brand = a.col("i_brand").unwrap();
        let b_brand = b.col("i_brand").unwrap();
        let f = fuse(a.plan(), b.plan(), &ctx).unwrap();
        assert!(f.trivial());
        assert_eq!(f.mapping.get(&b_brand), Some(&a_brand));
        // All three columns present exactly once.
        assert_eq!(f.plan.schema().len(), 3);
        f.plan.validate().unwrap();
    }

    #[test]
    fn different_tables_do_not_fuse() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "store", &item_cols());
        assert!(fuse(a.plan(), b.plan(), &ctx).is_none());
    }

    #[test]
    fn disjoint_projections_union_columns() {
        let gen = IdGen::new();
        let _ctx = FuseContext::new(gen.clone());
        // Left reads ordinal 0 only; right reads ordinals 1, 2.
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let mut sa = match a.build() {
            LogicalPlan::Scan(s) => s,
            _ => unreachable!(),
        };
        sa.fields.truncate(1);
        sa.column_indices.truncate(1);
        let mut sb = match b.build() {
            LogicalPlan::Scan(s) => s,
            _ => unreachable!(),
        };
        sb.fields.remove(0);
        sb.column_indices.remove(0);
        let f = fuse_scans(&sa, &sb).unwrap();
        let schema = f.plan.schema();
        assert_eq!(schema.len(), 3);
        // Right's columns keep their identities (no mapping entries).
        assert!(f.mapping.is_empty());
        assert_eq!(schema.field(1).id, sb.fields[0].id);
    }

    #[test]
    fn scans_with_pushed_filters_do_not_fuse() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let mut sb = match b.build() {
            LogicalPlan::Scan(s) => s,
            _ => unreachable!(),
        };
        sb.filters
            .push(fusion_expr::col(sb.fields[0].id).gt(fusion_expr::lit(1i64)));
        assert!(fuse(a.plan(), &LogicalPlan::Scan(sb), &ctx).is_none());
    }
}
