//! Sort operator.

use std::cmp::Ordering;
use std::sync::Arc;

use fusion_common::{Result, Schema, Value};
use fusion_plan::SortKey;

use crate::context::{BudgetedReservation, ExecContext, IntoContext};
use crate::ops::{drain, row_bytes, BoxedOp, Operator, RowIndex};
use crate::profile::OpSpan;
use crate::{Chunk, Row, CHUNK_SIZE};

/// Fully materializing sort.
pub struct SortExec {
    input: Option<BoxedOp>,
    keys: Vec<SortKey>,
    index: RowIndex,
    schema: Schema,
    ctx: Arc<ExecContext>,
    output: Option<std::vec::IntoIter<Row>>,
    span: Option<Arc<OpSpan>>,
}

impl SortExec {
    pub fn new(input: BoxedOp, keys: Vec<SortKey>, ctx: impl IntoContext) -> Self {
        let schema = input.schema().clone();
        let index = RowIndex::new(&schema);
        SortExec {
            input: Some(input),
            keys,
            index,
            schema,
            ctx: ctx.into_ctx(),
            output: None,
            span: None,
        }
    }

    fn compute(&mut self) -> Result<Vec<Row>> {
        self.ctx.check()?;
        let mut input = self
            .input
            .take()
            .expect("sort input consumed exactly once: compute runs behind output.is_none()");
        let rows = drain(input.as_mut())?;
        let bytes: i64 = rows.iter().map(|r| row_bytes(r)).sum();
        let mut reservation = BudgetedReservation::try_new(self.ctx.clone(), bytes)?;
        if let Some(span) = &self.span {
            reservation.set_span(span.clone());
        }
        let _reservation = reservation;

        // Precompute key tuples to avoid re-evaluating during comparisons.
        let mut keyed: Vec<(Vec<Value>, Row)> = rows
            .into_iter()
            .map(|row| {
                let keys: Result<Vec<Value>> = self
                    .keys
                    .iter()
                    .map(|k| self.index.eval(&k.expr, &row))
                    .collect();
                keys.map(|k| (k, row))
            })
            .collect::<Result<_>>()?;

        let specs: Vec<(bool, bool)> = self.keys.iter().map(|k| (k.asc, k.nulls_first)).collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (asc, nulls_first)) in specs.iter().enumerate() {
                let a = &ka[i];
                let b = &kb[i];
                let ord = match (a.is_null(), b.is_null()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => {
                        if *nulls_first {
                            Ordering::Less
                        } else {
                            Ordering::Greater
                        }
                    }
                    (false, true) => {
                        if *nulls_first {
                            Ordering::Greater
                        } else {
                            Ordering::Less
                        }
                    }
                    (false, false) => {
                        let o = a.cmp(b);
                        if *asc {
                            o
                        } else {
                            o.reverse()
                        }
                    }
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        Ok(keyed.into_iter().map(|(_, r)| r).collect())
    }
}

impl Operator for SortExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.output.is_none() {
            let rows = self.compute()?;
            self.output = Some(rows.into_iter());
        }
        let it = self
            .output
            .as_mut()
            .expect("sort output was initialized above");
        let chunk: Vec<Row> = it.take(CHUNK_SIZE).collect();
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }

    fn attach_span(&mut self, span: Arc<OpSpan>) {
        self.span = Some(span);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::ops::basic::ConstantTableExec;
    use fusion_common::{ColumnId, DataType, Field};
    use fusion_expr::col;

    fn source(values: Vec<Value>) -> BoxedOp {
        let schema = Schema::new(vec![Field::new(ColumnId(1), "x", DataType::Int64, true)]);
        Box::new(ConstantTableExec::new(
            values.into_iter().map(|v| vec![v]).collect(),
            schema,
        ))
    }

    #[test]
    fn ascending_sort_nulls_last_by_default() {
        let mut s = SortExec::new(
            source(vec![Value::Int64(3), Value::Null, Value::Int64(1)]),
            vec![SortKey::asc(col(ColumnId(1)))],
            ExecMetrics::new(),
        );
        let rows = drain(&mut s).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int64(1)], vec![Value::Int64(3)], vec![Value::Null]]
        );
    }

    #[test]
    fn descending_sort() {
        let mut s = SortExec::new(
            source(vec![Value::Int64(1), Value::Int64(3), Value::Int64(2)]),
            vec![SortKey::desc(col(ColumnId(1)))],
            ExecMetrics::new(),
        );
        let rows = drain(&mut s).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int64(3)], vec![Value::Int64(2)], vec![Value::Int64(1)]]
        );
    }

    #[test]
    fn nulls_first_when_requested() {
        let mut key = SortKey::asc(col(ColumnId(1)));
        key.nulls_first = true;
        let mut s = SortExec::new(
            source(vec![Value::Int64(1), Value::Null]),
            vec![key],
            ExecMetrics::new(),
        );
        let rows = drain(&mut s).unwrap();
        assert_eq!(rows[0], vec![Value::Null]);
    }
}
