// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Golden-file tests for `EXPLAIN ANALYZE`: the deterministic portion of
//! the execution profile (operator ids, labels, row counts) for three
//! corpus queries from `tests/engine_sql.rs`, fused and baseline.
//!
//! Timings, batch counts and state sizes vary run to run, so the golden
//! files hold [`QueryProfile::render_stable`] output — ids, labels and
//! row counts only — which is also invariant across thread counts (see
//! `tests/parallel.rs::profile_row_counts_are_thread_count_invariant`).
//!
//! Regenerate after an intentional plan or profile change with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p fusion-engine --test explain_analyze
//! ```

use fusion_common::{DataType, Value};
use fusion_engine::Session;
use fusion_exec::table::TableColumn;
use fusion_exec::TableBuilder;

fn col(name: &str, data_type: DataType, nullable: bool) -> TableColumn {
    TableColumn {
        name: name.into(),
        data_type,
        nullable,
    }
}

/// One orders row: `(id, cust, region, amount)`.
type OrderRow = (i64, Option<i64>, Option<&'static str>, Option<f64>);

/// The engine_sql micro-dataset: orders (6 rows) and customers (3 rows).
fn session(fused: bool) -> Session {
    let mut s = Session::new();
    s.set_fusion_enabled(fused);
    let mut b = TableBuilder::new(
        "orders",
        vec![
            col("id", DataType::Int64, false),
            col("cust", DataType::Int64, true),
            col("region", DataType::Utf8, true),
            col("amount", DataType::Float64, true),
        ],
    );
    let rows: Vec<OrderRow> = vec![
        (1, Some(10), Some("north"), Some(50.0)),
        (2, Some(10), Some("south"), Some(75.0)),
        (3, Some(20), Some("north"), Some(20.0)),
        (4, Some(20), None, Some(90.0)),
        (5, Some(30), Some("east"), None),
        (6, None, Some("north"), Some(10.0)),
    ];
    for (id, cust, region, amount) in rows {
        b.add_row(vec![
            Value::Int64(id),
            cust.map(Value::Int64).unwrap_or(Value::Null),
            region.map(|r| Value::Utf8(r.into())).unwrap_or(Value::Null),
            amount.map(Value::Float64).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    s.register_table(b.build());

    let mut b = TableBuilder::new(
        "customers",
        vec![
            col("cid", DataType::Int64, false),
            col("name", DataType::Utf8, true),
            col("tier", DataType::Int64, true),
        ],
    );
    for (cid, name, tier) in [(10i64, "ann", 1i64), (20, "bob", 2), (40, "cem", 1)] {
        b.add_row(vec![
            Value::Int64(cid),
            Value::Utf8(name.into()),
            Value::Int64(tier),
        ])
        .unwrap();
    }
    s.register_table(b.build());
    s
}

/// Three representative corpus queries: a shared-scan UNION (the fusion
/// headline), a join with ordering, and a correlated scalar subquery
/// (the GroupByJoinToWindow shape).
const CASES: &[(&str, &str)] = &[
    (
        "union_shared_scan",
        "SELECT id FROM orders WHERE region = 'north' \
         UNION ALL SELECT id FROM orders WHERE amount > 40",
    ),
    (
        "join_order_by",
        "SELECT id, name FROM orders JOIN customers ON cust = cid ORDER BY id",
    ),
    (
        "correlated_subquery",
        "SELECT id FROM orders o1 \
         WHERE o1.amount > (SELECT AVG(o2.amount) FROM orders o2 WHERE o2.cust = o1.cust)",
    ),
];

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{name}.txt"))
}

/// Compare `actual` against the golden file, or rewrite it when
/// `BLESS_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS_GOLDEN=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "profile for {name} diverged from {}; rerun with BLESS_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn explain_analyze_profiles_match_golden_files() {
    for (name, sql) in CASES {
        for fused in [true, false] {
            let s = session(fused);
            let r = s.sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
            let profile = r.profile.as_ref().expect("EXPLAIN ANALYZE executes");
            let suffix = if fused { "fused" } else { "baseline" };
            assert_golden(&format!("{name}_{suffix}"), &profile.render_stable());
        }
    }
}

/// The rendered EXPLAIN ANALYZE text annotates every plan line with its
/// span and appends the optimizer trace.
#[test]
fn explain_analyze_text_annotates_every_operator() {
    for (_, sql) in CASES {
        let s = session(true);
        let r = s.sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let text: Vec<String> = r
            .rows
            .iter()
            .filter_map(|row| match row.first() {
                Some(Value::Utf8(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        let trace_start = text
            .iter()
            .position(|l| l.starts_with("-- optimizer trace --"))
            .expect("trace section present");
        for line in &text[..trace_start] {
            assert!(
                line.contains("[id=") && line.contains("rows_out="),
                "plan line missing span annotation: {line}\n{sql}"
            );
        }
    }
}

/// The profile JSON round-trips for every case, fused and baseline.
#[test]
fn explain_analyze_profiles_round_trip_json() {
    use fusion_exec::QueryProfile;
    for (_, sql) in CASES {
        for fused in [true, false] {
            let s = session(fused);
            s.sql(sql).unwrap();
            let profile = s.last_profile().expect("execution stored a profile");
            let parsed = QueryProfile::from_json(&profile.to_json()).unwrap();
            assert_eq!(parsed, profile, "{sql}");
        }
    }
}
