//! Whole-plan semantic checks driven by the property lattice.
//!
//! [`analyze_plan`] walks a plan bottom-up once, deriving
//! [`lattice::PlanProps`] per node and checking every expression position
//! against the derived facts:
//!
//! * **tag dispatch coverage** — wherever a filter predicate or join
//!   condition contains a disjunction whose branches each pin an internal
//!   `$tag` column to an integer literal, the dispatched values must cover
//!   the tag's derived domain exactly once each: no branch dropped, none
//!   duplicated, none outside the domain;
//! * **tag domain membership** — any equality `$tag = k` anywhere in the
//!   plan (filters, join conditions, masks, projections) with `k` outside
//!   the derived domain can never be TRUE and indicates a corrupted
//!   rewrite (e.g. a retyped tag literal);
//! * **mask typing** — aggregate, window and mark-distinct masks must be
//!   boolean over their input schema (belt-and-braces on top of
//!   structural validation).

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

use fusion_common::{ColumnId, DataType, Value};
use fusion_expr::{split_conjuncts, split_disjuncts, BinaryOp, Expr};
use fusion_plan::LogicalPlan;

use super::lattice::{self, PlanProps};
use super::{AnalysisCode, Violation};

/// Run all semantic checks over a plan. Empty result = OK.
pub fn analyze_plan(plan: &LogicalPlan) -> Vec<Violation> {
    let mut v = Vec::new();
    walk(plan, &mut v);
    v
}

fn walk(plan: &LogicalPlan, v: &mut Vec<Violation>) -> PlanProps {
    let children: Vec<PlanProps> = plan
        .children()
        .into_iter()
        .map(|c| walk(c, v))
        .collect();
    match plan {
        LogicalPlan::Filter(f) => {
            let domains = merged_domains(&children);
            check_dispatch(&f.predicate, &domains, v);
            check_domains(&f.predicate, &domains, v);
        }
        LogicalPlan::Join(j) => {
            let domains = merged_domains(&children);
            check_dispatch(&j.condition, &domains, v);
            check_domains(&j.condition, &domains, v);
        }
        LogicalPlan::Project(p) => {
            let domains = merged_domains(&children);
            for pe in &p.exprs {
                check_domains(&pe.expr, &domains, v);
            }
        }
        LogicalPlan::Aggregate(g) => {
            let domains = merged_domains(&children);
            let input_schema = g.input.schema();
            for a in &g.aggregates {
                check_dispatch(&a.agg.mask, &domains, v);
                check_domains(&a.agg.mask, &domains, v);
                check_boolean_mask(&a.agg.mask, &input_schema, &a.name, v);
            }
        }
        LogicalPlan::Window(w) => {
            let domains = merged_domains(&children);
            let input_schema = w.input.schema();
            for we in &w.exprs {
                check_dispatch(&we.window.mask, &domains, v);
                check_domains(&we.window.mask, &domains, v);
                check_boolean_mask(&we.window.mask, &input_schema, &we.name, v);
            }
        }
        LogicalPlan::MarkDistinct(m) => {
            let domains = merged_domains(&children);
            check_domains(&m.mask, &domains, v);
            check_boolean_mask(&m.mask, &m.input.schema(), &m.mark_name, v);
        }
        _ => {}
    }
    lattice::node_props(plan, &children)
}

fn merged_domains(children: &[PlanProps]) -> HashMap<ColumnId, BTreeSet<i64>> {
    let mut out = HashMap::new();
    for c in children {
        out.extend(c.tag_domains.iter().map(|(k, d)| (*k, d.clone())));
    }
    out
}

fn check_boolean_mask(mask: &Expr, schema: &fusion_common::Schema, owner: &str, v: &mut Vec<Violation>) {
    match mask.data_type(schema) {
        Ok(DataType::Boolean) | Err(_) => {} // type errors are validate's job
        Ok(other) => v.push(Violation::new(
            AnalysisCode::Mask,
            format!("mask of `{owner}` has type {other:?}, expected Boolean"),
        )),
    }
}

/// `col = int-literal` (either orientation) at a conjunct's top level.
fn tag_equalities(e: &Expr) -> HashMap<ColumnId, i64> {
    let mut out = HashMap::new();
    for c in split_conjuncts(e) {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = &c
        {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(id), Expr::Literal(Value::Int64(k)))
                | (Expr::Literal(Value::Int64(k)), Expr::Column(id)) => {
                    out.insert(*id, *k);
                }
                _ => {}
            }
        }
    }
    out
}

/// Dispatch coverage: for each conjunct of `pred` that is a disjunction
/// where every disjunct pins the same domained tag column, the dispatched
/// values must be exactly the domain, once each.
fn check_dispatch(
    pred: &Expr,
    domains: &HashMap<ColumnId, BTreeSet<i64>>,
    v: &mut Vec<Violation>,
) {
    if domains.is_empty() {
        return;
    }
    for conjunct in split_conjuncts(pred) {
        let disjuncts = split_disjuncts(&conjunct);
        if disjuncts.len() < 2 {
            continue;
        }
        let eqs: Vec<HashMap<ColumnId, i64>> = disjuncts.iter().map(tag_equalities).collect();
        let Some(first) = eqs.first() else { continue };
        for tag in first.keys() {
            let Some(domain) = domains.get(tag) else {
                continue;
            };
            // Only a full dispatch (every branch pins this tag) is checked.
            let Some(values) = eqs
                .iter()
                .map(|m| m.get(tag).copied())
                .collect::<Option<Vec<i64>>>()
            else {
                continue;
            };
            let mut seen = BTreeSet::new();
            for val in &values {
                if !domain.contains(val) {
                    v.push(Violation::new(
                        AnalysisCode::TagDispatch,
                        format!(
                            "dispatch on tag #{} selects value {val} outside its domain {domain:?}",
                            tag.0
                        ),
                    ));
                }
                if !seen.insert(*val) {
                    v.push(Violation::new(
                        AnalysisCode::TagDispatch,
                        format!("dispatch on tag #{} selects value {val} more than once", tag.0),
                    ));
                }
            }
            for missing in domain.iter().filter(|d| !seen.contains(d)) {
                v.push(Violation::new(
                    AnalysisCode::TagDispatch,
                    format!(
                        "dispatch on tag #{} never selects branch value {missing}",
                        tag.0
                    ),
                ));
            }
        }
    }
}

/// Flag any equality pinning a domained tag column to a value outside its
/// domain, anywhere in the expression tree (CASE conditions, masks, ...).
fn check_domains(
    expr: &Expr,
    domains: &HashMap<ColumnId, BTreeSet<i64>>,
    v: &mut Vec<Violation>,
) {
    if domains.is_empty() {
        return;
    }
    let hits: RefCell<Vec<(ColumnId, i64)>> = RefCell::new(Vec::new());
    // `transform` visits every node; returning None leaves the tree
    // unchanged, so this is a read-only walk.
    let _ = expr.transform(&|e| {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = &e
        {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(id), Expr::Literal(Value::Int64(k)))
                | (Expr::Literal(Value::Int64(k)), Expr::Column(id)) => {
                    if let Some(domain) = domains.get(id) {
                        if !domain.contains(k) {
                            hits.borrow_mut().push((*id, *k));
                        }
                    }
                }
                _ => {}
            }
        }
        None
    });
    for (id, k) in hits.into_inner() {
        v.push(Violation::new(
            AnalysisCode::TagDispatch,
            format!(
                "comparison `#{} = {k}` can never be TRUE: value outside the tag domain",
                id.0
            ),
        ));
    }
}
