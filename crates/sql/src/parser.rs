//! Recursive-descent SQL parser.

use fusion_common::{FusionError, Result};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse a SQL string into a [`Query`].
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a SQL string into a top-level [`Statement`], accepting an
/// optional `EXPLAIN [ANALYZE]` prefix in front of the query.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.eat_kw("EXPLAIN") {
        let analyze = p.eat_kw("ANALYZE");
        Statement::Explain {
            analyze,
            query: p.parse_query()?,
        }
    } else {
        Statement::Query(p.parse_query()?)
    };
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(FusionError::Sql(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(FusionError::Sql(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(FusionError::Sql(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Word(w) => Ok(w),
            Token::QuotedIdent(w) => Ok(w),
            other => Err(FusionError::Sql(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---- query level ----

    fn parse_query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.ident()?;
                self.expect_kw("AS")?;
                self.expect(&Token::LParen)?;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                ctes.push((name, q));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.next() {
                Token::Number(n) => {
                    limit = Some(n.parse::<u64>().map_err(|_| {
                        FusionError::Sql(format!("invalid LIMIT value `{n}`"))
                    })?);
                }
                other => {
                    return Err(FusionError::Sql(format!(
                        "expected number after LIMIT, found {other:?}"
                    )));
                }
            }
        }
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_term()?;
        while self.peek().is_kw("UNION") {
            self.pos += 1;
            self.expect_kw("ALL")?;
            let right = self.parse_set_term()?;
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_set_term(&mut self) -> Result<SetExpr> {
        if self.eat(&Token::LParen) {
            let inner = self.parse_set_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let Token::Word(w) = self.peek().clone() {
            if self.tokens.get(self.pos + 1) == Some(&Token::Dot)
                && self.tokens.get(self.pos + 2) == Some(&Token::Star)
            {
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(w));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                // Bare alias: a word that is not a clause keyword.
                Token::Word(w)
                    if !is_clause_keyword(w) =>
                {
                    let w = w.clone();
                    self.pos += 1;
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.peek().is_kw("INNER") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek().is_kw("LEFT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek().is_kw("CROSS") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if kind != JoinKind::Cross && self.eat_kw("ON") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            // Subquery or parenthesized join.
            if self.peek().is_kw("SELECT") || self.peek().is_kw("WITH") {
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                self.eat_kw("AS");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(q),
                    alias,
                });
            }
            let inner = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let alias = match self.peek() {
            Token::Word(w) if !is_clause_keyword(w) && !is_join_keyword(w) => {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
            _ => {
                if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                }
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expression level (precedence climbing) ----

    pub(crate) fn parse_expr(&mut self) -> Result<AstExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = AstExpr::Binary {
                op: AstBinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = AstExpr::Binary {
                op: AstBinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            return Ok(AstExpr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<AstExpr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.peek().is_kw("IS") {
            self.pos += 1;
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = if self.peek().is_kw("NOT")
            && (self.tokens.get(self.pos + 1).is_some_and(|t| {
                t.is_kw("BETWEEN") || t.is_kw("IN")
            })) {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            if self.peek().is_kw("SELECT") || self.peek().is_kw("WITH") {
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                return Ok(AstExpr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(FusionError::Sql("dangling NOT".into()));
        }

        let op = match self.peek() {
            Token::Eq => AstBinaryOp::Eq,
            Token::NotEq => AstBinaryOp::NotEq,
            Token::Lt => AstBinaryOp::Lt,
            Token::LtEq => AstBinaryOp::LtEq,
            Token::Gt => AstBinaryOp::Gt,
            Token::GtEq => AstBinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(AstExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => AstBinaryOp::Plus,
                Token::Minus => AstBinaryOp::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => AstBinaryOp::Multiply,
                Token::Slash => AstBinaryOp::Divide,
                Token::Percent => AstBinaryOp::Modulo,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        if self.eat(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(AstExpr::Negate(Box::new(inner)));
        }
        if self.eat(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.pos += 1;
                Ok(AstExpr::Number(n))
            }
            Token::String(s) => {
                self.pos += 1;
                Ok(AstExpr::String(s))
            }
            Token::LParen => {
                self.pos += 1;
                if self.peek().is_kw("SELECT") || self.peek().is_kw("WITH") {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    return Ok(AstExpr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Word(w) if w.eq_ignore_ascii_case("CASE") => self.parse_case(),
            Token::Word(w) if w.eq_ignore_ascii_case("CAST") => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect_kw("AS")?;
                let mut ty = self.ident()?;
                // Consume optional (p[, s]) of DECIMAL(p, s) etc.
                if self.eat(&Token::LParen) {
                    while !self.eat(&Token::RParen) {
                        self.pos += 1;
                    }
                }
                if ty.eq_ignore_ascii_case("DOUBLE") && self.peek().is_kw("PRECISION") {
                    self.pos += 1;
                    ty = "DOUBLE".into();
                }
                self.expect(&Token::RParen)?;
                Ok(AstExpr::Cast {
                    expr: Box::new(e),
                    ty,
                })
            }
            Token::Word(w) if w.eq_ignore_ascii_case("TRUE") => {
                self.pos += 1;
                Ok(AstExpr::Bool(true))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("FALSE") => {
                self.pos += 1;
                Ok(AstExpr::Bool(false))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(AstExpr::Null)
            }
            Token::Word(w) if is_clause_keyword(&w) => Err(FusionError::Sql(format!(
                "unexpected keyword `{w}` in expression"
            ))),
            Token::Word(w) | Token::QuotedIdent(w) => {
                self.pos += 1;
                // Function call?
                if *self.peek() == Token::LParen {
                    return self.parse_function(w);
                }
                // Qualified identifier a.b
                let mut parts = vec![w];
                while self.eat(&Token::Dot) {
                    parts.push(self.ident()?);
                }
                Ok(AstExpr::Ident(parts))
            }
            other => Err(FusionError::Sql(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    fn parse_function(&mut self, name: String) -> Result<AstExpr> {
        self.expect(&Token::LParen)?;
        let distinct = self.eat_kw("DISTINCT");
        let mut args = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                if self.eat(&Token::Star) {
                    args.push(AstExpr::Star);
                } else {
                    args.push(self.parse_expr()?);
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let filter = if self.peek().is_kw("FILTER") {
            self.pos += 1;
            self.expect(&Token::LParen)?;
            self.expect_kw("WHERE")?;
            let f = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            Some(Box::new(f))
        } else {
            None
        };
        let over = if self.peek().is_kw("OVER") {
            self.pos += 1;
            self.expect(&Token::LParen)?;
            self.expect_kw("PARTITION")?;
            self.expect_kw("BY")?;
            let mut parts = Vec::new();
            loop {
                parts.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Some(parts)
        } else {
            None
        };
        Ok(AstExpr::Function {
            name,
            args,
            distinct,
            filter,
            over,
        })
    }

    fn parse_case(&mut self) -> Result<AstExpr> {
        self.expect_kw("CASE")?;
        let operand = if !self.peek().is_kw("WHEN") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(AstExpr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "UNION"
            | "ON"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "RIGHT"
            | "CROSS"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "IN"
            | "IS"
            | "BETWEEN"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "ASC"
            | "DESC"
            | "FILTER"
            | "OVER"
            | "WITH"
            | "SELECT"
    )
}

fn is_join_keyword(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "JOIN" | "INNER" | "LEFT" | "RIGHT" | "CROSS" | "ON"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_explain_and_explain_analyze() {
        match parse_statement("EXPLAIN SELECT a FROM t").unwrap() {
            Statement::Explain { analyze, .. } => assert!(!analyze),
            other => panic!("expected Explain, got {other:?}"),
        }
        match parse_statement("explain analyze SELECT a FROM t").unwrap() {
            Statement::Explain { analyze, .. } => assert!(analyze),
            other => panic!("expected Explain, got {other:?}"),
        }
        match parse_statement("SELECT a FROM t").unwrap() {
            Statement::Query(q) => assert!(matches!(q.body, SetExpr::Select(_))),
            other => panic!("expected Query, got {other:?}"),
        }
        // EXPLAIN needs a query behind it.
        assert!(parse_statement("EXPLAIN").is_err());
        // And plain `parse` still rejects the keyword prefix.
        assert!(parse("EXPLAIN SELECT a FROM t").is_err());
    }

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT a, b + 1 AS c FROM t WHERE a > 10 ORDER BY a DESC LIMIT 5")
            .unwrap();
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        match &q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.projection.len(), 2);
                assert!(s.selection.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_with_ctes_and_union() {
        let q = parse(
            "WITH cte AS (SELECT x FROM t) \
             SELECT x FROM cte WHERE x = 1 UNION ALL SELECT x FROM cte WHERE x = 2",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 1);
        assert!(matches!(q.body, SetExpr::UnionAll(_, _)));
    }

    #[test]
    fn parses_joins_and_aliases() {
        let q = parse(
            "SELECT s.a FROM store_sales s JOIN item i ON s.sk = i.sk \
             LEFT JOIN web w ON w.k = i.k, date_dim",
        )
        .unwrap();
        match &q.body {
            SetExpr::Select(s) => assert_eq!(s.from.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_aggregates_with_filter_and_window() {
        let q = parse(
            "SELECT COUNT(*) FILTER (WHERE x > 1), SUM(DISTINCT y), \
             AVG(z) OVER (PARTITION BY k, j) FROM t GROUP BY k",
        )
        .unwrap();
        match &q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.projection.len(), 3);
                match &s.projection[2] {
                    SelectItem::Expr { expr, .. } => assert!(expr.has_window()),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_subqueries() {
        let q = parse(
            "SELECT a FROM (SELECT a FROM t) x \
             WHERE a IN (SELECT b FROM u) AND a > (SELECT AVG(c) FROM v)",
        )
        .unwrap();
        match &q.body {
            SetExpr::Select(s) => {
                assert!(matches!(s.from[0], TableRef::Subquery { .. }));
                let sel = s.selection.as_ref().unwrap();
                let mut in_sub = false;
                let mut scalar = false;
                sel.walk(&mut |e| {
                    if matches!(e, AstExpr::InSubquery { .. }) {
                        in_sub = true;
                    }
                    if matches!(e, AstExpr::ScalarSubquery(_)) {
                        scalar = true;
                    }
                });
                assert!(in_sub && scalar);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_case_and_between() {
        let q = parse(
            "SELECT CASE WHEN a BETWEEN 1 AND 20 THEN 'low' ELSE 'high' END FROM t",
        )
        .unwrap();
        match &q.body {
            SetExpr::Select(s) => match &s.projection[0] {
                SelectItem::Expr { expr, .. } => {
                    assert!(matches!(expr, AstExpr::Case { .. }));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_not_in_and_is_null() {
        let q = parse("SELECT a FROM t WHERE a NOT IN (1, 2) AND b IS NOT NULL").unwrap();
        let _ = q;
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t extra garbage !!!").is_err());
    }

    #[test]
    fn parses_wildcards() {
        let q = parse("SELECT *, t.* FROM t").unwrap();
        match &q.body {
            SetExpr::Select(s) => {
                assert!(matches!(s.projection[0], SelectItem::Wildcard));
                assert!(matches!(s.projection[1], SelectItem::QualifiedWildcard(_)));
            }
            _ => panic!(),
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn parses_nested_with_inside_subquery() {
        let q = parse(
            "SELECT x FROM (WITH inner_cte AS (SELECT a AS x FROM t) \
             SELECT x FROM inner_cte) s",
        )
        .unwrap();
        match &q.body {
            SetExpr::Select(sel) => match &sel.from[0] {
                TableRef::Subquery { query, .. } => assert_eq!(query.ctes.len(), 1),
                _ => panic!("expected subquery"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_three_way_union() {
        let q = parse("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3").unwrap();
        fn depth(e: &SetExpr) -> usize {
            match e {
                SetExpr::UnionAll(l, r) => depth(l) + depth(r),
                SetExpr::Select(_) => 1,
            }
        }
        assert_eq!(depth(&q.body), 3);
    }

    #[test]
    fn parses_cast_with_precision_and_double_precision() {
        parse("SELECT CAST(a AS DECIMAL(15, 4)) FROM t").unwrap();
        parse("SELECT CAST(a AS DOUBLE) FROM t").unwrap();
    }

    #[test]
    fn operator_precedence_binds_correctly() {
        let q = parse("SELECT a + b * c = d OR e AND f FROM t").unwrap();
        // Shape: (((a + (b*c)) = d) OR (e AND f))
        match &q.body {
            SetExpr::Select(s) => match &s.projection[0] {
                SelectItem::Expr { expr, .. } => match expr {
                    AstExpr::Binary { op, right, .. } => {
                        assert_eq!(*op, AstBinaryOp::Or);
                        assert!(matches!(
                            right.as_ref(),
                            AstExpr::Binary { op: AstBinaryOp::And, .. }
                        ));
                    }
                    other => panic!("unexpected: {other:?}"),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let q = parse("SELECT a FROM t WHERE NOT b = 1 AND c = 2").unwrap();
        match &q.body {
            SetExpr::Select(s) => match s.selection.as_ref().unwrap() {
                AstExpr::Binary { op: AstBinaryOp::And, left, .. } => {
                    assert!(matches!(left.as_ref(), AstExpr::Not(_)));
                }
                other => panic!("unexpected: {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn unary_minus_and_numeric_literals() {
        parse("SELECT -a, -1.5, +2 FROM t").unwrap();
    }

    #[test]
    fn rejects_unbalanced_parens_and_missing_end() {
        assert!(parse("SELECT (a FROM t").is_err());
        assert!(parse("SELECT CASE WHEN a THEN b FROM t").is_err());
        assert!(parse("SELECT a FROM (SELECT b FROM t)").is_err()); // missing alias
    }

    #[test]
    fn parses_group_by_multiple_and_having() {
        let q = parse(
            "SELECT a, b, COUNT(*) FROM t GROUP BY a, b HAVING COUNT(*) > 5 AND a = 1",
        )
        .unwrap();
        match &q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.group_by.len(), 2);
                assert!(s.having.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        parse("select a from t where a between 1 and 2 group by a having count(*) > 0 order by a desc limit 1").unwrap();
    }
}
