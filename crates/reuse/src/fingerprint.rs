//! Plan canonicalization and fingerprinting — layer 1 of workload reuse.
//!
//! The canonical encoder itself lives in `fusion_core::analysis::canon`
//! (the reuse-soundness prover certifies rewrites in the same canonical
//! string space the cache keys on, so both must share one encoder); this
//! module re-exports it and layers the reuse-relationship classification
//! on top:
//!
//! * [`Fingerprint`] / [`CanonicalForm`] — a stable 64-bit hash of the
//!   canonical serialization plus per-position slot strings, alias-,
//!   instance- and (where semantics allow) order-insensitive;
//! * [`match_subplans`] — classify two subplans from exact equivalence
//!   through subsumption down to a `Fuse` result or `⊥`;
//! * [`subsumes`] — whether a cached plan's rows strictly contain a
//!   consumer's. This is certificate-backed: it holds exactly when
//!   [`fusion_core::analysis::certify_subsumption`] issues a certificate,
//!   so the cache can never claim a subsumption the prover would refuse
//!   to serve.

use fusion_core::analysis::certify_subsumption;
use fusion_core::analysis::canon::{self, rendered_conjuncts, resolve_of};
use fusion_core::{fuse, FuseContext, Fused};
use fusion_plan::LogicalPlan;

pub use fusion_core::analysis::canon::{
    canonical_form, fingerprint, position_map, CanonicalForm, Fingerprint,
};

/// How two subplans relate, from exact equivalence down to `⊥`.
#[derive(Debug)]
pub enum SubplanMatch {
    /// Canonically identical: same fingerprint and encoding. Rows of one
    /// can serve the other directly (after slot alignment).
    Equivalent,
    /// The left plan's rows are a superset of the right's: `right` is the
    /// same relation under strictly more filter conjuncts. Left's result
    /// can serve right through a compensating filter.
    LeftSubsumesRight,
    /// Symmetric case: right's rows are a superset of left's.
    RightSubsumesLeft,
    /// Not equivalent and neither subsumes, but the paper's `Fuse`
    /// primitive found a common covering plan with compensations.
    Fused(Box<Fused>),
    /// No reuse relationship found (`⊥`).
    Distinct,
}

/// Classify the reuse relationship between two subplans: fingerprint
/// equality first, then a conjunct-set subsumption check for filter roots
/// over canonically-equal inputs, then fall back to [`fuse`].
pub fn match_subplans(p1: &LogicalPlan, p2: &LogicalPlan, ctx: &FuseContext) -> SubplanMatch {
    let c1 = canonical_form(p1);
    let c2 = canonical_form(p2);
    if c1.encoding == c2.encoding {
        return SubplanMatch::Equivalent;
    }
    if let Some(m) = filter_subsumption(p1, p2) {
        return m;
    }
    match fuse(p1, p2, ctx) {
        Some(f) => SubplanMatch::Fused(Box::new(f)),
        None => SubplanMatch::Distinct,
    }
}

/// Whether `superset`'s result strictly contains every row of `subset`'s,
/// recoverable by re-applying `subset`'s own predicate — backed by the
/// reuse-soundness prover, which peels projection narrowing (computed
/// output expressions included) off both sides, requires strict conjunct
/// containment over the same canonical base, and checks that every
/// consumer column is recoverable from the cached layout. See
/// `fusion_core::analysis::reuse::certify_subsumption` for the proof
/// obligations; callers that need the rejection reasons (for EXPLAIN)
/// call the certifier directly.
pub fn subsumes(superset: &LogicalPlan, subset: &LogicalPlan) -> bool {
    certify_subsumption(superset, subset).is_ok()
}

/// Subsumption fast path: both plans filter the same canonical input, and
/// one side's conjunct set strictly contains the other's.
fn filter_subsumption(p1: &LogicalPlan, p2: &LogicalPlan) -> Option<SubplanMatch> {
    let (LogicalPlan::Filter(f1), LogicalPlan::Filter(f2)) = (p1, p2) else {
        return None;
    };
    let (enc1, slots1) = canon::encode(&f1.input);
    let (enc2, slots2) = canon::encode(&f2.input);
    if enc1 != enc2 {
        return None;
    }
    let r1 = resolve_of(&f1.input, &slots1);
    let r2 = resolve_of(&f2.input, &slots2);
    let c1 = rendered_conjuncts(&f1.predicate, &r1);
    let c2 = rendered_conjuncts(&f2.predicate, &r2);
    let contains = |sup: &[String], sub: &[String]| sub.iter().all(|c| sup.contains(c));
    if contains(&c1, &c2) && c1.len() > c2.len() {
        // p1 filters harder: p2's rows ⊇ p1's rows.
        return Some(SubplanMatch::RightSubsumesLeft);
    }
    if contains(&c2, &c1) && c2.len() > c1.len() {
        return Some(SubplanMatch::LeftSubsumesRight);
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;
    use fusion_common::{ColumnId, DataType, IdGen};
    use fusion_expr::{col, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{JoinType, PlanBuilder};

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("a", DataType::Int64, false),
            ColumnDef::new("b", DataType::Int64, false),
            ColumnDef::new("c", DataType::Float64, true),
        ]
    }

    fn scan(gen: &IdGen) -> (LogicalPlan, Vec<ColumnId>) {
        let b = PlanBuilder::scan(gen, "t", &cols());
        let ids = b.plan().schema().ids();
        (b.build(), ids)
    }

    #[test]
    fn identical_plans_same_fingerprint_fresh_ids() {
        let gen = IdGen::new();
        let (p1, ids1) = scan(&gen);
        let (p2, ids2) = scan(&gen);
        assert_ne!(ids1, ids2, "instances mint fresh ids");
        assert_eq!(fingerprint(&p1), fingerprint(&p2));
    }

    #[test]
    fn predicate_order_does_not_change_fingerprint() {
        let gen = IdGen::new();
        let (s1, ids1) = scan(&gen);
        let (s2, ids2) = scan(&gen);
        let f1 = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s1),
            predicate: col(ids1[0]).gt(lit(5i64)).and(col(ids1[1]).lt(lit(9i64))),
        });
        let f2 = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s2),
            predicate: col(ids2[1]).lt(lit(9i64)).and(col(ids2[0]).gt(lit(5i64))),
        });
        assert_eq!(fingerprint(&f1), fingerprint(&f2));
    }

    #[test]
    fn different_predicates_different_fingerprint() {
        let gen = IdGen::new();
        let (s1, ids1) = scan(&gen);
        let (s2, ids2) = scan(&gen);
        let f1 = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s1),
            predicate: col(ids1[0]).gt(lit(5i64)),
        });
        let f2 = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s2),
            predicate: col(ids2[0]).gt(lit(6i64)),
        });
        assert_ne!(fingerprint(&f1), fingerprint(&f2));
    }

    #[test]
    fn join_operand_swap_same_fingerprint_permuted_slots() {
        let gen = IdGen::new();
        let (t1, ids1) = scan(&gen);
        let b1 = PlanBuilder::scan(&gen, "u", &[ColumnDef::new("k", DataType::Int64, false)]);
        let uid1 = b1.plan().schema().ids()[0];
        let u1 = b1.build();

        let (t2, ids2) = scan(&gen);
        let b2 = PlanBuilder::scan(&gen, "u", &[ColumnDef::new("k", DataType::Int64, false)]);
        let uid2 = b2.plan().schema().ids()[0];
        let u2 = b2.build();

        let j1 = LogicalPlan::Join(fusion_plan::Join {
            left: Box::new(t1),
            right: Box::new(u1),
            join_type: JoinType::Inner,
            condition: col(ids1[0]).eq_to(col(uid1)),
        });
        let j2 = LogicalPlan::Join(fusion_plan::Join {
            left: Box::new(u2),
            right: Box::new(t2),
            join_type: JoinType::Inner,
            condition: col(uid2).eq_to(col(ids2[0])),
        });
        let c1 = canonical_form(&j1);
        let c2 = canonical_form(&j2);
        assert_eq!(c1.fingerprint, c2.fingerprint);
        assert_eq!(c1.encoding, c2.encoding);
        // Output layouts are permutations of one another.
        let map = position_map(&c2.slots, &c1.slots).unwrap();
        assert_eq!(map, vec![3, 0, 1, 2]);
    }

    #[test]
    fn self_join_sides_stay_distinct() {
        let gen = IdGen::new();
        let mk = |cross_cols: bool| {
            let (l, lids) = scan(&gen);
            let (r, rids) = scan(&gen);
            let cond = if cross_cols {
                col(lids[0]).eq_to(col(rids[0]))
            } else {
                col(lids[0]).eq_to(col(lids[1]))
            };
            LogicalPlan::Join(fusion_plan::Join {
                left: Box::new(l),
                right: Box::new(r),
                join_type: JoinType::Inner,
                condition: cond,
            })
        };
        assert_ne!(fingerprint(&mk(true)), fingerprint(&mk(false)));
    }

    #[test]
    fn filter_subsumption_detected() {
        let gen = IdGen::new();
        let (s1, ids1) = scan(&gen);
        let (s2, ids2) = scan(&gen);
        let narrow = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s1),
            predicate: col(ids1[0]).gt(lit(5i64)).and(col(ids1[1]).lt(lit(9i64))),
        });
        let wide = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s2),
            predicate: col(ids2[1]).lt(lit(9i64)),
        });
        let ctx = FuseContext::new(gen.clone());
        assert!(matches!(
            match_subplans(&narrow, &wide, &ctx),
            SubplanMatch::RightSubsumesLeft
        ));
        assert!(matches!(
            match_subplans(&wide, &narrow, &ctx),
            SubplanMatch::LeftSubsumesRight
        ));
    }

    #[test]
    fn near_match_falls_back_to_fuse() {
        let gen = IdGen::new();
        let (s1, ids1) = scan(&gen);
        let (s2, ids2) = scan(&gen);
        let f1 = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s1),
            predicate: col(ids1[0]).gt(lit(5i64)),
        });
        let f2 = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(s2),
            predicate: col(ids2[0]).lt(lit(0i64)),
        });
        let ctx = FuseContext::new(gen.clone());
        match match_subplans(&f1, &f2, &ctx) {
            SubplanMatch::Fused(f) => {
                assert!(!f.left.is_true_literal());
                assert!(!f.right.is_true_literal());
            }
            other => panic!("expected Fused, got {other:?}"),
        }
    }

    #[test]
    fn subsumption_covers_computed_projection_narrowing() {
        // The cached superset projects a *computed* expression (a*b) over
        // its filter; the consumer filters the same projection harder.
        // Pre-certificate `subsumes` refused any non-column projection;
        // the prover now accepts it (and refuses a mismatched expression).
        let gen = IdGen::new();
        let mk = |mul: bool, extra: bool| {
            let (s, ids) = scan(&gen);
            let expr = if mul {
                col(ids[0]).mul(col(ids[1]))
            } else {
                col(ids[0]).add(col(ids[1]))
            };
            let filtered = LogicalPlan::Filter(fusion_plan::Filter {
                input: Box::new(s.clone()),
                predicate: col(ids[0]).gt(lit(5i64)),
            });
            let cached = LogicalPlan::Project(fusion_plan::Project {
                input: Box::new(filtered),
                exprs: vec![
                    fusion_plan::ProjExpr::new(gen.fresh(), "a", col(ids[0])),
                    fusion_plan::ProjExpr::new(gen.fresh(), "w", expr.clone()),
                ],
            });
            let inner = LogicalPlan::Project(fusion_plan::Project {
                input: Box::new(s),
                exprs: vec![
                    fusion_plan::ProjExpr::new(gen.fresh(), "a", col(ids[0])),
                    fusion_plan::ProjExpr::new(gen.fresh(), "w", expr),
                ],
            });
            let out = inner.schema().ids();
            let pred = if extra {
                col(out[0]).gt(lit(5i64)).and(col(out[1]).lt(lit(100i64)))
            } else {
                col(out[0]).gt(lit(5i64))
            };
            let consumer = LogicalPlan::Filter(fusion_plan::Filter {
                input: Box::new(inner),
                predicate: pred,
            });
            (cached, consumer)
        };
        let (cached, consumer) = mk(true, true);
        assert!(subsumes(&cached, &consumer));
        // Equal conjunct sets are an exact match, not a subsumption.
        let (cached_eq, consumer_eq) = mk(true, false);
        assert!(!subsumes(&cached_eq, &consumer_eq));
        // A cached a+b cannot serve a consumer computing a*b.
        let (cached_add, _) = mk(false, true);
        assert!(!subsumes(&cached_add, &consumer));
    }
}
