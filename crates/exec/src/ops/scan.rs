//! Table scan with partition pruning, byte metering, and vectorized
//! (columnar) predicate evaluation.
//!
//! The scan is split in two layers:
//!
//! * [`ScanFragment`] — an immutable, `Send + Sync` description of the
//!   scan that reads **one partition at a time** ([`ScanFragment::
//!   scan_partition`]): pruning, fault injection, metering, the
//!   vectorized predicate pass over the columnar arrays, and row
//!   materialization. A partition is the morsel of the parallel executor.
//! * [`ScanExec`] — the sequential pull operator: iterates the fragment's
//!   partitions on the caller's thread. The morsel-parallel counterpart
//!   is [`crate::ops::exchange::GatherExec`], which drives the same
//!   fragment from a worker pool.

use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Instant;

use fusion_common::{FusionError, Result, Schema, Value};
use fusion_expr::{BinaryOp, ColumnBatch, Expr};

use crate::context::{ExecContext, IntoContext};
use crate::ops::Operator;
use crate::profile::OpSpan;
use crate::table::Table;
use crate::{Chunk, Row, CHUNK_SIZE};

/// A `col <op> literal` conjunct evaluated column-at-a-time on the
/// partition arrays, before any row is materialized.
#[derive(Debug, Clone)]
struct VectorPredicate {
    /// Position in the scan's output schema / `column_indices`.
    pos: usize,
    op: BinaryOp,
    literal: Value,
}

/// Columnar output of one scanned partition: the partition's arrays in
/// output-schema order (shared with the table — no copy) plus the
/// selection vector of rows surviving the pushed-down filters. This is
/// the unit a [`crate::pipeline::FusedPipeline`] pushes through its
/// operator chain; the batch-at-a-time path gathers it into rows via
/// [`ColumnarMorsel::gather_rows`].
pub struct ColumnarMorsel {
    /// One array per scan-output column, parallel to the scan schema.
    pub columns: Vec<Arc<Vec<Value>>>,
    /// Row indices into `columns` that survived pruning and filters,
    /// ascending.
    pub selection: Vec<usize>,
    /// The partition this morsel was scanned from.
    pub partition: usize,
}

impl ColumnarMorsel {
    /// Materialize the selected rows (the batch-at-a-time path).
    pub fn gather_rows(&self) -> Vec<Row> {
        self.selection
            .iter()
            .map(|&r| self.columns.iter().map(|c| c[r].clone()).collect())
            .collect()
    }
}

/// Immutable partition-granular scan: shared by the sequential
/// [`ScanExec`] and every morsel-parallel operator.
pub struct ScanFragment {
    table: Arc<Table>,
    /// Base-table ordinals to read, parallel to `schema` fields.
    column_indices: Vec<usize>,
    schema: Schema,
    /// (op, literal) conjuncts over the partition column, for pruning.
    prune_predicates: Vec<(BinaryOp, Value)>,
    /// Conjuncts evaluable column-at-a-time (selection-vector pass).
    vector_predicates: Vec<VectorPredicate>,
    /// Remaining filters, re-applied row-wise on the selection.
    residual_filters: Vec<Expr>,
    ctx: Arc<ExecContext>,
    /// Profiling span of the scan's plan node. The fragment records rows
    /// scanned/emitted per partition and its busy time; whichever worker
    /// scans a morsel, the counts land on the same span.
    span: Option<Arc<OpSpan>>,
}

impl ScanFragment {
    pub fn new(
        table: Arc<Table>,
        column_indices: Vec<usize>,
        schema: Schema,
        filters: Vec<Expr>,
        ctx: impl IntoContext,
    ) -> Self {
        let prune_predicates = match table.partition_column {
            Some(pc) => extract_prune_predicates(&filters, &schema, &column_indices, pc),
            None => vec![],
        };
        let (vector_predicates, residual_filters) = split_vector_predicates(&filters, &schema);
        ScanFragment {
            table,
            column_indices,
            schema,
            prune_predicates,
            vector_predicates,
            residual_filters,
            ctx: ctx.into_ctx(),
            span: None,
        }
    }

    /// Attach the profiling span of the scan's plan node (called before
    /// the fragment is shared across workers).
    pub fn set_span(&mut self, span: Arc<OpSpan>) {
        self.span = Some(span);
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_partitions(&self) -> usize {
        self.table.partitions.len()
    }

    pub fn ctx(&self) -> &Arc<ExecContext> {
        &self.ctx
    }

    fn partition_pruned(&self, part: usize) -> bool {
        if self.prune_predicates.is_empty() {
            return false;
        }
        let p = &self.table.partitions[part];
        let (min, max) = match (&p.part_min, &p.part_max) {
            (Some(a), Some(b)) => (a, b),
            _ => return false,
        };
        self.prune_predicates
            .iter()
            .any(|(op, lit)| !Table::partition_may_match(min, max, *op, lit))
    }

    /// Scan one partition to completion: prune (returning `None`), apply
    /// the fault policy with retry, meter bytes/rows, run the vectorized
    /// predicate pass on the columnar arrays, then materialize only the
    /// surviving rows.
    pub fn scan_partition(&self, part_idx: usize) -> Result<Option<Vec<Row>>> {
        Ok(self
            .scan_partition_columnar(part_idx)?
            .map(|m| m.gather_rows()))
    }

    /// Scan one partition without materializing any row: prune (returning
    /// `None`), apply the fault policy with retry, meter bytes/rows, then
    /// narrow a selection vector over the partition's columnar arrays —
    /// first with the `col op literal` fast path, then with the general
    /// columnar kernels for every residual pushed filter. The arrays are
    /// shared into the morsel by `Arc`, never copied.
    pub fn scan_partition_columnar(&self, part_idx: usize) -> Result<Option<ColumnarMorsel>> {
        self.ctx.check()?;
        if self.partition_pruned(part_idx) {
            self.ctx.metrics().add_partitions(0, 1);
            return Ok(None);
        }
        // First (and only) touch of this partition: apply the fault
        // policy (with retry/backoff for transient failures), then meter
        // the bytes the scan actually reads.
        let start = Instant::now();
        self.ctx
            .faulted_read(&self.table.name, part_idx, || Ok(()))?;
        let part = &self.table.partitions[part_idx];
        let bytes: u64 = self
            .column_indices
            .iter()
            .map(|&c| part.column_bytes[c])
            .sum();
        let metrics = self.ctx.metrics();
        metrics.add_bytes_scanned(bytes);
        metrics.add_rows_scanned(part.num_rows as u64);
        metrics.add_partitions(1, 0);

        // Vectorized pass: narrow the selection one column at a time.
        let mut selection: Vec<usize> = (0..part.num_rows).collect();
        for vp in &self.vector_predicates {
            let column: &[Value] = &part.columns[self.column_indices[vp.pos]];
            let mut kept = Vec::with_capacity(selection.len());
            for &r in &selection {
                let v = &column[r];
                if v.is_null() {
                    continue; // NULL comparison is NULL: row rejected
                }
                match v.sql_cmp(&vp.literal) {
                    Some(ord) => {
                        if cmp_matches(vp.op, ord) {
                            kept.push(r);
                        }
                    }
                    None => {
                        return Err(FusionError::Type(format!(
                            "cannot compare {v} with {}",
                            vp.literal
                        )))
                    }
                }
            }
            selection = kept;
        }
        if !self.vector_predicates.is_empty() {
            metrics.add_rows_filtered_vectorized((part.num_rows - selection.len()) as u64);
        }

        // Residual filters run through the general columnar kernels on
        // the surviving selection — same three-valued semantics and
        // evaluation sites as the scalar path, one expression node per
        // batch instead of per row.
        if !self.residual_filters.is_empty() {
            let mut batch = ColumnBatch::new();
            for (pos, field) in self.schema.fields().iter().enumerate() {
                batch.push(field.id, &part.columns[self.column_indices[pos]]);
            }
            for f in &self.residual_filters {
                metrics.add_rows_evaluated_vectorized(selection.len() as u64);
                selection = batch.filter(f, &selection)?;
            }
        }
        if let Some(span) = &self.span {
            span.add_cpu_nanos(start.elapsed().as_nanos() as u64);
            span.record_partition(part_idx, part.num_rows as u64, selection.len() as u64);
        }
        Ok(Some(ColumnarMorsel {
            columns: self
                .column_indices
                .iter()
                .map(|&c| part.columns[c].clone())
                .collect(),
            selection,
            partition: part_idx,
        }))
    }
}

fn cmp_matches(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("vector predicates are comparisons"),
    }
}

/// Split pushed filters into vectorizable `col <op> literal` conjuncts
/// (either operand order, non-null literal) and residual expressions.
/// A filter whose conjuncts are all vectorized contributes nothing to the
/// residual; mixed filters keep their non-vectorizable conjuncts there.
fn split_vector_predicates(
    filters: &[Expr],
    schema: &Schema,
) -> (Vec<VectorPredicate>, Vec<Expr>) {
    let mut vector = Vec::new();
    let mut residual = Vec::new();
    for f in filters {
        for c in fusion_expr::split_conjuncts(f) {
            let mut vectorized = false;
            if let Expr::Binary { op, left, right } = &c {
                if op.is_comparison() {
                    match (left.as_ref(), right.as_ref()) {
                        (Expr::Column(id), Expr::Literal(v)) if !v.is_null() => {
                            if let Some(pos) = schema.index_of(*id) {
                                vector.push(VectorPredicate {
                                    pos,
                                    op: *op,
                                    literal: v.clone(),
                                });
                                vectorized = true;
                            }
                        }
                        (Expr::Literal(v), Expr::Column(id)) if !v.is_null() => {
                            if let (Some(pos), Some(flipped)) =
                                (schema.index_of(*id), op.commuted())
                            {
                                vector.push(VectorPredicate {
                                    pos,
                                    op: flipped,
                                    literal: v.clone(),
                                });
                                vectorized = true;
                            }
                        }
                        _ => {}
                    }
                }
            }
            if !vectorized {
                residual.push(c);
            }
        }
    }
    (vector, residual)
}

/// Sequential scan operator: drives a [`ScanFragment`] partition by
/// partition on the caller's thread.
pub struct ScanExec {
    fragment: Arc<ScanFragment>,
    next_partition: usize,
    /// Materialized rows of the current partition not yet emitted.
    pending: Vec<Row>,
    emitted: usize,
}

impl ScanExec {
    pub fn new(
        table: Arc<Table>,
        column_indices: Vec<usize>,
        schema: Schema,
        filters: Vec<Expr>,
        ctx: impl IntoContext,
    ) -> Self {
        ScanExec::from_fragment(Arc::new(ScanFragment::new(
            table,
            column_indices,
            schema,
            filters,
            ctx,
        )))
    }

    pub fn from_fragment(fragment: Arc<ScanFragment>) -> Self {
        ScanExec {
            fragment,
            next_partition: 0,
            pending: Vec::new(),
            emitted: 0,
        }
    }
}

impl Operator for ScanExec {
    fn schema(&self) -> &Schema {
        self.fragment.schema()
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        self.fragment.ctx.check()?;
        loop {
            if self.emitted < self.pending.len() {
                let end = (self.emitted + CHUNK_SIZE).min(self.pending.len());
                let chunk: Chunk = self.pending[self.emitted..end].to_vec();
                self.emitted = end;
                if self.emitted >= self.pending.len() {
                    self.pending.clear();
                    self.emitted = 0;
                }
                return Ok(Some(chunk));
            }
            if self.next_partition >= self.fragment.num_partitions() {
                return Ok(None);
            }
            let part_idx = self.next_partition;
            self.next_partition += 1;
            if let Some(rows) = self.fragment.scan_partition(part_idx)? {
                self.pending = rows;
                self.emitted = 0;
            }
        }
    }
}

/// Conjuncts of the pushed filters of form `part_col <op> literal`
/// (either operand order), usable for partition pruning.
fn extract_prune_predicates(
    filters: &[Expr],
    schema: &Schema,
    column_indices: &[usize],
    partition_col: usize,
) -> Vec<(BinaryOp, Value)> {
    // Which instance column id corresponds to the partition ordinal?
    let part_field = schema
        .fields()
        .iter()
        .zip(column_indices)
        .find(|(_, &ord)| ord == partition_col)
        .map(|(f, _)| f.id);
    let part_id = match part_field {
        Some(id) => id,
        None => return vec![],
    };
    let mut out = Vec::new();
    for f in filters {
        for c in fusion_expr::split_conjuncts(f) {
            if let Expr::Binary { op, left, right } = &c {
                if !op.is_comparison() {
                    continue;
                }
                match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(id), Expr::Literal(v)) if *id == part_id && !v.is_null() => {
                        out.push((*op, v.clone()));
                    }
                    (Expr::Literal(v), Expr::Column(id)) if *id == part_id && !v.is_null() => {
                        if let Some(flipped) = op.commuted() {
                            out.push((flipped, v.clone()));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::fault::{FaultPolicy, RetryPolicy};
    use crate::metrics::ExecMetrics;
    use crate::ops::drain;
    use crate::table::{TableBuilder, TableColumn};
    use fusion_common::{ColumnId, DataType, Field, FusionError};
    use fusion_expr::{col, lit};

    fn table() -> Table {
        let mut b = TableBuilder::new(
            "t",
            vec![
                TableColumn {
                    name: "sk".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "v".into(),
                    data_type: DataType::Utf8,
                    nullable: true,
                },
            ],
        )
        .partition_by("sk", 10)
        .unwrap();
        for i in 0..100i64 {
            b.add_row(vec![Value::Int64(i), Value::Utf8(format!("r{i}"))])
                .unwrap();
        }
        b.build()
    }

    fn schema_for(ids: &[u32]) -> Schema {
        Schema::new(vec![
            Field::new(ColumnId(ids[0]), "sk", DataType::Int64, false),
            Field::new(ColumnId(ids[1]), "v", DataType::Utf8, true),
        ])
    }

    #[test]
    fn full_scan_reads_everything() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![], m.clone());
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(m.rows_scanned(), 100);
        assert_eq!(m.partitions_read(), 10);
        assert_eq!(m.partitions_pruned(), 0);
    }

    #[test]
    fn partition_pruning_skips_bytes() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // sk >= 90 keeps only the last partition.
        let filter = col(ColumnId(1)).gt_eq(lit(90i64));
        let mut scan = ScanExec::new(
            t.clone(),
            vec![0, 1],
            schema_for(&[1, 2]),
            vec![filter],
            m.clone(),
        );
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(m.partitions_read(), 1);
        assert_eq!(m.partitions_pruned(), 9);
        // Bytes metered = only that partition's two columns.
        let expected: u64 = t.partitions.last().unwrap().column_bytes.iter().sum();
        assert_eq!(m.bytes_scanned(), expected);
    }

    #[test]
    fn column_pruning_meters_fewer_bytes() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        let schema = Schema::new(vec![Field::new(ColumnId(1), "sk", DataType::Int64, false)]);
        let mut scan = ScanExec::new(t.clone(), vec![0], schema, vec![], m.clone());
        drain(&mut scan).unwrap();
        assert_eq!(m.bytes_scanned(), 100 * 8);
    }

    #[test]
    fn row_level_filters_apply_after_pruning() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // sk >= 90 AND sk < 95: one partition read, 5 rows out.
        let f1 = col(ColumnId(1)).gt_eq(lit(90i64));
        let f2 = col(ColumnId(1)).lt(lit(95i64));
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![f1, f2], m);
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn transient_faults_are_retried_to_completion() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // 30% per-attempt failure rate: with 3 retries the chance any of
        // the 10 partitions fails 4 times in a row is < 1% per partition,
        // and the schedule is deterministic anyway — seed 4 recovers.
        let ctx = ExecContext::builder(m.clone())
            .fault_policy(FaultPolicy::transient(4, 0.3))
            .retry_policy(RetryPolicy::default())
            .build();
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![], ctx);
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 100, "all rows survive under retries");
        let snap = m.snapshot();
        assert!(snap.faults_injected > 0, "seed 3 must inject at least once");
        assert_eq!(snap.retries, snap.faults_injected);
        // Metering must not double-count retried partitions.
        assert_eq!(snap.rows_scanned, 100);
        assert_eq!(snap.partitions_read, 10);
    }

    #[test]
    fn poisoned_partition_fails_the_scan_fatally() {
        let t = Arc::new(table());
        let ctx = ExecContext::builder(ExecMetrics::new())
            .fault_policy(FaultPolicy::default().with_poison("t", 4))
            .build();
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![], ctx);
        match drain(&mut scan) {
            Err(FusionError::DataCorruption(msg)) => assert!(msg.contains("partition 4")),
            other => panic!("expected DataCorruption, got {other:?}"),
        }
    }

    #[test]
    fn pruned_partitions_are_never_faulted() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // Poison partition 0, but prune it away: the scan must succeed.
        let ctx = ExecContext::builder(m.clone())
            .fault_policy(FaultPolicy::default().with_poison("t", 0))
            .build();
        let filter = col(ColumnId(1)).gt_eq(lit(90i64));
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![filter], ctx);
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(m.faults_injected(), 0);
    }
}
