//! Multi-tenant query service: admission control + batch-window
//! coalescing over the fusion engine.
//!
//! The engine's reuse-via-fusion wins only materialize when many queries
//! execute together, but [`fusion_engine::Session::run_batch`] makes the
//! *caller* assemble the batch. This crate closes that gap with a
//! long-running front end:
//!
//! ```text
//! ClientHandle::submit ──▶ admission (caps, budget) ──▶ AdmissionQueue
//!                                                           │
//!                        dispatcher thread: close window ◀──┘
//!                        (max_window_queries / max_window_wait,
//!                         weighted-fair tenant packing)
//!                                    │
//!                          Session::run_batch(window)
//!                         (reuse groups, shared cache,
//!                          circuit breaker — all fire here)
//!                                    │
//!                 per-slot results routed back to each waiter
//!                 (typed errors stay in their slot; per-tenant
//!                  metrics deltas absorbed into tenant snapshots)
//! ```
//!
//! Queries from *different tenants* that land in the same window share
//! work exactly like a hand-assembled batch would: group formation is
//! plan-driven and tenant-blind, while accounting and governance are
//! tenant-scoped. See DESIGN.md §17 for the architecture.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use fusion_common::{FusionError, Result};
use fusion_engine::admission::{Admitted, AdmissionQueue};
use fusion_engine::{QueryResult, Session};
use fusion_exec::metrics::{MetricsSnapshot, StateReservation};
use fusion_exec::ExecMetrics;

mod tenant;
pub mod wire;

pub use fusion_engine::admission::{AdmissionConfig, TenantId};
pub use tenant::TenantConfig;
use tenant::TenantState;

/// Service-wide configuration: window formation plus per-tenant
/// governance defaults and overrides.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Window-formation knobs (`max_window_queries`, `max_window_wait`).
    /// Per-tenant queue caps are governed by [`TenantConfig::max_queued`];
    /// leave [`AdmissionConfig::max_queued_per_tenant`] at 0 here.
    pub admission: AdmissionConfig,
    /// Governance applied to tenants without an explicit override.
    pub default_tenant: TenantConfig,
    /// Per-tenant governance overrides, keyed by tenant name.
    pub tenant_overrides: Vec<(String, TenantConfig)>,
    /// Bytes charged against a tenant's memory budget for each admitted
    /// query, held from admission until its response is routed.
    pub per_query_memory_cost: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            admission: AdmissionConfig::default(),
            default_tenant: TenantConfig::default(),
            tenant_overrides: Vec::new(),
            per_query_memory_cost: 1 << 20,
        }
    }
}

impl ServiceConfig {
    fn tenant_config(&self, tenant: &TenantId) -> TenantConfig {
        self.tenant_overrides
            .iter()
            .find(|(name, _)| name == tenant.as_str())
            .map(|(_, cfg)| cfg.clone())
            .unwrap_or_else(|| self.default_tenant.clone())
    }

    /// Register a governance override for one tenant.
    pub fn with_tenant(mut self, name: impl Into<String>, cfg: TenantConfig) -> Self {
        self.tenant_overrides.push((name.into(), cfg));
        self
    }
}

/// One parked query: its SQL, the waiter's response channel, and the
/// tenant-budget reservation held until the response is routed.
struct Job {
    sql: String,
    responder: mpsc::SyncSender<Result<QueryResult>>,
    /// Dropping the job releases the tenant's admission-level memory
    /// charge ([`ServiceConfig::per_query_memory_cost`]).
    _reservation: Option<StateReservation>,
}

/// A submitted query's claim on its future result.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResult>>,
}

impl Ticket {
    /// Block until the query's window executes and its slot is routed
    /// back. Never hangs: graceful shutdown drains every parked query,
    /// and a torn-down dispatcher surfaces as a typed internal error
    /// rather than a stuck waiter.
    pub fn wait(self) -> Result<QueryResult> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(FusionError::Internal("query service dropped the response channel".into())))
    }
}

struct Inner {
    session: Arc<Session>,
    queue: AdmissionQueue<Job>,
    config: ServiceConfig,
    tenants: Mutex<HashMap<TenantId, TenantState>>,
    /// Service-wide admission/window counters (tenant-scoped copies live
    /// in each [`TenantState`]'s governance sink).
    metrics: Arc<ExecMetrics>,
    /// Service-wide execution counters: each window's batch-wide metrics
    /// (shared executions, cache hits, scans — a fresh per-batch sink in
    /// the engine) absorbed across windows.
    execution: Mutex<MetricsSnapshot>,
}

impl Inner {
    fn lock_tenants(&self) -> std::sync::MutexGuard<'_, HashMap<TenantId, TenantState>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admission: cap + budget checks, then park the job. Lock order is
    /// strictly tenants → queue; the dispatcher never takes them in the
    /// other order (its packing quotas are snapshotted up front).
    fn submit(&self, tenant: TenantId, sql: String) -> Result<Ticket> {
        let (tenant_metrics, reservation) = {
            let mut tenants = self.lock_tenants();
            let state = tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantState::new(self.config.tenant_config(&tenant)));
            let cap = state.config.max_queued;
            if cap > 0 && state.queued >= cap {
                state.metrics.add_query_rejected();
                self.metrics.add_query_rejected();
                return Err(FusionError::AdmissionRejected {
                    tenant: tenant.to_string(),
                    reason: format!("queue depth cap reached ({cap} queries parked)"),
                });
            }
            let reservation = match state.config.memory_budget {
                Some(budget) => {
                    let cost = self.config.per_query_memory_cost as i64;
                    match StateReservation::with_enforced_budget(state.metrics.clone(), cost, budget) {
                        Ok(r) => Some(r),
                        Err(FusionError::ResourceExhausted { budget, requested }) => {
                            state.metrics.add_query_rejected();
                            self.metrics.add_query_rejected();
                            return Err(FusionError::AdmissionRejected {
                                tenant: tenant.to_string(),
                                reason: format!(
                                    "memory budget exhausted ({requested} bytes outstanding against a {budget}-byte budget)"
                                ),
                            });
                        }
                        Err(other) => return Err(other),
                    }
                }
                None => None,
            };
            state.queued += 1;
            (state.metrics.clone(), reservation)
        };
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            sql,
            responder: tx,
            _reservation: reservation,
        };
        if let Err(err) = self.queue.admit(tenant.clone(), job) {
            let mut tenants = self.lock_tenants();
            if let Some(state) = tenants.get_mut(&tenant) {
                state.queued = state.queued.saturating_sub(1);
                state.metrics.add_query_rejected();
            }
            self.metrics.add_query_rejected();
            return Err(err);
        }
        tenant_metrics.add_query_admitted();
        self.metrics.add_query_admitted();
        Ok(Ticket { rx })
    }

    /// Snapshot the per-tenant window-packing quotas: each tenant's share
    /// of a window is proportional to its weight (never below one slot)
    /// and capped by its `max_inflight`. Taken *before* blocking on the
    /// queue so the packing closure never locks the tenant map (see the
    /// lock-order note on [`Inner::submit`]); tenants that first appear
    /// while the dispatcher is parked get the default quota this window.
    fn window_quotas(&self) -> (HashMap<TenantId, usize>, usize) {
        let tenants = self.lock_tenants();
        let max_q = self.config.admission.max_window_queries;
        let total_weight: usize = tenants
            .values()
            .filter(|s| s.queued > 0)
            .map(|s| s.config.weight.max(1))
            .sum::<usize>()
            .max(1);
        let base = (max_q / total_weight).max(1);
        let quota_for = |cfg: &TenantConfig| {
            let q = (cfg.weight.max(1)).saturating_mul(base).max(1);
            if cfg.max_inflight > 0 {
                q.min(cfg.max_inflight)
            } else {
                q
            }
        };
        let quotas = tenants
            .iter()
            .map(|(t, s)| (t.clone(), quota_for(&s.config)))
            .collect();
        (quotas, quota_for(&self.config.default_tenant))
    }

    /// Execute one closed window through the engine's batch path and
    /// route each slot back to its waiter. Typed per-query errors stay in
    /// their slot; a batch-wide failure (fail-fast, strict mode) is
    /// cloned to every waiter in the window.
    fn run_window(&self, window: Vec<Admitted<Job>>) {
        let dispatched_at = Instant::now();
        {
            let mut tenants = self.lock_tenants();
            for entry in &window {
                let wait = dispatched_at
                    .saturating_duration_since(entry.enqueued_at)
                    .as_nanos() as u64;
                self.metrics.add_queue_wait_nanos(wait);
                if let Some(state) = tenants.get_mut(&entry.tenant) {
                    state.metrics.add_queue_wait_nanos(wait);
                    state.queued = state.queued.saturating_sub(1);
                    state.inflight += 1;
                }
            }
        }
        self.metrics.add_window_dispatched(window.len() as u64);
        let sqls: Vec<&str> = window.iter().map(|e| e.payload.sql.as_str()).collect();
        let batch = self.session.run_batch(&sqls);
        let mut tenants = self.lock_tenants();
        let mut window_deltas: HashMap<TenantId, MetricsSnapshot> = HashMap::new();
        match batch {
            Ok(batch) => {
                self.execution
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .absorb(&batch.metrics);
                for (entry, slot) in window.into_iter().zip(batch.results) {
                    if let Some(state) = tenants.get_mut(&entry.tenant) {
                        state.inflight = state.inflight.saturating_sub(1);
                    }
                    match slot {
                        Ok(result) => {
                            if result.reused() {
                                self.metrics.add_query_coalesced_shared();
                                if let Some(state) = tenants.get_mut(&entry.tenant) {
                                    state.metrics.add_query_coalesced_shared();
                                }
                            }
                            // Slot metrics are per-query deltas (batch
                            // fault-domain semantics), so absorbing them
                            // keeps tenant snapshots free of other
                            // tenants' counters.
                            window_deltas
                                .entry(entry.tenant.clone())
                                .or_default()
                                .absorb(&result.metrics);
                            if let Some(state) = tenants.get_mut(&entry.tenant) {
                                state.cumulative.absorb(&result.metrics);
                            }
                            let _ = entry.payload.responder.send(Ok(result));
                        }
                        Err(failure) => {
                            let _ = entry.payload.responder.send(Err(failure.error));
                        }
                    }
                }
            }
            Err(err) => {
                for entry in window {
                    if let Some(state) = tenants.get_mut(&entry.tenant) {
                        state.inflight = state.inflight.saturating_sub(1);
                    }
                    let _ = entry.payload.responder.send(Err(err.clone()));
                }
            }
        }
        for (tenant, delta) in window_deltas {
            if let Some(state) = tenants.get_mut(&tenant) {
                state.last_window = Some(delta);
            }
        }
    }

    fn dispatch_loop(&self) {
        loop {
            let (quotas, default_quota) = self.window_quotas();
            let window = self
                .queue
                .next_window(|t| quotas.get(t).copied().unwrap_or(default_quota));
            match window {
                Some(window) => self.run_window(window),
                // Queue closed and fully drained: every waiter got its
                // response; the dispatcher can retire.
                None => break,
            }
        }
    }
}

/// The long-running, multi-tenant query front end. Owns the dispatcher
/// thread; hand out per-tenant [`ClientHandle`]s with
/// [`QueryService::client`].
pub struct QueryService {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl QueryService {
    /// Start the service over a fully-configured session (register tables
    /// *before* wrapping it in `Arc` — the catalog is immutable once
    /// shared). Spawns the dispatcher thread immediately.
    pub fn start(session: Arc<Session>, config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            session,
            queue: AdmissionQueue::new(config.admission.clone()),
            config,
            tenants: Mutex::new(HashMap::new()),
            metrics: ExecMetrics::new(),
            execution: Mutex::new(MetricsSnapshot::default()),
        });
        let dispatcher_inner = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("fusion-service-dispatcher".into())
            .spawn(move || dispatcher_inner.dispatch_loop())
            .ok();
        QueryService {
            inner,
            dispatcher: Mutex::new(dispatcher),
        }
    }

    /// A client handle bound to one tenant. Handles are cheap; spawn one
    /// per connection/thread.
    pub fn client(&self, tenant: impl Into<TenantId>) -> ClientHandle {
        ClientHandle {
            inner: Arc::clone(&self.inner),
            tenant: tenant.into(),
        }
    }

    /// The shared engine session (for catalog inspection in tests/bench).
    pub fn session(&self) -> &Arc<Session> {
        &self.inner.session
    }

    /// Total queries currently parked in the admission queue.
    pub fn queued_total(&self) -> usize {
        self.inner.queue.len()
    }

    /// Service-wide admission/window counters.
    pub fn service_metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Service-wide execution counters: every window's batch-wide
    /// metrics (shared-subplan executions, cache hits, scan volume)
    /// absorbed across windows. Shared work is accounted here — it
    /// belongs to the window, not to any single tenant's slot.
    pub fn execution_metrics(&self) -> MetricsSnapshot {
        *self.inner.execution.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One tenant's cumulative view: execution deltas absorbed from its
    /// own batch slots plus its governance counters — never another
    /// tenant's numbers. `None` until the tenant has submitted.
    pub fn tenant_metrics(&self, tenant: &TenantId) -> Option<MetricsSnapshot> {
        let tenants = self.inner.lock_tenants();
        tenants.get(tenant).map(|s| {
            let mut merged = s.cumulative;
            merged.absorb(&s.metrics.snapshot());
            merged
        })
    }

    /// The per-tenant execution delta of the most recent window that
    /// carried this tenant's queries (`delta_since`-based: each slot's
    /// metrics are already per-query deltas).
    pub fn tenant_window_metrics(&self, tenant: &TenantId) -> Option<MetricsSnapshot> {
        let tenants = self.inner.lock_tenants();
        tenants.get(tenant).and_then(|s| s.last_window)
    }

    /// Graceful shutdown: refuse new admissions, drain every parked query
    /// through final windows, route all responses, then join the
    /// dispatcher. No waiter is lost or left hanging.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let handle = {
            let mut guard = self.dispatcher.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// The `-- service --` report: EXPLAIN ANALYZE-style rendering of the
    /// admission, window, and fairness counters, with one line per
    /// tenant (sorted for stable output).
    pub fn service_report(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.service_metrics();
        let mut out = String::new();
        out.push_str("-- service --\n");
        let share_pct = if snap.queries_admitted > 0 {
            100.0 * snap.queries_coalesced_shared as f64 / snap.queries_admitted as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "queries: admitted={} rejected={} coalesced_shared={} ({share_pct:.1}% share rate)",
            snap.queries_admitted, snap.queries_rejected, snap.queries_coalesced_shared
        );
        let mean_occ = if snap.windows_dispatched > 0 {
            snap.window_occupancy as f64 / snap.windows_dispatched as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "windows: dispatched={} mean_occupancy={mean_occ:.1}",
            snap.windows_dispatched
        );
        let _ = writeln!(
            out,
            "queue wait: total={:.3}ms max={:.3}ms",
            snap.queue_wait_nanos as f64 / 1e6,
            snap.queue_wait_nanos_max as f64 / 1e6
        );
        let exec = self.execution_metrics();
        let _ = writeln!(
            out,
            "engine: shared_subplans_executed={} cache_hits={} subsumption_hits={} scanned={}B",
            exec.shared_subplans_executed,
            exec.reuse_cache_hits,
            exec.subsumption_hits,
            exec.bytes_scanned
        );
        let tenants = self.inner.lock_tenants();
        let mut names: Vec<&TenantId> = tenants.keys().collect();
        names.sort();
        for name in names {
            if let Some(state) = tenants.get(name) {
                let gov = state.metrics.snapshot();
                let _ = writeln!(
                    out,
                    "tenant {name}: admitted={} rejected={} coalesced_shared={} queued={} inflight={} \
                     wait_max={:.3}ms rows={} scanned={}B",
                    gov.queries_admitted,
                    gov.queries_rejected,
                    gov.queries_coalesced_shared,
                    state.queued,
                    state.inflight,
                    gov.queue_wait_nanos_max as f64 / 1e6,
                    state.cumulative.rows_produced,
                    state.cumulative.bytes_scanned,
                );
            }
        }
        out
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A tenant-tagged connection to the service.
#[derive(Clone)]
pub struct ClientHandle {
    inner: Arc<Inner>,
    tenant: TenantId,
}

impl ClientHandle {
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Submit a query through admission control. Returns a [`Ticket`]
    /// immediately, or a typed `FUSION_ADMISSION_REJECTED` error if the
    /// tenant's queue-depth cap or memory budget refuses it.
    pub fn submit(&self, sql: impl Into<String>) -> Result<Ticket> {
        self.inner.submit(self.tenant.clone(), sql.into())
    }

    /// Submit and block for the result: the window the query lands in
    /// coalesces it with whatever else is in flight.
    pub fn query(&self, sql: impl Into<String>) -> Result<QueryResult> {
        self.submit(sql)?.wait()
    }
}
