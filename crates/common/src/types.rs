//! The scalar type system.

use std::fmt;

/// Data types supported by the engine.
///
/// The set is deliberately small but sufficient for TPC-DS-style analytics:
/// decimals are carried as `Float64` (the reproduction cares about plan
/// shape and data volume, not decimal arithmetic), dates as days since
/// epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Three-valued boolean.
    Boolean,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float (also used for decimals).
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Date as days since the epoch.
    Date,
}

impl DataType {
    /// Whether the type is numeric (participates in arithmetic and in
    /// SUM/AVG aggregates).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// The common supertype two numeric types coerce to, if any.
    pub fn numeric_supertype(a: DataType, b: DataType) -> Option<DataType> {
        match (a, b) {
            (DataType::Int64, DataType::Int64) => Some(DataType::Int64),
            (DataType::Float64, DataType::Float64)
            | (DataType::Int64, DataType::Float64)
            | (DataType::Float64, DataType::Int64) => Some(DataType::Float64),
            _ => None,
        }
    }

    /// Whether values of `self` can be compared with values of `other`.
    pub fn comparable_with(&self, other: &DataType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }

    /// Fixed per-value encoded width in bytes, used by the bytes-scanned
    /// metric. Strings report their actual length at runtime; this is the
    /// width for fixed-size types.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            DataType::Boolean => Some(1),
            DataType::Int64 => Some(8),
            DataType::Float64 => Some(8),
            DataType::Date => Some(4),
            DataType::Utf8 => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Boolean => "BOOLEAN",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "VARCHAR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_supertype_promotes_to_float() {
        assert_eq!(
            DataType::numeric_supertype(DataType::Int64, DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::numeric_supertype(DataType::Int64, DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::numeric_supertype(DataType::Utf8, DataType::Int64),
            None
        );
    }

    #[test]
    fn comparability_allows_cross_numeric() {
        assert!(DataType::Int64.comparable_with(&DataType::Float64));
        assert!(DataType::Utf8.comparable_with(&DataType::Utf8));
        assert!(!DataType::Utf8.comparable_with(&DataType::Int64));
        assert!(!DataType::Date.comparable_with(&DataType::Int64));
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(DataType::Int64.fixed_width(), Some(8));
        assert_eq!(DataType::Utf8.fixed_width(), None);
        assert_eq!(DataType::Date.fixed_width(), Some(4));
    }
}
