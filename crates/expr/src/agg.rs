//! Masked aggregate and window expressions.
//!
//! Following Section III.E of the paper, every aggregate in a GroupBy is a
//! pair `(a, m)`: a traditional aggregate function `a` and a boolean *mask*
//! `m`. Only input rows satisfying the mask feed the aggregate; different
//! aggregates in the same GroupBy can aggregate different subsets of the
//! input. This is the representational device that lets `Fuse` merge two
//! GroupBys into one: each side's aggregates get their masks tightened with
//! the corresponding compensating filter.

use std::fmt;

use fusion_common::{ColumnId, DataType, FusionError, Result, Schema};

use crate::expr::{ColumnMap, Expr};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows (mask-filtered).
    CountStar,
    /// `COUNT(expr)` — counts non-null values.
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Whether this function takes an argument.
    pub fn takes_arg(&self) -> bool {
        !matches!(self, AggFunc::CountStar)
    }

    /// Result type given the argument type.
    pub fn output_type(&self, arg: Option<DataType>) -> Result<DataType> {
        match self {
            AggFunc::CountStar | AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Sum => match arg {
                Some(DataType::Int64) => Ok(DataType::Int64),
                Some(DataType::Float64) => Ok(DataType::Float64),
                other => Err(FusionError::Type(format!("SUM over {other:?}"))),
            },
            AggFunc::Avg => match arg {
                Some(t) if t.is_numeric() => Ok(DataType::Float64),
                other => Err(FusionError::Type(format!("AVG over {other:?}"))),
            },
            AggFunc::Min | AggFunc::Max => {
                arg.ok_or_else(|| FusionError::Type("MIN/MAX need an argument".into()))
            }
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// A masked (optionally distinct) aggregate: the `(a, m)` pair of §III.E.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggregateExpr {
    pub func: AggFunc,
    /// Argument expression; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    /// `AGG(DISTINCT x)`. The planner can lower this onto `MarkDistinct`
    /// (see `fusion_plan::LogicalPlan::MarkDistinct`).
    pub distinct: bool,
    /// The mask: rows where this is not TRUE are ignored by the aggregate.
    pub mask: Expr,
}

impl AggregateExpr {
    pub fn new(func: AggFunc, arg: Option<Expr>) -> Self {
        AggregateExpr {
            func,
            arg,
            distinct: false,
            mask: Expr::boolean(true),
        }
    }

    pub fn with_mask(mut self, mask: Expr) -> Self {
        self.mask = mask;
        self
    }

    pub fn with_distinct(mut self, distinct: bool) -> Self {
        self.distinct = distinct;
        self
    }

    pub fn count_star() -> Self {
        AggregateExpr::new(AggFunc::CountStar, None)
    }

    pub fn sum(arg: Expr) -> Self {
        AggregateExpr::new(AggFunc::Sum, Some(arg))
    }

    pub fn avg(arg: Expr) -> Self {
        AggregateExpr::new(AggFunc::Avg, Some(arg))
    }

    pub fn min(arg: Expr) -> Self {
        AggregateExpr::new(AggFunc::Min, Some(arg))
    }

    pub fn max(arg: Expr) -> Self {
        AggregateExpr::new(AggFunc::Max, Some(arg))
    }

    pub fn count(arg: Expr) -> Self {
        AggregateExpr::new(AggFunc::Count, Some(arg))
    }

    /// Whether the mask is the trivial `TRUE`.
    pub fn unmasked(&self) -> bool {
        self.mask.is_true_literal()
    }

    pub fn output_type(&self, schema: &Schema) -> Result<DataType> {
        let arg_type = match &self.arg {
            Some(e) => Some(e.data_type(schema)?),
            None => None,
        };
        self.func.output_type(arg_type)
    }

    /// Result is nullable unless it is a COUNT (which yields 0 for empty
    /// groups).
    pub fn output_nullable(&self) -> bool {
        !matches!(self.func, AggFunc::Count | AggFunc::CountStar)
    }

    /// Column ids referenced by argument and mask.
    pub fn columns(&self) -> std::collections::HashSet<ColumnId> {
        let mut out = self.mask.columns();
        if let Some(a) = &self.arg {
            out.extend(a.columns());
        }
        out
    }

    /// Rewrite through a column→column map.
    pub fn map_columns(&self, m: &ColumnMap) -> AggregateExpr {
        AggregateExpr {
            func: self.func,
            arg: self.arg.as_ref().map(|e| e.map_columns(m)),
            distinct: self.distinct,
            mask: self.mask.map_columns(m),
        }
    }
}

impl fmt::Display for AggregateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.func, &self.arg) {
            (AggFunc::CountStar, _) => f.write_str("COUNT(*)")?,
            (func, Some(arg)) => write!(
                f,
                "{func}({}{arg})",
                if self.distinct { "DISTINCT " } else { "" }
            )?,
            (func, None) => write!(f, "{func}()")?,
        }
        if !self.unmasked() {
            write!(f, " FILTER (WHERE {})", self.mask)?;
        }
        Ok(())
    }
}

/// A partition-wide window aggregate: `AGG(x) OVER (PARTITION BY k...)`.
///
/// No ordering or frame is supported — the `GroupByJoinToWindow` rewrite
/// only needs whole-partition aggregates broadcast back to every row.
/// Like plain aggregates, window aggregates carry a *mask* (the paper's
/// footnote-4 extension): only rows satisfying it feed the partition's
/// accumulator, though every row still receives the partition value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowExpr {
    pub func: AggFunc,
    pub arg: Option<Expr>,
    pub partition_by: Vec<ColumnId>,
    pub mask: Expr,
}

impl WindowExpr {
    pub fn new(func: AggFunc, arg: Option<Expr>, partition_by: Vec<ColumnId>) -> Self {
        WindowExpr {
            func,
            arg,
            partition_by,
            mask: Expr::boolean(true),
        }
    }

    pub fn with_mask(mut self, mask: Expr) -> Self {
        self.mask = mask;
        self
    }

    /// Whether the mask is the trivial `TRUE`.
    pub fn unmasked(&self) -> bool {
        self.mask.is_true_literal()
    }

    pub fn output_type(&self, schema: &Schema) -> Result<DataType> {
        let arg_type = match &self.arg {
            Some(e) => Some(e.data_type(schema)?),
            None => None,
        };
        self.func.output_type(arg_type)
    }

    pub fn columns(&self) -> std::collections::HashSet<ColumnId> {
        let mut out: std::collections::HashSet<ColumnId> =
            self.partition_by.iter().copied().collect();
        if let Some(a) = &self.arg {
            out.extend(a.columns());
        }
        out.extend(self.mask.columns());
        out
    }

    pub fn map_columns(&self, m: &ColumnMap) -> WindowExpr {
        WindowExpr {
            func: self.func,
            arg: self.arg.as_ref().map(|e| e.map_columns(m)),
            partition_by: self
                .partition_by
                .iter()
                .map(|c| *m.get(c).unwrap_or(c))
                .collect(),
            mask: self.mask.map_columns(m),
        }
    }
}

impl fmt::Display for WindowExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}({a})", self.func)?,
            None => write!(f, "{}", self.func)?,
        }
        if !self.unmasked() {
            write!(f, " FILTER (WHERE {})", self.mask)?;
        }
        f.write_str(" OVER (PARTITION BY ")?;
        for (i, c) in self.partition_by.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use fusion_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new(ColumnId(1), "a", DataType::Int64, false),
            Field::new(ColumnId(2), "b", DataType::Float64, true),
        ])
    }

    #[test]
    fn output_types() {
        let s = schema();
        assert_eq!(
            AggregateExpr::sum(col(ColumnId(1))).output_type(&s).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggregateExpr::avg(col(ColumnId(1))).output_type(&s).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggregateExpr::count_star().output_type(&s).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggregateExpr::min(col(ColumnId(2))).output_type(&s).unwrap(),
            DataType::Float64
        );
    }

    #[test]
    fn mask_participates_in_columns_and_mapping() {
        let agg = AggregateExpr::sum(col(ColumnId(1))).with_mask(col(ColumnId(2)).gt(lit(0.0)));
        let cols = agg.columns();
        assert!(cols.contains(&ColumnId(1)) && cols.contains(&ColumnId(2)));

        let mut m = ColumnMap::new();
        m.insert(ColumnId(1), ColumnId(10));
        m.insert(ColumnId(2), ColumnId(20));
        let mapped = agg.map_columns(&m);
        assert_eq!(mapped.arg, Some(col(ColumnId(10))));
        assert_eq!(mapped.mask, col(ColumnId(20)).gt(lit(0.0)));
    }

    #[test]
    fn display_shows_filter_clause() {
        let agg = AggregateExpr::avg(col(ColumnId(1))).with_mask(col(ColumnId(2)).gt(lit(0.0)));
        assert_eq!(agg.to_string(), "AVG(#1) FILTER (WHERE (#2 > 0))");
        assert_eq!(AggregateExpr::count_star().to_string(), "COUNT(*)");
    }

    #[test]
    fn window_maps_partition_columns() {
        let w = WindowExpr::new(AggFunc::Avg, Some(col(ColumnId(1))), vec![ColumnId(2)]);
        let mut m = ColumnMap::new();
        m.insert(ColumnId(2), ColumnId(20));
        let mapped = w.map_columns(&m);
        assert_eq!(mapped.partition_by, vec![ColumnId(20)]);
        assert_eq!(
            w.to_string(),
            "AVG(#1) OVER (PARTITION BY #2)"
        );
    }

    #[test]
    fn count_is_not_nullable() {
        assert!(!AggregateExpr::count_star().output_nullable());
        assert!(AggregateExpr::sum(col(ColumnId(1))).output_nullable());
    }
}
