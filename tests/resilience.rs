// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Robustness integration tests: fault injection with retry, graceful
//! degradation to the baseline plan, deadlines, and enforced memory
//! budgets (the §V.C working-memory effect) through the full engine
//! pipeline.

use std::time::Duration;

use fusion_common::{DataType, FusionError, Value};
use fusion_engine::Session;
use fusion_exec::table::TableColumn;
use fusion_exec::{FaultPolicy, TableBuilder};
use proptest::prelude::*;

fn col(name: &str, data_type: DataType, nullable: bool) -> TableColumn {
    TableColumn {
        name: name.into(),
        data_type,
        nullable,
    }
}

/// One orders row: `(id, cust, region, amount)`.
type OrderRow = (i64, Option<i64>, Option<&'static str>, Option<f64>);

/// The same micro-dataset as `tests/engine_sql.rs`:
/// orders: (id, cust, region, amount); customers: (cid, name, tier).
fn session() -> Session {
    let mut s = Session::new();
    let mut b = TableBuilder::new(
        "orders",
        vec![
            col("id", DataType::Int64, false),
            col("cust", DataType::Int64, true),
            col("region", DataType::Utf8, true),
            col("amount", DataType::Float64, true),
        ],
    );
    let rows: Vec<OrderRow> = vec![
        (1, Some(10), Some("north"), Some(50.0)),
        (2, Some(10), Some("south"), Some(75.0)),
        (3, Some(20), Some("north"), Some(20.0)),
        (4, Some(20), None, Some(90.0)),
        (5, Some(30), Some("east"), None),
        (6, None, Some("north"), Some(10.0)),
    ];
    for (id, cust, region, amount) in rows {
        b.add_row(vec![
            Value::Int64(id),
            cust.map(Value::Int64).unwrap_or(Value::Null),
            region.map(|r| Value::Utf8(r.into())).unwrap_or(Value::Null),
            amount.map(Value::Float64).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    s.register_table(b.build());

    let mut b = TableBuilder::new(
        "customers",
        vec![
            col("cid", DataType::Int64, false),
            col("name", DataType::Utf8, true),
            col("tier", DataType::Int64, true),
        ],
    );
    for (cid, name, tier) in [(10i64, "ann", 1i64), (20, "bob", 2), (40, "cem", 1)] {
        b.add_row(vec![
            Value::Int64(cid),
            Value::Utf8(name.into()),
            Value::Int64(tier),
        ])
        .unwrap();
    }
    s.register_table(b.build());
    s
}

/// Every result-producing query from `tests/engine_sql.rs`.
const QUERIES: &[&str] = &[
    "SELECT id, id * 2 + 1 AS d FROM orders WHERE id <= 2 ORDER BY id",
    "SELECT id FROM orders WHERE amount > 0",
    "SELECT id FROM orders WHERE region IS NULL",
    "SELECT id FROM orders WHERE cust IS NOT NULL AND amount IS NOT NULL",
    "SELECT cust, COUNT(*) AS n, SUM(amount) AS total FROM orders \
     WHERE cust IS NOT NULL GROUP BY cust HAVING COUNT(*) > 1 ORDER BY cust",
    "SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE id > 100",
    "SELECT COUNT(DISTINCT region) AS r FROM orders",
    "SELECT COUNT(*) FILTER (WHERE region = 'north') AS north, COUNT(*) AS all_rows FROM orders",
    "SELECT id, name FROM orders JOIN customers ON cust = cid ORDER BY id",
    "SELECT id, name FROM orders LEFT JOIN customers ON cust = cid ORDER BY id",
    "SELECT id, CASE WHEN amount BETWEEN 0 AND 50 THEN 'small' \
                     WHEN amount > 50 THEN 'big' ELSE 'unknown' END AS bucket \
     FROM orders WHERE region IN ('north', 'east') ORDER BY id",
    "SELECT DISTINCT region FROM orders WHERE region IS NOT NULL",
    "SELECT id FROM orders WHERE region = 'north' \
     UNION ALL SELECT id FROM orders WHERE amount > 40",
    "SELECT t.r, t.n FROM (SELECT region AS r, COUNT(*) AS n \
                           FROM orders GROUP BY region) t WHERE t.n > 1 ORDER BY t.r",
    "SELECT id FROM orders WHERE cust IN (SELECT cid FROM customers WHERE tier = 1)",
    "SELECT id FROM orders WHERE amount > (SELECT AVG(amount) FROM orders)",
    "SELECT id FROM orders o1 \
     WHERE o1.amount > (SELECT AVG(o2.amount) FROM orders o2 WHERE o2.cust = o1.cust)",
    "SELECT id, amount, AVG(amount) OVER (PARTITION BY cust) AS a \
     FROM orders WHERE cust IS NOT NULL ORDER BY id",
    "SELECT id, amount FROM orders WHERE amount IS NOT NULL ORDER BY amount DESC LIMIT 2",
    "WITH north AS (SELECT id, amount FROM orders WHERE region = 'north') \
     SELECT a.id FROM north a, north b WHERE a.amount < b.amount ORDER BY a.id",
    "SELECT 'it''s' AS s FROM orders WHERE id = 1",
    "SELECT CAST(amount AS BIGINT) AS a FROM orders WHERE id = 2",
    "SELECT o.id, c.cid FROM orders o, customers c WHERE o.id = 1",
    "SELECT o.* FROM orders o WHERE o.id = 1",
    "SELECT id % 2 AS parity, COUNT(*) AS n FROM orders GROUP BY id % 2 ORDER BY parity",
    "SELECT id, COALESCE(region, 'none') AS r, ABS(id - 4) AS d FROM orders ORDER BY id",
];

/// Acceptance: with a seeded transient-fault schedule, every engine_sql
/// query still returns the fault-free rows (via retry), and the metrics
/// record the retries. Seed 9 at rate 0.25 makes every `orders` read fail
/// its first attempt and succeed on the retry, while `customers` reads
/// succeed immediately — fully deterministic.
#[test]
fn fault_injected_queries_return_fault_free_rows() {
    let mut total_retries = 0u64;
    let mut total_faults = 0u64;
    for sql in QUERIES {
        let expected = session()
            .sql(sql)
            .unwrap_or_else(|e| panic!("fault-free run failed: {e}\n{sql}"))
            .sorted_rows();
        for fused in [true, false] {
            let mut s = session();
            s.set_fusion_enabled(fused);
            s.set_fault_policy(FaultPolicy::transient(9, 0.25));
            let r = s
                .sql(sql)
                .unwrap_or_else(|e| panic!("fused={fused} under faults: {e}\n{sql}"));
            assert_eq!(r.sorted_rows(), expected, "fused={fused}: {sql}");
            total_retries += r.metrics.retries;
            total_faults += r.metrics.faults_injected;
        }
    }
    assert!(total_retries > 0, "seed 9 must force retries");
    assert_eq!(
        total_retries, total_faults,
        "every injected fault under seed 9 is recovered by one retry"
    );
}

/// With synthetic read latency and a tight deadline, the query fails with
/// the typed deadline error — which never triggers baseline fallback
/// (the baseline would blow the same deadline).
#[test]
fn slow_reads_past_the_deadline_fail_typed() {
    let mut s = session();
    s.set_fault_policy(FaultPolicy::default().with_read_latency(Duration::from_millis(20)));
    s.set_timeout(Some(Duration::from_millis(5)));
    match s.sql("SELECT id FROM orders") {
        Err(FusionError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

// ---------- §V.C: enforced working-memory budgets ----------

/// TPC-DS Q65-style shape: the per-store revenue aggregation appears
/// twice (once per se, once under the average), so the unfused baseline
/// holds two copies of the aggregation state concurrently.
const Q65_LIKE: &str = "WITH sa AS (SELECT store, item, SUM(price) AS revenue \
                                    FROM sales GROUP BY store, item), \
                             sb AS (SELECT store, AVG(revenue) AS ave \
                                    FROM sa GROUP BY store) \
                        SELECT sa.store, sa.item, sa.revenue \
                        FROM sa JOIN sb ON sa.store = sb.store \
                        WHERE sa.revenue <= 0.9 * sb.ave";

fn sales_session() -> Session {
    let mut s = Session::new();
    let mut b = TableBuilder::new(
        "sales",
        vec![
            col("store", DataType::Int64, true),
            col("item", DataType::Int64, true),
            col("price", DataType::Float64, true),
        ],
    );
    for i in 0..400i64 {
        b.add_row(vec![
            Value::Int64(i % 80),
            Value::Int64(i % 11),
            Value::Float64((i % 13) as f64 + 0.25),
        ])
        .unwrap();
    }
    s.register_table(b.build());
    s
}

/// The paper's §V.C observation, enforced: under a budget between the
/// fused and baseline state peaks, the fused plan completes while the
/// baseline — which duplicates the aggregation — aborts with the typed
/// `ResourceExhausted` error (resource errors never fall back: the
/// baseline would exhaust the same budget).
#[test]
fn enforced_budget_admits_fused_plan_but_not_duplicated_baseline() {
    let fused_free = sales_session().sql(Q65_LIKE).unwrap();
    assert!(fused_free.report.fusion_applied, "Q65 shape must fuse");

    let mut bs = sales_session();
    bs.set_fusion_enabled(false);
    let base_free = bs.sql(Q65_LIKE).unwrap();
    assert_eq!(fused_free.sorted_rows(), base_free.sorted_rows());

    let fused_peak = fused_free.metrics.peak_state_bytes;
    let base_peak = base_free.metrics.peak_state_bytes;
    assert!(
        fused_peak < base_peak,
        "fused peak ({fused_peak}B) must undercut the baseline peak ({base_peak}B)"
    );
    let budget = ((fused_peak + base_peak) / 2) as usize;

    let mut s = sales_session();
    s.set_enforced_memory_budget(Some(budget));
    let r = s.sql(Q65_LIKE).unwrap();
    assert!(!r.degraded());
    assert_eq!(r.sorted_rows(), base_free.sorted_rows());

    let mut s = sales_session();
    s.set_fusion_enabled(false);
    s.set_enforced_memory_budget(Some(budget));
    match s.sql(Q65_LIKE) {
        Err(FusionError::ResourceExhausted { budget: b, requested }) => {
            assert_eq!(b, budget);
            assert!(requested > budget);
        }
        Ok(r) => panic!("baseline must exhaust the budget, got {} rows", r.rows.len()),
        Err(other) => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

// ---------- property: fault schedules never change answers ----------

/// A query the optimizer fuses (shared CTE under a UNION ALL).
const FUSABLE: &str = "WITH cte AS (SELECT id, cust, amount FROM orders) \
                       SELECT id FROM cte WHERE cust = 10 \
                       UNION ALL SELECT id FROM cte WHERE amount > 40";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any seeded fault schedule, fused and baseline either both
    /// produce identical rows (retries absorb the faults, or the fused
    /// plan degrades to baseline and still matches), or fail with the
    /// typed transient-I/O error once retries are exhausted.
    #[test]
    fn fused_and_baseline_agree_under_fault_schedules(
        seed in 0u64..1_000_000,
        parallel in proptest::strategy::any::<bool>(),
    ) {
        let workers = if parallel { 4 } else { 1 };
        let policy = FaultPolicy::transient(seed, 0.3);
        let mut fused = session();
        fused.set_parallelism(workers);
        fused.set_fault_policy(policy.clone());
        let mut base = session();
        base.set_parallelism(workers);
        base.set_fusion_enabled(false);
        base.set_fault_policy(policy);

        match (fused.sql(FUSABLE), base.sql(FUSABLE)) {
            (Ok(f), Ok(b)) => {
                prop_assert_eq!(f.sorted_rows(), b.sorted_rows(), "seed {}", seed);
            }
            (Err(e), _) | (_, Err(e)) => {
                prop_assert!(
                    matches!(e, FusionError::TransientIo(_)),
                    "seed {}: only exhausted retries may fail, got {:?}", seed, e
                );
            }
        }
    }
}
