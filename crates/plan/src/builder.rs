//! Fluent construction of logical plans.
//!
//! The builder owns a shared [`IdGen`]; every scan instantiation and every
//! projected/aggregated output allocates fresh column identities through
//! it, so plans built for the same session never collide.

use fusion_common::{ColumnId, DataType, Field, FusionError, IdGen, Result, Value};
use fusion_expr::{AggregateExpr, Expr, WindowExpr};

use crate::plan::{
    AggAssign, Aggregate, ConstantTable, EnforceSingleRow, Filter, Join, JoinType, Limit,
    LogicalPlan, MarkDistinct, Project, ProjExpr, Scan, Sort, SortKey, UnionAll, Window,
    WindowAssign,
};

/// Column definition of a base table, used when instantiating scans.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable,
        }
    }
}

/// Fluent plan builder.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
    gen: IdGen,
}

impl PlanBuilder {
    /// Instantiate a scan of `table` with fresh column identities.
    pub fn scan(gen: &IdGen, table: impl Into<String>, columns: &[ColumnDef]) -> Self {
        let fields = columns
            .iter()
            .map(|c| Field::new(gen.fresh(), c.name.clone(), c.data_type, c.nullable))
            .collect();
        PlanBuilder {
            plan: LogicalPlan::Scan(Scan {
                table: table.into(),
                fields,
                column_indices: (0..columns.len()).collect(),
                filters: vec![],
            }),
            gen: gen.clone(),
        }
    }

    /// Wrap an existing plan.
    pub fn from_plan(gen: &IdGen, plan: LogicalPlan) -> Self {
        PlanBuilder {
            plan,
            gen: gen.clone(),
        }
    }

    /// An inline constant table (`VALUES`).
    pub fn values(
        gen: &IdGen,
        columns: &[(&str, DataType)],
        rows: Vec<Vec<Value>>,
    ) -> Self {
        let fields = columns
            .iter()
            .map(|(n, t)| Field::new(gen.fresh(), *n, *t, false))
            .collect();
        PlanBuilder {
            plan: LogicalPlan::ConstantTable(ConstantTable { fields, rows }),
            gen: gen.clone(),
        }
    }

    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    pub fn build(self) -> LogicalPlan {
        self.plan
    }

    pub fn id_gen(&self) -> &IdGen {
        &self.gen
    }

    /// The output schema of the plan built so far.
    pub fn schema(&self) -> fusion_common::Schema {
        self.plan.schema()
    }

    /// Resolve a column by name (case-insensitive) in the current output.
    pub fn col(&self, name: &str) -> Result<ColumnId> {
        let schema = self.plan.schema();
        let mut hits = schema.fields_by_name(name);
        match (hits.next(), hits.next()) {
            (Some(f), None) => Ok(f.id),
            (Some(_), Some(_)) => Err(FusionError::Plan(format!("ambiguous column `{name}`"))),
            (None, _) => Err(FusionError::Plan(format!("unknown column `{name}`"))),
        }
    }

    /// Column-reference expression by name.
    pub fn col_expr(&self, name: &str) -> Result<Expr> {
        Ok(Expr::Column(self.col(name)?))
    }

    pub fn filter(self, predicate: Expr) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Filter(Filter {
                input: Box::new(self.plan),
                predicate,
            }),
            gen: self.gen,
        }
    }

    /// Project expressions to named outputs with fresh identities.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Self {
        let exprs = exprs
            .into_iter()
            .map(|(name, expr)| ProjExpr::new(self.gen.fresh(), name, expr))
            .collect();
        PlanBuilder {
            plan: LogicalPlan::Project(Project {
                input: Box::new(self.plan),
                exprs,
            }),
            gen: self.gen,
        }
    }

    pub fn join(self, right: LogicalPlan, join_type: JoinType, condition: Expr) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Join(Join {
                left: Box::new(self.plan),
                right: Box::new(right),
                join_type,
                condition,
            }),
            gen: self.gen,
        }
    }

    pub fn cross_join(self, right: LogicalPlan) -> Self {
        self.join(right, JoinType::Cross, Expr::boolean(true))
    }

    /// GroupBy on columns with named aggregates (fresh identities).
    pub fn aggregate(self, group_by: Vec<ColumnId>, aggs: Vec<(&str, AggregateExpr)>) -> Self {
        let aggregates = aggs
            .into_iter()
            .map(|(name, agg)| AggAssign::new(self.gen.fresh(), name, agg))
            .collect();
        PlanBuilder {
            plan: LogicalPlan::Aggregate(Aggregate {
                input: Box::new(self.plan),
                group_by,
                aggregates,
            }),
            gen: self.gen,
        }
    }

    /// DISTINCT over the given columns (GroupBy with no aggregates).
    pub fn distinct_on(self, columns: Vec<ColumnId>) -> Self {
        self.aggregate(columns, vec![])
    }

    /// Append window aggregates.
    pub fn window(self, exprs: Vec<(&str, WindowExpr)>) -> Self {
        let exprs = exprs
            .into_iter()
            .map(|(name, window)| WindowAssign {
                id: self.gen.fresh(),
                name: name.into(),
                window,
            })
            .collect();
        PlanBuilder {
            plan: LogicalPlan::Window(Window {
                input: Box::new(self.plan),
                exprs,
            }),
            gen: self.gen,
        }
    }

    /// Append a MarkDistinct column over `columns`.
    pub fn mark_distinct(self, columns: Vec<ColumnId>, mark_name: &str) -> Self {
        let mark_id = self.gen.fresh();
        PlanBuilder {
            plan: LogicalPlan::MarkDistinct(MarkDistinct {
                input: Box::new(self.plan),
                columns,
                mark_id,
                mark_name: mark_name.into(),
                mask: Expr::boolean(true),
            }),
            gen: self.gen,
        }
    }

    /// Bag-union this plan with others (positional); output columns take
    /// the names/types of the first input with fresh identities.
    pub fn union_all(self, others: Vec<LogicalPlan>) -> Result<Self> {
        let first = self.plan.schema();
        let mut inputs = vec![self.plan];
        inputs.extend(others);
        let fields = first
            .fields()
            .iter()
            .map(|f| {
                Field::new(
                    self.gen.fresh(),
                    f.name.clone(),
                    f.data_type,
                    // Conservative: nullable if any input's column is.
                    true,
                )
            })
            .collect();
        let plan = LogicalPlan::UnionAll(UnionAll { inputs, fields });
        plan.validate()?;
        Ok(PlanBuilder {
            plan,
            gen: self.gen,
        })
    }

    pub fn enforce_single_row(self) -> Self {
        PlanBuilder {
            plan: LogicalPlan::EnforceSingleRow(EnforceSingleRow {
                input: Box::new(self.plan),
            }),
            gen: self.gen,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Sort(Sort {
                input: Box::new(self.plan),
                keys,
            }),
            gen: self.gen,
        }
    }

    pub fn limit(self, fetch: usize) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Limit(Limit {
                input: Box::new(self.plan),
                fetch,
            }),
            gen: self.gen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_expr::{col, lit};

    fn item_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("i_item_sk", DataType::Int64, false),
            ColumnDef::new("i_brand", DataType::Utf8, true),
            ColumnDef::new("i_size", DataType::Utf8, true),
        ]
    }

    #[test]
    fn two_scans_of_same_table_get_distinct_identities() {
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        assert_ne!(a.col("i_item_sk").unwrap(), b.col("i_item_sk").unwrap());
    }

    #[test]
    fn fluent_pipeline_builds_valid_plan() {
        let gen = IdGen::new();
        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let sk = b.col("i_item_sk").unwrap();
        let plan = b
            .filter(col(sk).gt(lit(10i64)))
            .aggregate(vec![sk], vec![("n", AggregateExpr::count_star())])
            .limit(5)
            .build();
        plan.validate().unwrap();
        assert_eq!(plan.schema().len(), 2);
    }

    #[test]
    fn union_all_validates_and_names_from_first() {
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "item", &item_cols()).build();
        let u = a.union_all(vec![b]).unwrap();
        let schema = u.schema();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.field(0).name, "i_item_sk");
    }

    #[test]
    fn union_all_arity_mismatch_fails() {
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(
            &gen,
            "store",
            &[ColumnDef::new("s_store_sk", DataType::Int64, false)],
        )
        .build();
        assert!(a.union_all(vec![b]).is_err());
    }

    #[test]
    fn values_builder() {
        let gen = IdGen::new();
        let t = PlanBuilder::values(
            &gen,
            &[("tag", DataType::Int64)],
            vec![vec![Value::Int64(1)], vec![Value::Int64(2)]],
        );
        let plan = t.build();
        plan.validate().unwrap();
        assert_eq!(plan.schema().len(), 1);
    }

    #[test]
    fn ambiguous_column_detected() {
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let b = PlanBuilder::scan(&gen, "item", &item_cols()).build();
        let j = a.cross_join(b);
        assert!(j.col("i_brand").is_err());
    }
}
