// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! The Q23 pattern (§V.C): a UNION ALL of two near-identical insights
//! that differ only in the fact table. `UnionAllOnJoin` pushes the union
//! below the shared subqueries (best_customer, freq_items, date_dim), so
//! each expensive common expression is evaluated once — and peak operator
//! state roughly halves, which is the paper's spilling observation.
//!
//! ```sh
//! cargo run --release --example union_fusion
//! ```

use fusion_engine::Session;
use fusion_tpcds::{generate_catalog, queries, TpcdsConfig};

fn main() {
    let cfg = TpcdsConfig::with_scale(0.5);
    let mut fused = Session::new();
    for t in generate_catalog(&cfg).into_tables() {
        fused.register_table(t);
    }
    let mut baseline = Session::baseline();
    for t in generate_catalog(&cfg).into_tables() {
        baseline.register_table(t);
    }

    let q = queries::q23();
    let rb = baseline.sql(&q.sql).expect("baseline");
    let rf = fused.sql(&q.sql).expect("fused");
    assert_eq!(rf.sorted_rows(), rb.sorted_rows());

    let count = |plan: &fusion_plan::LogicalPlan, table: &str| {
        plan.scanned_tables().iter().filter(|t| *t == table).count()
    };
    println!("== {} ({}) ==", q.id, q.family);
    for table in ["store_sales", "date_dim", "item", "customer"] {
        println!(
            "  {table:<12} scans: baseline {} -> fused {}",
            count(&rb.optimized_plan, table),
            count(&rf.optimized_plan, table)
        );
    }
    println!(
        "  latency     : baseline {:>9.2?} | fused {:>9.2?} | {:.2}x",
        rb.latency,
        rf.latency,
        rb.latency.as_secs_f64() / rf.latency.as_secs_f64()
    );
    println!(
        "  bytes read  : baseline {:>10} | fused {:>10} | {:.0}% of baseline",
        rb.metrics.bytes_scanned,
        rf.metrics.bytes_scanned,
        100.0 * rf.metrics.bytes_scanned as f64 / rb.metrics.bytes_scanned as f64
    );
    println!(
        "  peak state  : baseline {:>10} | fused {:>10} (the §V.C memory effect)",
        rb.metrics.peak_state_bytes, rf.metrics.peak_state_bytes
    );
    println!("(paper: Q23 ~2x faster, ~half the bytes, half the peak memory)");
}
