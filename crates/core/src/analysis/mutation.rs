//! Plan-mutation self-test: the analyzer's own regression suite.
//!
//! Each corruption below takes a *known-good* fusion artifact — a raw
//! `Fuse` result or an optimized tagged-dispatch plan — and applies one
//! seeded mutation of the kind a buggy rewrite would produce: drop a
//! mapping entry, swap or widen a compensating filter, widen an aggregate
//! mask, change an aggregate's function or argument, drop a grouping key,
//! retype or drop a tag-dispatch branch. The analyzer (contract checker +
//! structural validation + whole-plan checks) must reject every mutant;
//! a surviving mutant is a hole in the analyzer, reported by name for
//! triage and gated in CI at a ≥ 95% kill rate.

use std::collections::HashMap;

use fusion_common::{DataType, Field, IdGen, Value};
use fusion_expr::{col, lit, AggregateExpr, BinaryOp, Expr};
use fusion_plan::{
    AggAssign, Aggregate, Filter, LogicalPlan, Project, ProjExpr, Scan, UnionAll,
};

use super::canon::canonical_form;
use super::reuse::{
    certify_exact_splice, certify_fused_splice, certify_maintainability, certify_stamps,
    certify_subsumption, check_maintain_claim, MaintainShape,
};
use super::{analyze_plan, check_fuse_contract, render_violations, Violation};
use crate::fuse::{fuse, FuseContext, Fused};
use crate::rules::union_fusion::UnionAllFusion;
use crate::rules::Rule;

/// Outcome of one seeded corruption.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    pub description: String,
    pub killed: bool,
    /// The violation (or validation error) that killed it, if any.
    pub detail: String,
}

/// Aggregated self-test result.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    pub outcomes: Vec<MutationOutcome>,
}

impl MutationReport {
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    pub fn killed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.killed).count()
    }

    pub fn kill_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.killed() as f64 / self.total() as f64
    }

    /// Descriptions of mutants the analyzer failed to reject.
    pub fn survivors(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.killed)
            .map(|o| o.description.as_str())
            .collect()
    }

    fn record_fused(
        &mut self,
        description: impl Into<String>,
        p1: &LogicalPlan,
        p2: &LogicalPlan,
        mutant: &Fused,
    ) {
        // A mutant is killed if any layer of the gate rejects it: the
        // contract checker, structural validation, or the plan checks.
        let mut detail = render_violations(&check_fuse_contract(p1, p2, mutant));
        if detail.is_empty() {
            if let Err(e) = mutant.plan.validate() {
                detail = e.to_string();
            }
        }
        if detail.is_empty() {
            detail = render_violations(&analyze_plan(&mutant.plan));
        }
        self.outcomes.push(MutationOutcome {
            description: description.into(),
            killed: !detail.is_empty(),
            detail,
        });
    }

    fn record_plan(&mut self, description: impl Into<String>, mutant: &LogicalPlan) {
        let mut detail = match mutant.validate() {
            Err(e) => e.to_string(),
            Ok(()) => String::new(),
        };
        if detail.is_empty() {
            detail = render_violations(&analyze_plan(mutant));
        }
        self.outcomes.push(MutationOutcome {
            description: description.into(),
            killed: !detail.is_empty(),
            detail,
        });
    }
}

/// Run the full corruption suite. Also asserts (as outcomes, not panics)
/// that the *uncorrupted* artifacts pass, so a false-positive analyzer
/// shows up as a mutation regression too.
pub fn run_self_test() -> MutationReport {
    let mut report = MutationReport::default();
    filter_fusion_mutants(&mut report);
    scalar_aggregate_mutants(&mut report);
    keyed_aggregate_mutants(&mut report);
    union_dispatch_mutants(&mut report);
    report
}

/// Run the reuse-corruption suite: seeded corruptions of known-good reuse
/// rewrites — exact and fused splices, subsumption serves, refresh shapes
/// and dependency stamps — that the reuse-soundness prover must reject.
/// Pristine artifacts are recorded too (inverted, "killed" = accepted) so
/// false positives show up as regressions alongside surviving mutants.
pub fn run_reuse_self_test() -> MutationReport {
    let mut report = MutationReport::default();
    exact_splice_mutants(&mut report);
    fused_splice_mutants(&mut report);
    subsumption_mutants(&mut report);
    maintainability_mutants(&mut report);
    stamp_mutants(&mut report);
    report
}

/// `[x Int64, y Utf8, z Int64, b Boolean]` scan with fresh ids.
fn scan(gen: &IdGen, table: &str) -> LogicalPlan {
    let fields = vec![
        Field::new(gen.fresh(), "x", DataType::Int64, true),
        Field::new(gen.fresh(), "y", DataType::Utf8, true),
        Field::new(gen.fresh(), "z", DataType::Int64, true),
        Field::new(gen.fresh(), "b", DataType::Boolean, true),
    ];
    LogicalPlan::Scan(Scan {
        table: table.into(),
        fields,
        column_indices: vec![0, 1, 2, 3],
        filters: Vec::new(),
    })
}

fn field_id(plan: &LogicalPlan, name: &str) -> fusion_common::ColumnId {
    plan.schema()
        .fields()
        .iter()
        .find(|f| f.name == name)
        .map(|f| f.id)
        .unwrap_or(fusion_common::ColumnId(u32::MAX))
}

/// A good/bad sanity pair plus the corruption matrix for plain filter
/// fusion: `Filter(x>5)(t)` fused with `Filter(x<3)(t)`.
fn filter_fusion_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let x1 = field_id(&s1, "x");
    let y1 = field_id(&s1, "y");
    let p1 = LogicalPlan::Filter(Filter {
        input: Box::new(s1.clone()),
        predicate: col(x1).gt(lit(5i64)),
    });
    let p2 = LogicalPlan::Filter(Filter {
        input: Box::new(s2.clone()),
        predicate: col(field_id(&s2, "x")).lt(lit(3i64)),
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "filter fusion sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };

    // Baseline: the uncorrupted result must be accepted (recorded
    // inverted — "killed" here means the analyzer stayed quiet).
    let baseline = check_fuse_contract(&p1, &p2, &good);
    report.outcomes.push(MutationOutcome {
        description: "filter fusion: pristine result accepted".into(),
        killed: baseline.is_empty(),
        detail: render_violations(&baseline),
    });

    // Drop each mapping entry.
    for key in good.mapping.keys().copied().collect::<Vec<_>>() {
        let mut m = good.clone();
        m.mapping.remove(&key);
        report.record_fused(
            format!("filter fusion: drop mapping entry for #{}", key.0),
            &p1,
            &p2,
            &m,
        );
    }
    // Remap a column onto a fresh id the fused plan does not produce.
    if let Some(key) = good.mapping.keys().next().copied() {
        let mut m = good.clone();
        m.mapping.insert(key, ctx.gen.fresh());
        report.record_fused("filter fusion: remap onto unknown column", &p1, &p2, &m);
    }
    // Remap P2's Utf8 column onto P1's Int64 column.
    {
        let mut m = good.clone();
        m.mapping.insert(field_id(&s2, "y"), x1);
        report.record_fused("filter fusion: remap Utf8 column onto Int64", &p1, &p2, &m);
    }
    // Swap the compensating filters.
    {
        let mut m = good.clone();
        std::mem::swap(&mut m.left, &mut m.right);
        report.record_fused("filter fusion: swap L and R", &p1, &p2, &m);
    }
    // Widen each compensation to TRUE.
    for side in ["L", "R"] {
        let mut m = good.clone();
        if side == "L" {
            m.left = Expr::boolean(true);
        } else {
            m.right = Expr::boolean(true);
        }
        report.record_fused(format!("filter fusion: widen {side} to TRUE"), &p1, &p2, &m);
    }
    // Compensation referencing a column outside the fused schema.
    {
        let mut m = good.clone();
        m.left = col(ctx.gen.fresh()).gt(lit(0i64));
        report.record_fused("filter fusion: L references unknown column", &p1, &p2, &m);
    }
    // Non-boolean compensation.
    {
        let mut m = good.clone();
        m.right = col(x1).add(lit(1i64));
        report.record_fused("filter fusion: R is not boolean", &p1, &p2, &m);
    }
    // Drop one of P1's columns from the fused plan via a projection.
    {
        let mut m = good.clone();
        let keep: Vec<ProjExpr> = m
            .plan
            .schema()
            .fields()
            .iter()
            .filter(|f| f.id != y1)
            .map(|f| ProjExpr::new(f.id, f.name.clone(), col(f.id)))
            .collect();
        m.plan = LogicalPlan::Project(Project {
            input: Box::new(m.plan),
            exprs: keep,
        });
        report.record_fused("filter fusion: fused plan drops a P1 column", &p1, &p2, &m);
    }
}

/// Scalar aggregates over different filters: the filters must be absorbed
/// into every derived mask.
fn scalar_aggregate_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let x1 = field_id(&s1, "x");
    let x2 = field_id(&s2, "x");
    let agg1 = gen.fresh();
    let agg2 = gen.fresh();
    let p1 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(LogicalPlan::Filter(Filter {
            input: Box::new(s1.clone()),
            predicate: col(x1).gt(lit(5i64)),
        })),
        group_by: vec![],
        aggregates: vec![AggAssign::new(agg1, "s", AggregateExpr::sum(col(x1)))],
    });
    let p2 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(LogicalPlan::Filter(Filter {
            input: Box::new(s2.clone()),
            predicate: col(x2).lt(lit(3i64)),
        })),
        group_by: vec![],
        aggregates: vec![AggAssign::new(agg2, "s", AggregateExpr::sum(col(x2)))],
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "scalar aggregate sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };
    let baseline = check_fuse_contract(&p1, &p2, &good);
    report.outcomes.push(MutationOutcome {
        description: "scalar aggregates: pristine result accepted".into(),
        killed: baseline.is_empty(),
        detail: render_violations(&baseline),
    });

    // Widen each fused aggregate's mask to TRUE.
    let n_aggs = match &good.plan {
        LogicalPlan::Aggregate(g) => g.aggregates.len(),
        _ => 0,
    };
    for i in 0..n_aggs {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.get_mut(i) {
                a.agg.mask = Expr::boolean(true);
            }
        }
        report.record_fused(
            format!("scalar aggregates: widen mask of fused aggregate {i}"),
            &p1,
            &p2,
            &m,
        );
    }
    // Change the function / argument / DISTINCT-ness of a fused aggregate.
    for (what, change) in [
        ("function SUM->MAX", 0),
        ("argument x->z", 1),
        ("set DISTINCT", 2),
    ] {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.first_mut() {
                match change {
                    0 => a.agg.func = fusion_expr::AggFunc::Max,
                    1 => a.agg.arg = Some(col(field_id(&s1, "z"))),
                    _ => a.agg.distinct = true,
                }
            }
        }
        report.record_fused(format!("scalar aggregates: {what}"), &p1, &p2, &m);
    }
}

/// Keyed aggregates with masked source aggregates: masks may only get
/// stricter, grouping keys must survive.
fn keyed_aggregate_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let k1 = field_id(&s1, "z");
    let k2 = field_id(&s2, "z");
    let b1 = field_id(&s1, "b");
    let b2 = field_id(&s2, "b");
    let agg1 = gen.fresh();
    let agg2 = gen.fresh();
    let p1 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(s1.clone()),
        group_by: vec![k1],
        aggregates: vec![AggAssign::new(
            agg1,
            "m",
            AggregateExpr::min(col(field_id(&s1, "x"))).with_mask(col(b1)),
        )],
    });
    let p2 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(s2.clone()),
        group_by: vec![k2],
        aggregates: vec![AggAssign::new(
            agg2,
            "m2",
            AggregateExpr::max(col(field_id(&s2, "x"))).with_mask(col(b2)),
        )],
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "keyed aggregate sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };
    let baseline = check_fuse_contract(&p1, &p2, &good);
    report.outcomes.push(MutationOutcome {
        description: "keyed aggregates: pristine result accepted".into(),
        killed: baseline.is_empty(),
        detail: render_violations(&baseline),
    });

    // Widen the mask of the aggregate carrying P1's MIN.
    {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.iter_mut().find(|a| a.id == agg1) {
                a.agg.mask = Expr::boolean(true);
            }
        }
        report.record_fused("keyed aggregates: widen P1 mask", &p1, &p2, &m);
    }
    // Widen the mask of the aggregate carrying P2's MAX (found via M).
    {
        let mut m = good.clone();
        let target = m.mapped_id(agg2);
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.iter_mut().find(|a| a.id == target) {
                a.agg.mask = Expr::boolean(true);
            }
        }
        report.record_fused("keyed aggregates: widen P2 mask", &p1, &p2, &m);
    }
    // Drop the grouping key.
    {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            g.group_by.clear();
        }
        report.record_fused("keyed aggregates: drop grouping key", &p1, &p2, &m);
    }
    // Corrupt the mapping entry for P2's aggregate output. Same-table
    // fusions may carry P2's output under its own identity, in which
    // case *removing* the entry is a no-op (`mapped_id` falls back to
    // identity) — so the corruption points it at a column the fused
    // plan does not produce instead.
    {
        let mut m = good.clone();
        m.mapping.insert(agg2, ctx.gen.fresh());
        report.record_fused(
            "keyed aggregates: remap P2 output onto unknown column",
            &p1,
            &p2,
            &m,
        );
    }
}

/// Tag-dispatch corruption of an optimized 3-branch union fusion.
fn union_dispatch_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let mut inputs = Vec::new();
    let mut bounds = [10i64, 20, 30].iter();
    let mut fields = Vec::new();
    for i in 0..3 {
        let s = scan(&gen, "t");
        let x = field_id(&s, "x");
        let bound = *bounds.next().unwrap_or(&0);
        if i == 0 {
            fields = s
                .schema()
                .fields()
                .iter()
                .map(|f| Field::new(gen.fresh(), f.name.clone(), f.data_type, f.nullable))
                .collect();
        }
        inputs.push(LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: col(x).gt(lit(bound)),
        }));
    }
    let union = LogicalPlan::UnionAll(UnionAll { inputs, fields });
    let ctx = FuseContext::new(gen);
    let Some(good) = UnionAllFusion.apply(&union, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "union dispatch sample: rule did not fire".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };

    let baseline = analyze_plan(&good);
    report.outcomes.push(MutationOutcome {
        description: "union dispatch: pristine plan accepted".into(),
        killed: baseline.is_empty() && good.validate().is_ok(),
        detail: render_violations(&baseline),
    });

    // Retype a tag literal: `tag = 2` becomes `tag = 9`.
    report.record_plan(
        "union dispatch: retype tag literal 2 -> 9",
        &rewrite_filters(&good, &|pred| replace_tag_literal(pred, 2, 9)),
    );
    // Duplicate a branch: `tag = 2` becomes `tag = 1`.
    report.record_plan(
        "union dispatch: dispatch branch 1 twice, drop branch 2",
        &rewrite_filters(&good, &|pred| replace_tag_literal(pred, 2, 1)),
    );
    // Drop a dispatch branch entirely.
    report.record_plan(
        "union dispatch: drop dispatch branch for tag 3",
        &rewrite_filters(&good, &|pred| drop_tag_disjunct(pred, 3)),
    );
}

/// Rewrite every Filter predicate with `f` (first match wins).
fn rewrite_filters(plan: &LogicalPlan, f: &dyn Fn(&Expr) -> Option<Expr>) -> LogicalPlan {
    plan.transform_down(&mut |node| {
        if let LogicalPlan::Filter(flt) = node {
            f(&flt.predicate).map(|predicate| {
                LogicalPlan::Filter(Filter {
                    input: flt.input.clone(),
                    predicate,
                })
            })
        } else {
            None
        }
    })
}

/// Replace the first `col = from` equality with `col = to`.
fn replace_tag_literal(pred: &Expr, from: i64, to: i64) -> Option<Expr> {
    let changed = std::cell::Cell::new(false);
    let out = pred.transform(&|e| {
        if changed.get() {
            return None;
        }
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = &e
        {
            if let (Expr::Column(id), Expr::Literal(Value::Int64(k))) =
                (left.as_ref(), right.as_ref())
            {
                if *k == from {
                    changed.set(true);
                    return Some(col(*id).eq_to(lit(to)));
                }
            }
        }
        None
    });
    changed.get().then_some(out)
}

/// Remove the disjunct dispatching `tag = which` from a top-level
/// disjunction.
fn drop_tag_disjunct(pred: &Expr, which: i64) -> Option<Expr> {
    let disjuncts = fusion_expr::split_disjuncts(pred);
    if disjuncts.len() < 2 {
        return None;
    }
    let keep: Vec<Expr> = disjuncts
        .iter()
        .filter(|d| {
            !fusion_expr::split_conjuncts(d).iter().any(|c| {
                matches!(
                    c,
                    Expr::Binary { op: BinaryOp::Eq, left, right }
                        if matches!(left.as_ref(), Expr::Column(_))
                            && matches!(right.as_ref(), Expr::Literal(Value::Int64(k)) if *k == which)
                )
            })
        })
        .cloned()
        .collect();
    (keep.len() < disjuncts.len() && !keep.is_empty()).then(|| fusion_expr::disjoin(keep))
}

// ---------------------------------------------------------------------
// Reuse-corruption corpus
// ---------------------------------------------------------------------

impl MutationReport {
    /// Record one certification attempt that must be *rejected*.
    fn record_cert<T>(&mut self, description: impl Into<String>, result: Result<T, Vec<Violation>>) {
        let (killed, detail) = match result {
            Ok(_) => (false, String::new()),
            Err(v) => (true, render_violations(&v)),
        };
        self.outcomes.push(MutationOutcome {
            description: description.into(),
            killed,
            detail,
        });
    }

    /// Record one pristine artifact that must be *accepted* (inverted:
    /// "killed" means the prover stayed quiet).
    fn record_pristine<T>(
        &mut self,
        description: impl Into<String>,
        result: Result<T, Vec<Violation>>,
    ) {
        let (killed, detail) = match result {
            Ok(_) => (true, String::new()),
            Err(v) => (false, render_violations(&v)),
        };
        self.outcomes.push(MutationOutcome {
            description: description.into(),
            killed,
            detail,
        });
    }
}

/// `[x Int64, f Float64, z Int64, b Boolean]` scan with fresh ids, for
/// reuse corruptions that need a float column.
fn fscan(gen: &IdGen, table: &str) -> LogicalPlan {
    let fields = vec![
        Field::new(gen.fresh(), "x", DataType::Int64, true),
        Field::new(gen.fresh(), "f", DataType::Float64, true),
        Field::new(gen.fresh(), "z", DataType::Int64, true),
        Field::new(gen.fresh(), "b", DataType::Boolean, true),
    ];
    LogicalPlan::Scan(Scan {
        table: table.into(),
        fields,
        column_indices: vec![0, 1, 2, 3],
        filters: Vec::new(),
    })
}

/// Exact splices: the consumer must be canonically equal to the shared
/// plan, with a total slot alignment.
fn exact_splice_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s = scan(&gen, "t");
    let x = field_id(&s, "x");
    let consumer = LogicalPlan::Filter(Filter {
        input: Box::new(s),
        predicate: col(x).gt(lit(5i64)),
    });
    let form = canonical_form(&consumer);

    report.record_pristine(
        "exact splice: pristine consumer against its own form accepted",
        certify_exact_splice(&consumer, &form.encoding, &form.slots),
    );

    // Shared plan computed a different predicate (wrong literal).
    let other = {
        let gen = IdGen::new();
        let s = scan(&gen, "t");
        let x = field_id(&s, "x");
        canonical_form(&LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: col(x).gt(lit(6i64)),
        }))
    };
    report.record_cert(
        "exact splice: shared plan filters x>6, consumer wants x>5",
        certify_exact_splice(&consumer, &other.encoding, &other.slots),
    );
    // Shared plan over a different base table.
    let other_table = {
        let gen = IdGen::new();
        let s = scan(&gen, "u");
        let x = field_id(&s, "x");
        canonical_form(&LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: col(x).gt(lit(5i64)),
        }))
    };
    report.record_cert(
        "exact splice: shared plan scans table u, consumer scans t",
        certify_exact_splice(&consumer, &other_table.encoding, &other_table.slots),
    );
    // Shared rows dropped a column the consumer needs (slot list
    // truncated while the claimed encoding still matches).
    report.record_cert(
        "exact splice: shared slots dropped a consumer column",
        certify_exact_splice(&consumer, &form.encoding, &form.slots[..form.slots.len() - 1]),
    );
    // Shared rows carry a retyped column in place of the consumer's.
    let mut retyped = form.slots.clone();
    if let Some(last) = retyped.last_mut() {
        *last = last.replace("Boolean", "Utf8");
    }
    report.record_cert(
        "exact splice: shared slot retyped Boolean -> Utf8",
        certify_exact_splice(&consumer, &form.encoding, &retyped),
    );
}

/// Fused splices: the mapping/compensation pair must reconstruct the
/// consumer from the fused superset, in both directions.
fn fused_splice_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let x1 = field_id(&s1, "x");
    let x2 = field_id(&s2, "x");
    let z2 = field_id(&s2, "z");
    let p1 = LogicalPlan::Filter(Filter {
        input: Box::new(s1.clone()),
        predicate: col(x1).gt(lit(5i64)),
    });
    let p2 = LogicalPlan::Filter(Filter {
        input: Box::new(s2.clone()),
        predicate: col(x2).lt(lit(3i64)),
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "fused splice sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };

    report.record_pristine(
        "fused splice: pristine mapping/compensation accepted",
        certify_fused_splice(&p2, &good.plan, &good.mapping, &good.right),
    );

    // Swapped compensation: serve P2 through P1's residual.
    report.record_cert(
        "fused splice: compensations swapped (P2 served through L)",
        certify_fused_splice(&p2, &good.plan, &good.mapping, &good.left),
    );
    // Widened compensation: TRUE keeps the other member's rows.
    report.record_cert(
        "fused splice: compensation widened to TRUE",
        certify_fused_splice(&p2, &good.plan, &good.mapping, &Expr::boolean(true)),
    );
    // Wrong literal in the compensation.
    report.record_cert(
        "fused splice: compensation literal 3 -> 4",
        certify_fused_splice(
            &p2,
            &good.plan,
            &good.mapping,
            &col(good.mapped_id(x2)).lt(lit(4i64)),
        ),
    );
    // Over-narrow compensation — forward direction still holds, only the
    // reverse residual check can catch it.
    report.record_cert(
        "fused splice: compensation narrowed with an extra conjunct",
        certify_fused_splice(
            &p2,
            &good.plan,
            &good.mapping,
            &good
                .right
                .clone()
                .and(col(good.mapped_id(z2)).gt(lit(0i64))),
        ),
    );
    // Mapping corruptions over the consumer's output columns.
    for f in p2.schema().fields() {
        let mut m = good.mapping.clone();
        m.remove(&f.id);
        if m.len() < good.mapping.len() {
            report.record_cert(
                format!("fused splice: drop mapping entry for {}#{}", f.name, f.id.0),
                certify_fused_splice(&p2, &good.plan, &m, &good.right),
            );
        }
    }
    {
        let mut m = good.mapping.clone();
        m.insert(x2, ctx.gen.fresh());
        report.record_cert(
            "fused splice: remap consumer x onto unknown column",
            certify_fused_splice(&p2, &good.plan, &m, &good.right),
        );
    }
    {
        // Swap two mapping targets: x lands on y's Utf8 column.
        let mut m = good.mapping.clone();
        m.insert(x2, field_id(&s1, "y"));
        report.record_cert(
            "fused splice: remap consumer Int64 x onto Utf8 column",
            certify_fused_splice(&p2, &good.plan, &m, &good.right),
        );
    }
    // Compensation hygiene.
    report.record_cert(
        "fused splice: compensation references unknown column",
        certify_fused_splice(
            &p2,
            &good.plan,
            &good.mapping,
            &col(ctx.gen.fresh()).gt(lit(0i64)),
        ),
    );
    report.record_cert(
        "fused splice: compensation is not boolean",
        certify_fused_splice(&p2, &good.plan, &good.mapping, &col(x1).add(lit(1i64))),
    );

    // Two-conjunct consumer: dropping one conjunct from the compensation
    // must lose the forward residual.
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let x1 = field_id(&s1, "x");
    let x2 = field_id(&s2, "x");
    let z2 = field_id(&s2, "z");
    let q1 = LogicalPlan::Filter(Filter {
        input: Box::new(s1),
        predicate: col(x1).gt(lit(5i64)),
    });
    let q2 = LogicalPlan::Filter(Filter {
        input: Box::new(s2),
        predicate: col(x2).lt(lit(3i64)).and(col(z2).gt(lit(0i64))),
    });
    let ctx = FuseContext::new(gen);
    let Some(good2) = fuse(&q1, &q2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "two-conjunct fused splice sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };
    report.record_pristine(
        "fused splice: pristine two-conjunct compensation accepted",
        certify_fused_splice(&q2, &good2.plan, &good2.mapping, &good2.right),
    );
    report.record_cert(
        "fused splice: compensation drops the z>0 conjunct",
        certify_fused_splice(
            &q2,
            &good2.plan,
            &good2.mapping,
            &col(good2.mapped_id(x2)).lt(lit(3i64)),
        ),
    );
}

/// Subsumption serves: strict conjunct containment over the same base,
/// with every consumer column recoverable.
fn subsumption_mutants(report: &mut MutationReport) {
    let mk_filter = |table: &str, extra: bool| {
        let gen = IdGen::new();
        let s = scan(&gen, table);
        let x = field_id(&s, "x");
        let z = field_id(&s, "z");
        let pred = if extra {
            col(x).gt(lit(5i64)).and(col(z).lt(lit(10i64)))
        } else {
            col(x).gt(lit(5i64))
        };
        LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: pred,
        })
    };

    let cached = mk_filter("t", false);
    let consumer = mk_filter("t", true);
    report.record_pristine(
        "subsumption: pristine strict-subset serve accepted",
        certify_subsumption(&cached, &consumer),
    );
    // Non-subset: the cached side filtered on a conjunct the consumer
    // does not carry.
    let cached_extra = {
        let gen = IdGen::new();
        let s = scan(&gen, "t");
        let x = field_id(&s, "x");
        let b = field_id(&s, "b");
        LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: col(x).gt(lit(5i64)).and(col(b)),
        })
    };
    report.record_cert(
        "subsumption: cached carries conjunct b the consumer lacks",
        certify_subsumption(&cached_extra, &consumer),
    );
    // Equal sets claimed as subsumption: that is an exact match.
    report.record_cert(
        "subsumption: equal conjunct sets claimed as strict subsumption",
        certify_subsumption(&cached, &mk_filter("t", false)),
    );
    // Different base tables.
    report.record_cert(
        "subsumption: cached scans u, consumer scans t",
        certify_subsumption(&mk_filter("u", false), &consumer),
    );
    // Projection narrowing that drops a column the consumer reads.
    let narrowed = {
        let gen = IdGen::new();
        let s = scan(&gen, "t");
        let x = field_id(&s, "x");
        let f = LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: col(x).gt(lit(5i64)),
        });
        LogicalPlan::Project(Project {
            input: Box::new(f),
            exprs: vec![ProjExpr::new(IdGen::new().fresh(), "x", col(x))],
        })
    };
    report.record_cert(
        "subsumption: cached projection dropped columns the consumer needs",
        certify_subsumption(&narrowed, &consumer),
    );

    // Computed-expression narrowing — the new coverage: cached is
    // `Project(x, x*z)` over the filter, consumer filters over the same
    // computed projection.
    let computed = |factor_add: bool| {
        let gen = IdGen::new();
        let s = scan(&gen, "t");
        let x = field_id(&s, "x");
        let z = field_id(&s, "z");
        let expr = if factor_add {
            col(x).add(col(z))
        } else {
            col(x).mul(col(z))
        };
        let proj = |input: LogicalPlan, gen: &IdGen| {
            LogicalPlan::Project(Project {
                input: Box::new(input),
                exprs: vec![
                    ProjExpr::new(gen.fresh(), "x", col(x)),
                    ProjExpr::new(gen.fresh(), "w", expr.clone()),
                ],
            })
        };
        let cached = proj(
            LogicalPlan::Filter(Filter {
                input: Box::new(s.clone()),
                predicate: col(x).gt(lit(5i64)),
            }),
            &gen,
        );
        let inner = proj(s, &gen);
        let (xo, wo) = {
            let f = inner.schema().fields().to_vec();
            (f[0].id, f[1].id)
        };
        let consumer = LogicalPlan::Filter(Filter {
            input: Box::new(inner),
            predicate: col(xo).gt(lit(5i64)).and(col(wo).lt(lit(100i64))),
        });
        (cached, consumer)
    };
    let (cached_mul, consumer_mul) = computed(false);
    report.record_pristine(
        "subsumption: pristine computed-projection (x*z) serve accepted",
        certify_subsumption(&cached_mul, &consumer_mul),
    );
    let (cached_add, _) = computed(true);
    report.record_cert(
        "subsumption: cached computes x+z, consumer needs x*z",
        certify_subsumption(&cached_add, &consumer_mul),
    );
}

/// Maintainability: refresh shapes must be re-derivable, and forged
/// claims must be rejected.
fn maintainability_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s = fscan(&gen, "t");
    let x = field_id(&s, "x");
    let f = field_id(&s, "f");
    let z = field_id(&s, "z");

    // Pristine shapes.
    let filtered = LogicalPlan::Filter(Filter {
        input: Box::new(s.clone()),
        predicate: col(x).gt(lit(5i64)),
    });
    report.record_pristine(
        "maintainability: pristine Filter(Scan) append-rows accepted",
        certify_maintainability(&filtered),
    );
    let computed_proj = LogicalPlan::Project(Project {
        input: Box::new(s.clone()),
        exprs: vec![ProjExpr::new(gen.fresh(), "x1", col(x).add(lit(1i64)))],
    });
    report.record_pristine(
        "maintainability: computed projection over Scan still append-rows",
        certify_maintainability(&computed_proj),
    );
    let agg = |aggs: Vec<AggAssign>| {
        LogicalPlan::Aggregate(Aggregate {
            input: Box::new(s.clone()),
            group_by: vec![z],
            aggregates: aggs,
        })
    };
    let good_agg = agg(vec![
        AggAssign::new(gen.fresh(), "c", AggregateExpr::count_star()),
        AggAssign::new(gen.fresh(), "s", AggregateExpr::sum(col(x))),
        AggAssign::new(gen.fresh(), "m", AggregateExpr::min(col(f))),
    ]);
    report.record_pristine(
        "maintainability: pristine COUNT/SUM(int)/MIN(float) merge accepted",
        certify_maintainability(&good_agg),
    );

    // Non-mergeable aggregate functions.
    report.record_cert(
        "maintainability: float SUM classified mergeable",
        certify_maintainability(&agg(vec![AggAssign::new(
            gen.fresh(),
            "fs",
            AggregateExpr::sum(col(f)),
        )])),
    );
    report.record_cert(
        "maintainability: AVG classified mergeable",
        certify_maintainability(&agg(vec![AggAssign::new(
            gen.fresh(),
            "a",
            AggregateExpr::avg(col(x)),
        )])),
    );
    report.record_cert(
        "maintainability: COUNT(DISTINCT) classified mergeable",
        certify_maintainability(&agg(vec![AggAssign::new(
            gen.fresh(),
            "d",
            AggregateExpr::count(col(x)).with_distinct(true),
        )])),
    );
    // Computed projection over aggregate outputs.
    let (cid, csum) = (gen.fresh(), gen.fresh());
    let agg_for_proj = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(s.clone()),
        group_by: vec![z],
        aggregates: vec![AggAssign::new(csum, "s", AggregateExpr::sum(col(x)))],
    });
    report.record_cert(
        "maintainability: computed projection over aggregate outputs",
        certify_maintainability(&LogicalPlan::Project(Project {
            input: Box::new(agg_for_proj.clone()),
            exprs: vec![
                ProjExpr::new(gen.fresh(), "z", col(z)),
                ProjExpr::new(cid, "s2", col(csum).add(lit(1i64))),
            ],
        })),
    );
    // Projection dropping the grouping key.
    report.record_cert(
        "maintainability: projection drops the grouping key",
        certify_maintainability(&LogicalPlan::Project(Project {
            input: Box::new(agg_for_proj),
            exprs: vec![ProjExpr::new(gen.fresh(), "s", col(csum))],
        })),
    );
    // Sorted and limited chains do not distribute over appends.
    report.record_cert(
        "maintainability: Sort chain classified append-distributive",
        certify_maintainability(&LogicalPlan::Sort(fusion_plan::Sort {
            input: Box::new(filtered.clone()),
            keys: vec![fusion_plan::SortKey {
                expr: col(x),
                asc: true,
                nulls_first: false,
            }],
        })),
    );
    // Two base tables cannot reproduce the cold interleaving.
    let two_tables = {
        let s2 = fscan(&gen, "u");
        let fields = s
            .schema()
            .fields()
            .iter()
            .map(|fl| Field::new(gen.fresh(), fl.name.clone(), fl.data_type, fl.nullable))
            .collect();
        LogicalPlan::UnionAll(UnionAll {
            inputs: vec![s.clone(), s2],
            fields,
        })
    };
    report.record_cert(
        "maintainability: two-table union classified single-table",
        certify_maintainability(&two_tables),
    );

    // Forged claims against a pristine mergeable aggregate.
    report.record_cert(
        "maintainability: aggregate forged as append-rows",
        check_maintain_claim(&good_agg, &MaintainShape::AppendRows),
    );
    let derived = match certify_maintainability(&good_agg) {
        Ok(super::reuse::ReuseCertificate::Maintain(m)) => Some(m),
        _ => None,
    };
    if let Some(MaintainShape::MergeAggregate {
        arity,
        key_positions,
        agg_positions,
    }) = derived
    {
        // Swap the key onto an aggregate position.
        report.record_cert(
            "maintainability: claim swaps key and aggregate positions",
            check_maintain_claim(
                &good_agg,
                &MaintainShape::MergeAggregate {
                    arity,
                    key_positions: vec![agg_positions[0].0],
                    agg_positions: agg_positions
                        .iter()
                        .enumerate()
                        .map(|(i, &(_, fun))| {
                            if i == 0 {
                                (key_positions[0], fun)
                            } else {
                                (agg_positions[i].0, fun)
                            }
                        })
                        .collect(),
                },
            ),
        );
        // Merge MIN as if it were SUM.
        report.record_cert(
            "maintainability: claim merges MIN with the SUM rule",
            check_maintain_claim(
                &good_agg,
                &MaintainShape::MergeAggregate {
                    arity,
                    key_positions,
                    agg_positions: agg_positions
                        .iter()
                        .map(|&(p, fun)| {
                            if fun == fusion_expr::AggFunc::Min {
                                (p, fusion_expr::AggFunc::Sum)
                            } else {
                                (p, fun)
                            }
                        })
                        .collect(),
                },
            ),
        );
    } else {
        report.outcomes.push(MutationOutcome {
            description: "maintainability: merge shape not derivable for forged-claim pair".into(),
            killed: false,
            detail: String::new(),
        });
    }
}

/// Dependency stamps: canonical form and catalog consistency.
fn stamp_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let t = scan(&gen, "t");
    let u = scan(&gen, "u");
    let fields = t
        .schema()
        .fields()
        .iter()
        .map(|f| Field::new(gen.fresh(), f.name.clone(), f.data_type, f.nullable))
        .collect();
    let plan = LogicalPlan::UnionAll(UnionAll {
        inputs: vec![t, u],
        fields,
    });
    let versions: HashMap<String, u64> = [("t".to_string(), 3u64), ("u".to_string(), 5u64), ("v".to_string(), 1u64)]
        .into_iter()
        .collect();
    let dep = |t: &str, v: u64| (t.to_string(), v);

    report.record_pristine(
        "dep stamps: pristine canonical stamps accepted",
        certify_stamps(&plan, &[dep("t", 3), dep("u", 5)], &versions),
    );
    report.record_cert(
        "dep stamps: stamps out of order",
        certify_stamps(&plan, &[dep("u", 5), dep("t", 3)], &versions),
    );
    report.record_cert(
        "dep stamps: duplicated stamp",
        certify_stamps(&plan, &[dep("t", 3), dep("t", 3), dep("u", 5)], &versions),
    );
    report.record_cert(
        "dep stamps: stamp not catalog-cased",
        certify_stamps(&plan, &[dep("T", 3), dep("u", 5)], &versions),
    );
    report.record_cert(
        "dep stamps: missing stamp for scanned table u",
        certify_stamps(&plan, &[dep("t", 3)], &versions),
    );
    report.record_cert(
        "dep stamps: stale version for t",
        certify_stamps(&plan, &[dep("t", 2), dep("u", 5)], &versions),
    );
    report.record_cert(
        "dep stamps: phantom stamp for unscanned table v",
        certify_stamps(&plan, &[dep("t", 3), dep("u", 5), dep("v", 1)], &versions),
    );
}
