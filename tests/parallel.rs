// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Morsel-driven parallel execution integration tests: result equality
//! across thread counts (fused and baseline, with and without faults),
//! unified typed failure under deadlines / budgets / cancellation, and
//! clean worker teardown when a consumer stops early.
//!
//! Unlike `tests/resilience.rs`, the tables here are *partitioned*
//! (orders into 6 single-row partitions, customers into 3) so the
//! parallel operators actually engage at parallelism > 1.

use std::time::{Duration, Instant};

use fusion_common::{DataType, FusionError, Value};
use fusion_engine::Session;
use fusion_exec::table::TableColumn;
use fusion_exec::{FaultPolicy, TableBuilder};

fn col(name: &str, data_type: DataType, nullable: bool) -> TableColumn {
    TableColumn {
        name: name.into(),
        data_type,
        nullable,
    }
}

/// One orders row: `(id, cust, region, amount)`.
type OrderRow = (i64, Option<i64>, Option<&'static str>, Option<f64>);

/// The engine_sql micro-dataset, partitioned: orders by `id` (width 1 →
/// six partitions), customers by `cid` (width 10 → three partitions).
fn session(parallelism: usize) -> Session {
    let mut s = Session::new();
    s.set_parallelism(parallelism);
    let mut b = TableBuilder::new(
        "orders",
        vec![
            col("id", DataType::Int64, false),
            col("cust", DataType::Int64, true),
            col("region", DataType::Utf8, true),
            col("amount", DataType::Float64, true),
        ],
    )
    .partition_by("id", 1)
    .unwrap();
    let rows: Vec<OrderRow> = vec![
        (1, Some(10), Some("north"), Some(50.0)),
        (2, Some(10), Some("south"), Some(75.0)),
        (3, Some(20), Some("north"), Some(20.0)),
        (4, Some(20), None, Some(90.0)),
        (5, Some(30), Some("east"), None),
        (6, None, Some("north"), Some(10.0)),
    ];
    for (id, cust, region, amount) in rows {
        b.add_row(vec![
            Value::Int64(id),
            cust.map(Value::Int64).unwrap_or(Value::Null),
            region.map(|r| Value::Utf8(r.into())).unwrap_or(Value::Null),
            amount.map(Value::Float64).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    s.register_table(b.build());

    let mut b = TableBuilder::new(
        "customers",
        vec![
            col("cid", DataType::Int64, false),
            col("name", DataType::Utf8, true),
            col("tier", DataType::Int64, true),
        ],
    )
    .partition_by("cid", 10)
    .unwrap();
    for (cid, name, tier) in [(10i64, "ann", 1i64), (20, "bob", 2), (40, "cem", 1)] {
        b.add_row(vec![
            Value::Int64(cid),
            Value::Utf8(name.into()),
            Value::Int64(tier),
        ])
        .unwrap();
    }
    s.register_table(b.build());
    s
}

/// Every result-producing query from `tests/engine_sql.rs` (the same
/// corpus `tests/resilience.rs` runs under fault schedules).
const QUERIES: &[&str] = &[
    "SELECT id, id * 2 + 1 AS d FROM orders WHERE id <= 2 ORDER BY id",
    "SELECT id FROM orders WHERE amount > 0",
    "SELECT id FROM orders WHERE region IS NULL",
    "SELECT id FROM orders WHERE cust IS NOT NULL AND amount IS NOT NULL",
    "SELECT cust, COUNT(*) AS n, SUM(amount) AS total FROM orders \
     WHERE cust IS NOT NULL GROUP BY cust HAVING COUNT(*) > 1 ORDER BY cust",
    "SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE id > 100",
    "SELECT COUNT(DISTINCT region) AS r FROM orders",
    "SELECT COUNT(*) FILTER (WHERE region = 'north') AS north, COUNT(*) AS all_rows FROM orders",
    "SELECT id, name FROM orders JOIN customers ON cust = cid ORDER BY id",
    "SELECT id, name FROM orders LEFT JOIN customers ON cust = cid ORDER BY id",
    "SELECT id, CASE WHEN amount BETWEEN 0 AND 50 THEN 'small' \
                     WHEN amount > 50 THEN 'big' ELSE 'unknown' END AS bucket \
     FROM orders WHERE region IN ('north', 'east') ORDER BY id",
    "SELECT DISTINCT region FROM orders WHERE region IS NOT NULL",
    "SELECT id FROM orders WHERE region = 'north' \
     UNION ALL SELECT id FROM orders WHERE amount > 40",
    "SELECT t.r, t.n FROM (SELECT region AS r, COUNT(*) AS n \
                           FROM orders GROUP BY region) t WHERE t.n > 1 ORDER BY t.r",
    "SELECT id FROM orders WHERE cust IN (SELECT cid FROM customers WHERE tier = 1)",
    "SELECT id FROM orders WHERE amount > (SELECT AVG(amount) FROM orders)",
    "SELECT id FROM orders o1 \
     WHERE o1.amount > (SELECT AVG(o2.amount) FROM orders o2 WHERE o2.cust = o1.cust)",
    "SELECT id, amount, AVG(amount) OVER (PARTITION BY cust) AS a \
     FROM orders WHERE cust IS NOT NULL ORDER BY id",
    "SELECT id, amount FROM orders WHERE amount IS NOT NULL ORDER BY amount DESC LIMIT 2",
    "WITH north AS (SELECT id, amount FROM orders WHERE region = 'north') \
     SELECT a.id FROM north a, north b WHERE a.amount < b.amount ORDER BY a.id",
    "SELECT 'it''s' AS s FROM orders WHERE id = 1",
    "SELECT CAST(amount AS BIGINT) AS a FROM orders WHERE id = 2",
    "SELECT o.id, c.cid FROM orders o, customers c WHERE o.id = 1",
    "SELECT o.* FROM orders o WHERE o.id = 1",
    "SELECT id % 2 AS parity, COUNT(*) AS n FROM orders GROUP BY id % 2 ORDER BY parity",
    "SELECT id, COALESCE(region, 'none') AS r, ABS(id - 4) AS d FROM orders ORDER BY id",
];

const THREADS: &[usize] = &[1, 2, 4, 8];

/// Acceptance: fused and baseline agree at every thread count, and every
/// thread count reproduces the sequential answer exactly. The dataset's
/// float amounts are dyadic, so even float sums are bit-identical between
/// the sequential accumulation and the partition-order partial merge.
#[test]
fn fused_equals_baseline_at_every_thread_count() {
    for sql in QUERIES {
        let expected = session(1)
            .sql(sql)
            .unwrap_or_else(|e| panic!("sequential run failed: {e}\n{sql}"))
            .sorted_rows();
        for &t in THREADS {
            for fused in [true, false] {
                let mut s = session(t);
                s.set_fusion_enabled(fused);
                let r = s
                    .sql(sql)
                    .unwrap_or_else(|e| panic!("threads={t} fused={fused}: {e}\n{sql}"));
                assert_eq!(
                    r.sorted_rows(),
                    expected,
                    "threads={t} fused={fused}: {sql}"
                );
            }
        }
    }
}

/// Acceptance: per-operator row counts in the execution profile are
/// bit-identical across thread counts, fused and baseline. Partition
/// spans are merged in partition-index order and every non-LIMIT query
/// drains its input fully, so `(op_id, label, rows_in, rows_out)` must
/// not depend on how morsels were interleaved. LIMIT queries are
/// excluded: an early stop reaches the scan at a thread-dependent row.
#[test]
fn profile_row_counts_are_thread_count_invariant() {
    for sql in QUERIES {
        if sql.contains("LIMIT") {
            continue;
        }
        for fused in [true, false] {
            let mut s = session(1);
            s.set_fusion_enabled(fused);
            let expected = s
                .sql(sql)
                .unwrap()
                .profile
                .expect("every execution is profiled")
                .row_counts();
            for &t in THREADS {
                let mut s = session(t);
                s.set_fusion_enabled(fused);
                let counts = s
                    .sql(sql)
                    .unwrap()
                    .profile
                    .expect("every execution is profiled")
                    .row_counts();
                assert_eq!(counts, expected, "threads={t} fused={fused}: {sql}");
            }
        }
    }
}

/// The corpus under a seeded transient-fault schedule at every thread
/// count: retries absorb the faults on every worker and the answers stay
/// byte-identical to the fault-free sequential run. Fault injection
/// hashes (table, partition, attempt), so the schedule is the same
/// regardless of which worker claims a partition.
#[test]
fn seeded_fault_schedule_is_thread_count_invariant() {
    let mut total_retries = 0u64;
    let mut total_faults = 0u64;
    for sql in QUERIES {
        let expected = session(1).sql(sql).unwrap().sorted_rows();
        for &t in THREADS {
            for fused in [true, false] {
                let mut s = session(t);
                s.set_fusion_enabled(fused);
                s.set_fault_policy(FaultPolicy::transient(9, 0.25));
                let r = s.sql(sql).unwrap_or_else(|e| {
                    panic!("threads={t} fused={fused} under faults: {e}\n{sql}")
                });
                assert_eq!(
                    r.sorted_rows(),
                    expected,
                    "threads={t} fused={fused}: {sql}"
                );
                total_retries += r.metrics.retries;
                total_faults += r.metrics.faults_injected;
            }
        }
    }
    assert!(total_retries > 0, "seed 9 must force retries");
    assert_eq!(
        total_retries, total_faults,
        "every injected fault under seed 9 is recovered by one retry"
    );
}

/// Parallel runs actually engage the parallel operators and meter them:
/// every partition becomes a morsel, and the parallel region records
/// wall and per-worker busy time.
#[test]
fn parallel_metrics_are_recorded() {
    let s = session(4);
    let r = s
        .sql("SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust ORDER BY cust")
        .unwrap();
    assert!(
        r.metrics.morsels_executed >= 6,
        "all six orders partitions must run as morsels, got {}",
        r.metrics.morsels_executed
    );
    assert!(r.metrics.parallel_wall_nanos > 0);
    assert!(r.metrics.parallel_cpu_nanos > 0);

    // Sequential runs never touch the parallel counters.
    let r = session(1)
        .sql("SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust ORDER BY cust")
        .unwrap();
    assert_eq!(r.metrics.morsels_executed, 0);
    assert_eq!(r.metrics.parallel_wall_nanos, 0);
}

/// Vectorized scan filtering rejects rows column-at-a-time before any
/// row is materialized, and reports how many it dropped.
#[test]
fn vectorized_filter_counts_rejected_rows() {
    let s = session(4);
    let r = s.sql("SELECT id FROM orders WHERE region = 'north'").unwrap();
    assert_eq!(r.rows.len(), 3);
    // Six rows scanned, three rejected by the vectorized `region='north'`
    // pass (one NULL region row among them).
    assert_eq!(r.metrics.rows_filtered_vectorized, 3);
}

/// A deadline hit while several workers hold in-flight morsels must
/// abort all of them and surface exactly one typed error — promptly,
/// with every worker joined (a hang here would trip the outer timer).
#[test]
fn deadline_under_parallelism_aborts_all_workers() {
    let started = Instant::now();
    let mut s = session(4);
    s.set_fault_policy(FaultPolicy::default().with_read_latency(Duration::from_millis(20)));
    s.set_timeout(Some(Duration::from_millis(5)));
    match s.sql("SELECT id, region FROM orders") {
        Err(FusionError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "workers must abort and join promptly after the deadline"
    );
}

/// An enforced memory budget crossed by a parallel aggregate build
/// surfaces the typed ResourceExhausted error, not a hang or panic.
#[test]
fn budget_exhaustion_under_parallelism_is_typed() {
    let mut s = session(4);
    s.set_enforced_memory_budget(Some(8));
    match s.sql("SELECT cust, SUM(amount) AS t FROM orders GROUP BY cust") {
        Err(FusionError::ResourceExhausted { budget, .. }) => assert_eq!(budget, 8),
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

/// A cancelled session fails parallel queries with the typed Cancelled
/// error without spawning runaway workers.
#[test]
fn cancellation_under_parallelism_is_typed() {
    let s = session(4);
    s.cancel_token().cancel();
    match s.sql("SELECT id FROM orders") {
        Err(FusionError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

/// A LIMIT that stops pulling mid-stream drops the gather operator while
/// workers may still be blocked on the bounded channel; teardown must
/// join them all without hanging.
#[test]
fn early_limit_drops_workers_cleanly() {
    let started = Instant::now();
    for _ in 0..16 {
        let s = session(8);
        let r = s.sql("SELECT id FROM orders LIMIT 1").unwrap();
        assert_eq!(r.rows.len(), 1);
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "repeated early-drop queries must not leak or hang workers"
    );
}

/// Parallelism above the partition count is clamped to one worker per
/// morsel and still correct.
#[test]
fn parallelism_above_partition_count_is_clamped() {
    let expected = session(1).sql("SELECT id FROM orders").unwrap().sorted_rows();
    let s = session(64);
    let r = s.sql("SELECT id FROM orders").unwrap();
    assert_eq!(r.sorted_rows(), expected);
    assert_eq!(r.metrics.morsels_executed, 6);
}
