//! Semi-join rewrites enabling the Q95 pattern (§V.D).
//!
//! The paper simplifies Q95 by the interplay of fusion with two existing
//! engine rules:
//!
//! 1. [`SemiToInnerDistinct`] — transform a semi join into an inner join
//!    over a DISTINCT of the right side's key. Gated: only applied when a
//!    *sibling* semi join exists whose right side scans overlapping base
//!    tables (the "local heuristics based on statistics and plan
//!    properties" of §IV.E) so the transform sets up a fusion rather than
//!    firing indiscriminately.
//! 2. [`DistinctPushdown`] — push a DISTINCT below a join when the
//!    distinct columns and the join columns agree, exposing duplicated
//!    `DISTINCT key FROM common_expr` subplans.
//!
//! After these two rules, `JoinOnKeys` fuses the duplicated DISTINCTs,
//! removing one evaluation of the expensive common expression.

use std::collections::HashSet;

use fusion_common::ColumnId;
use fusion_expr::{split_conjuncts, BinaryOp, Expr};
use fusion_plan::{Aggregate, Join, JoinType, LogicalPlan, Project, ProjExpr};

use super::Rule;
use crate::fuse::FuseContext;

pub struct SemiToInnerDistinct;

impl Rule for SemiToInnerDistinct {
    fn name(&self) -> &'static str {
        "SemiToInnerDistinct"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        // Match a stack of >= 2 semi joins (possibly interleaved with
        // other semi joins) whose right sides share base tables.
        let join = match plan {
            LogicalPlan::Join(j) if j.join_type == JoinType::Semi => j,
            _ => return None,
        };
        if !has_related_sibling_semi(join) {
            return None;
        }
        // Convert the whole stack in one shot so the next phase sees both
        // inner joins at once.
        Some(convert_stack(plan))
    }
}

/// Does the left subtree contain another semi join whose right side scans
/// a base table also scanned by this semi join's right side?
fn has_related_sibling_semi(join: &Join) -> bool {
    let my_tables: HashSet<String> = join.right.scanned_tables().into_iter().collect();
    let mut found = false;
    join.left.visit(&mut |node| {
        if let LogicalPlan::Join(j) = node {
            if j.join_type == JoinType::Semi {
                let tables = j.right.scanned_tables();
                if tables.iter().any(|t| my_tables.contains(t)) {
                    found = true;
                }
            }
        }
    });
    found
}

/// Convert every semi join in the top-of-plan stack into
/// `Project_left(Inner(left, Distinct_k(Project_k(right)), cond))`.
fn convert_stack(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Join(j) if j.join_type == JoinType::Semi => {
            let left = convert_stack(&j.left);
            match convert_one(j, left.clone()) {
                Some(converted) => converted,
                None => LogicalPlan::Join(Join {
                    left: Box::new(left),
                    right: j.right.clone(),
                    join_type: JoinType::Semi,
                    condition: j.condition.clone(),
                }),
            }
        }
        other => other.clone(),
    }
}

/// Semi(left, Z, AND_m lhs_m = rhs_m) →
/// Project_{left cols}(Inner(left, Distinct_{rhs}(Project_{rhs}(Z)), cond)).
/// Sound because the distinct right side matches each left row at most
/// once per key combination.
fn convert_one(j: &Join, left: LogicalPlan) -> Option<LogicalPlan> {
    let left_ids: HashSet<ColumnId> = left.schema().ids().into_iter().collect();
    let z_schema = j.right.schema();
    let mut rhs_cols: Vec<ColumnId> = Vec::new();
    for c in split_conjuncts(&j.condition) {
        let (l, r) = match &c {
            Expr::Binary {
                op: BinaryOp::Eq,
                left: l,
                right: r,
            } => (l.as_ref(), r.as_ref()),
            _ => return None,
        };
        let z_col = match (l, r) {
            (_, Expr::Column(rc))
                if z_schema.contains(*rc)
                    && l.columns().iter().all(|c| left_ids.contains(c)) =>
            {
                *rc
            }
            (Expr::Column(lc), _)
                if z_schema.contains(*lc)
                    && r.columns().iter().all(|c| left_ids.contains(c)) =>
            {
                *lc
            }
            _ => return None,
        };
        if !rhs_cols.contains(&z_col) {
            rhs_cols.push(z_col);
        }
    }
    if rhs_cols.is_empty() {
        return None;
    }

    let distinct = LogicalPlan::Aggregate(Aggregate {
        input: j.right.clone(),
        group_by: rhs_cols,
        aggregates: vec![],
    });
    let inner = LogicalPlan::Join(Join {
        left: Box::new(left.clone()),
        right: Box::new(distinct),
        join_type: JoinType::Inner,
        condition: j.condition.clone(),
    });
    // Restore the semi join's output (left columns only).
    let exprs: Vec<ProjExpr> = left
        .schema()
        .fields()
        .iter()
        .map(ProjExpr::passthrough)
        .collect();
    Some(LogicalPlan::Project(Project {
        input: Box::new(inner),
        exprs,
    }))
}

/// Push a DISTINCT below an inner join when the distinct columns are
/// exactly join-key columns: `Distinct_{a,b}(A ⨝_{a=b} B)` becomes
/// `Distinct_a(A) ⨝_{a=b} Distinct_b(B)`.
pub struct DistinctPushdown;

impl Rule for DistinctPushdown {
    fn name(&self) -> &'static str {
        "DistinctPushdown"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        let agg = match plan {
            LogicalPlan::Aggregate(a) if a.is_distinct() && !a.group_by.is_empty() => a,
            _ => return None,
        };
        // Peel bare-column projections (CTE-style renames), tracking the
        // substitution from projected ids to their source columns.
        let mut subst: fusion_expr::ColumnMap = Default::default();
        let mut node = agg.input.as_ref();
        loop {
            match node {
                LogicalPlan::Project(p)
                    if p.exprs
                        .iter()
                        .all(|pe| matches!(pe.expr, Expr::Column(_))) =>
                {
                    for pe in &p.exprs {
                        if let Expr::Column(src) = pe.expr {
                            let resolved = *subst.get(&src).unwrap_or(&src);
                            subst.insert(pe.id, resolved);
                        }
                    }
                    node = p.input.as_ref();
                }
                _ => break,
            }
        }
        let join = match node {
            LogicalPlan::Join(j) if j.join_type == JoinType::Inner => j,
            _ => return None,
        };
        let group_sources: Vec<ColumnId> = agg
            .group_by
            .iter()
            .map(|g| *subst.get(g).unwrap_or(g))
            .collect();
        let left_schema = join.left.schema();
        let right_schema = join.right.schema();

        // The join condition must be pure column equalities.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for c in split_conjuncts(&join.condition) {
            match &c {
                Expr::Binary {
                    op: BinaryOp::Eq,
                    left,
                    right,
                } => match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(a), Expr::Column(b))
                        if left_schema.contains(*a) && right_schema.contains(*b) =>
                    {
                        left_keys.push(*a);
                        right_keys.push(*b);
                    }
                    (Expr::Column(b), Expr::Column(a))
                        if left_schema.contains(*a) && right_schema.contains(*b) =>
                    {
                        left_keys.push(*a);
                        right_keys.push(*b);
                    }
                    _ => return None,
                },
                _ => return None,
            }
        }
        // Every distinct column must resolve to one of the join keys.
        let key_set: HashSet<ColumnId> = left_keys
            .iter()
            .chain(right_keys.iter())
            .copied()
            .collect();
        if !group_sources.iter().all(|g| key_set.contains(g)) {
            return None;
        }

        let new_left = LogicalPlan::Aggregate(Aggregate {
            input: join.left.clone(),
            group_by: left_keys,
            aggregates: vec![],
        });
        let new_right = LogicalPlan::Aggregate(Aggregate {
            input: join.right.clone(),
            group_by: right_keys,
            aggregates: vec![],
        });
        let new_join = LogicalPlan::Join(Join {
            left: Box::new(new_left),
            right: Box::new(new_right),
            join_type: JoinType::Inner,
            condition: join.condition.clone(),
        });
        // Restore the distinct's output columns (through the peeled
        // projections' substitution).
        let exprs: Vec<ProjExpr> = LogicalPlan::Aggregate(agg.clone())
            .schema()
            .fields()
            .iter()
            .zip(&group_sources)
            .map(|(f, src)| ProjExpr::new(f.id, f.name.clone(), Expr::Column(*src)))
            .collect();
        Some(LogicalPlan::Project(Project {
            input: Box::new(new_join),
            exprs,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::join_on_keys::JoinOnKeys;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen, Value};
    use fusion_exec::table::TableColumn;
    use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
    use fusion_expr::col;
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn order_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("order_no", DataType::Int64, true),
            ColumnDef::new("wh", DataType::Int64, true),
        ]
    }

    fn returns_cols() -> Vec<ColumnDef> {
        vec![ColumnDef::new("ret_order_no", DataType::Int64, true)]
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut b = TableBuilder::new(
            "web_sales",
            vec![
                TableColumn {
                    name: "order_no".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "wh".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
            ],
        );
        for (o, w) in [(1i64, 1i64), (1, 2), (2, 1), (3, 1), (3, 3), (4, 4)] {
            b.add_row(vec![Value::Int64(o), Value::Int64(w)]).unwrap();
        }
        c.register(b.build());
        let mut b = TableBuilder::new(
            "web_returns",
            vec![TableColumn {
                name: "ret_order_no".into(),
                data_type: DataType::Int64,
                nullable: true,
            }],
        );
        for o in [1i64, 4] {
            b.add_row(vec![Value::Int64(o)]).unwrap();
        }
        c.register(b.build());
        c
    }

    /// ws_wh: orders shipped from more than one warehouse (self join).
    fn ws_wh(gen: &IdGen) -> LogicalPlan {
        let a = PlanBuilder::scan(gen, "web_sales", &order_cols());
        let (o1, w1) = (a.col("order_no").unwrap(), a.col("wh").unwrap());
        let b = PlanBuilder::scan(gen, "web_sales", &order_cols());
        let (o2, w2) = (b.col("order_no").unwrap(), b.col("wh").unwrap());
        a.join(
            b.build(),
            JoinType::Inner,
            col(o1).eq_to(col(o2)).and(col(w1).not_eq_to(col(w2))),
        )
        .project(vec![("ws_wh_number", col(o1))])
        .build()
    }

    /// The simplified Q95 pattern: two IN-subqueries (semi joins) over the
    /// expensive common expression ws_wh; the second one additionally
    /// joins web_returns.
    fn q95_like(gen: &IdGen) -> LogicalPlan {
        let w = PlanBuilder::scan(gen, "web_sales", &order_cols());
        let won = w.col("order_no").unwrap();

        let sub1 = ws_wh(gen);
        let sub1_k = sub1.schema().field(0).id;

        let sub2_inner = ws_wh(gen);
        let sub2_k = sub2_inner.schema().field(0).id;
        let r = PlanBuilder::scan(gen, "web_returns", &returns_cols());
        let rk = r.col("ret_order_no").unwrap();
        let sub2 = PlanBuilder::from_plan(gen, sub2_inner)
            .join(r.build(), JoinType::Inner, col(sub2_k).eq_to(col(rk)))
            .project(vec![("wr_order_number", col(rk))])
            .build();
        let sub2_out = sub2.schema().field(0).id;

        w.join(sub1, JoinType::Semi, col(won).eq_to(col(sub1_k)))
            .join(sub2, JoinType::Semi, col(won).eq_to(col(sub2_out)))
            .build()
    }

    #[test]
    fn semi_stack_converts_when_related() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let plan = q95_like(&gen);
        plan.validate().unwrap();
        let converted = apply_everywhere(&SemiToInnerDistinct, &plan, &ctx)
            .expect("gated conversion should fire");
        converted.validate().unwrap();
        // No semi joins remain in the converted stack.
        assert!(!converted.any(&|p| matches!(
            p,
            LogicalPlan::Join(Join {
                join_type: JoinType::Semi,
                ..
            })
        )));
        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&converted, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        // Orders 1 and 4: multi-warehouse AND returned... order 4 is not
        // multi-warehouse, so only order 1 (two base rows).
        assert_eq!(base.rows.len(), 2);
    }

    #[test]
    fn lone_semi_join_not_converted() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let w = PlanBuilder::scan(&gen, "web_sales", &order_cols());
        let won = w.col("order_no").unwrap();
        let sub = ws_wh(&gen);
        let k = sub.schema().field(0).id;
        let plan = w.join(sub, JoinType::Semi, col(won).eq_to(col(k))).build();
        assert!(apply_everywhere(&SemiToInnerDistinct, &plan, &ctx).is_none());
    }

    #[test]
    fn distinct_pushes_below_join() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "web_sales", &order_cols());
        let o1 = a.col("order_no").unwrap();
        let r = PlanBuilder::scan(&gen, "web_returns", &returns_cols());
        let rk = r.col("ret_order_no").unwrap();
        let plan = a
            .join(r.build(), JoinType::Inner, col(o1).eq_to(col(rk)))
            .distinct_on(vec![rk])
            .build();
        plan.validate().unwrap();

        let pushed = apply_everywhere(&DistinctPushdown, &plan, &ctx)
            .expect("distinct pushdown should fire");
        pushed.validate().unwrap();
        // Both sides now deduplicate before the join.
        let mut distinct_count = 0;
        pushed.visit(&mut |p| {
            if matches!(p, LogicalPlan::Aggregate(a) if a.is_distinct()) {
                distinct_count += 1;
            }
        });
        assert_eq!(distinct_count, 2);

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&pushed, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        // Returned orders present in web_sales: 1 and 4.
        assert_eq!(base.rows.len(), 2);
    }

    /// The full Q95 chain: conversion, pushdown, then JoinOnKeys dedup
    /// eliminates one instance of the expensive ws_wh self-join.
    #[test]
    fn full_q95_chain_removes_duplicate_common_expression() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let plan = q95_like(&gen);
        // ws_wh scans web_sales twice; two copies + probe = 5 web_sales.
        assert_eq!(
            plan.scanned_tables()
                .iter()
                .filter(|t| *t == "web_sales")
                .count(),
            5
        );

        let mut current = plan.clone();
        let rules: Vec<Box<dyn Rule>> = vec![
            Box::new(SemiToInnerDistinct),
            Box::new(DistinctPushdown),
            Box::new(JoinOnKeys),
        ];
        let mut changed = true;
        let mut fuel = 20;
        while changed && fuel > 0 {
            changed = false;
            for r in &rules {
                if let Some(next) = apply_everywhere(r.as_ref(), &current, &ctx) {
                    current = next;
                    changed = true;
                }
            }
            fuel -= 1;
        }
        current.validate().unwrap();
        // One ws_wh instance eliminated: 5 - 2 = 3 web_sales scans.
        assert_eq!(
            current
                .scanned_tables()
                .iter()
                .filter(|t| *t == "web_sales")
                .count(),
            3,
            "{}",
            current.display()
        );

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&current, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
    }
}
