//! Per-tenant governance: caps, budgets, weights, and metrics isolation.

use std::sync::Arc;

use fusion_exec::metrics::MetricsSnapshot;
use fusion_exec::ExecMetrics;

/// Governance knobs for one tenant (`0` / `None` = unlimited throughout).
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Cap on queries parked in the admission queue; crossing it rejects
    /// the submission with `FUSION_ADMISSION_REJECTED`.
    pub max_queued: usize,
    /// Cap on the tenant's queries executing concurrently — enforced as
    /// the tenant's maximum slots per dispatched window (the dispatcher
    /// runs one window at a time, so window share *is* in-flight share).
    pub max_inflight: usize,
    /// Weighted-fair window share relative to other tenants (minimum 1).
    /// A weight-2 tenant gets up to twice the window slots of a weight-1
    /// tenant under contention; round-robin packing still guarantees
    /// every backlogged tenant at least one slot per window.
    pub weight: usize,
    /// Admission-level memory budget in bytes: each admitted query holds
    /// a `per_query_memory_cost` reservation against it from admission
    /// until its response is routed.
    pub memory_budget: Option<usize>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            max_queued: 0,
            max_inflight: 0,
            weight: 1,
            memory_budget: None,
        }
    }
}

/// Live per-tenant state, keyed by `TenantId` in the service.
pub(crate) struct TenantState {
    pub config: TenantConfig,
    /// Queries parked in the admission queue.
    pub queued: usize,
    /// Queries inside the currently-executing window.
    pub inflight: usize,
    /// The tenant's governance sink: admission counters, queue-wait
    /// times, and budget reservations. Never mixed with another
    /// tenant's numbers.
    pub metrics: Arc<ExecMetrics>,
    /// Execution counters absorbed from this tenant's own batch slots
    /// (each slot's metrics are per-query deltas).
    pub cumulative: MetricsSnapshot,
    /// This tenant's execution delta from the most recent window that
    /// carried its queries.
    pub last_window: Option<MetricsSnapshot>,
}

impl TenantState {
    pub fn new(config: TenantConfig) -> Self {
        TenantState {
            config,
            queued: 0,
            inflight: 0,
            metrics: ExecMetrics::new(),
            cumulative: MetricsSnapshot::default(),
            last_window: None,
        }
    }
}
