//! The Fuse contract checker.
//!
//! `Fuse(P1, P2) → (P, M, L, R)` promises (paper §III.A):
//!
//! 1. `M` is total over `P2`'s schema and type-preserving: every output
//!    column of `P2` maps to a column `P` actually produces, of a
//!    compatible type;
//! 2. `P1`'s columns appear in `P` under their own identities (the left
//!    side keeps its column ids), again type-compatibly;
//! 3. the compensating filters `L` and `R` reference only `P`'s outputs
//!    and are boolean-typed over `P`'s schema;
//! 4. filtering `P` by `L` (resp. `M∘R`) reconstructs `P1` (resp. `P2`):
//!    for filter-rooted fusions the original predicate must be *implied*
//!    by the compensation conjoined with the fused predicate, and for
//!    aggregate-rooted fusions every original masked aggregate must
//!    reappear with the same function/argument and a mask at least as
//!    strict as the original.
//!
//! Checks 1–3 are exact. Check 4 is a sound approximation built on the
//! engine's expression normalizer: a reconstruction obligation is
//! discharged when each conjunct of the original predicate/mask is
//! implied by the conjunct set of the fused side (set membership after
//! normalization, plus the absorption rule `A ⊨ A ∨ B` that
//! simplification introduces). A legitimate fusion always passes because
//! the fusion paths construct `L`/`R`/masks by conjoining exactly these
//! conjuncts; a corrupted one (swapped or widened compensation, widened
//! mask, retyped aggregate) loses a conjunct and is flagged.

use std::collections::BTreeSet;

use fusion_common::DataType;
use fusion_expr::{normalize, simplify_filter, split_conjuncts, split_disjuncts, Expr};
use fusion_plan::LogicalPlan;

use super::{AnalysisCode, Violation};
use crate::fuse::Fused;

/// Check a raw `Fuse` result against the contract. Empty result = OK.
pub fn check_fuse_contract(p1: &LogicalPlan, p2: &LogicalPlan, f: &Fused) -> Vec<Violation> {
    let mut v = Vec::new();
    let fused_schema = f.plan.schema();
    let p1_schema = p1.schema();
    let p2_schema = p2.schema();

    // 1. M total and type-preserving over P2's schema.
    for f2 in p2_schema.fields() {
        let target = f.mapped_id(f2.id);
        match fused_schema.field_by_id(target) {
            None => v.push(Violation::new(
                AnalysisCode::MappingNotTotal,
                format!(
                    "P2 column {}#{} maps to #{} which the fused plan does not produce",
                    f2.name, f2.id.0, target.0
                ),
            )),
            Some(ff) if !types_compatible(f2.data_type, ff.data_type) => {
                v.push(Violation::new(
                    AnalysisCode::MappingType,
                    format!(
                        "P2 column {}#{} ({:?}) maps to #{} of incompatible type {:?}",
                        f2.name, f2.id.0, f2.data_type, target.0, ff.data_type
                    ),
                ));
            }
            Some(_) => {}
        }
    }

    // 2. P1's columns survive under their own identities.
    for f1 in p1_schema.fields() {
        match fused_schema.field_by_id(f1.id) {
            None => v.push(Violation::new(
                AnalysisCode::ReconstructLeft,
                format!(
                    "P1 column {}#{} is missing from the fused plan",
                    f1.name, f1.id.0
                ),
            )),
            Some(ff) if !types_compatible(f1.data_type, ff.data_type) => {
                v.push(Violation::new(
                    AnalysisCode::ReconstructLeft,
                    format!(
                        "P1 column {}#{} changed type {:?} -> {:?} in the fused plan",
                        f1.name, f1.id.0, f1.data_type, ff.data_type
                    ),
                ));
            }
            Some(_) => {}
        }
    }

    // 3. L and R reference only P's outputs and are boolean.
    for (side, comp) in [("L", &f.left), ("R", &f.right)] {
        for c in comp.columns() {
            if !fused_schema.contains(c) {
                v.push(Violation::new(
                    AnalysisCode::CompensationRefs,
                    format!(
                        "compensation {side} references column #{} outside the fused schema",
                        c.0
                    ),
                ));
            }
        }
        match comp.data_type(&fused_schema) {
            Ok(DataType::Boolean) => {}
            Ok(other) => v.push(Violation::new(
                AnalysisCode::CompensationType,
                format!("compensation {side} has type {other:?}, expected Boolean"),
            )),
            // Unknown-column type errors are already reported above; an
            // otherwise untypable compensation is still a violation.
            Err(e) => {
                if comp.columns().iter().all(|c| fused_schema.contains(*c)) {
                    v.push(Violation::new(
                        AnalysisCode::CompensationType,
                        format!("compensation {side} does not type-check: {e}"),
                    ));
                }
            }
        }
    }

    // 4a. Filter-rooted reconstruction: C1 ⊑ L ∧ P.predicate and
    //     M(C2) ⊑ R ∧ P.predicate.
    if let LogicalPlan::Filter(pf) = &f.plan {
        if let LogicalPlan::Filter(f1) = p1 {
            check_direction("L", &f1.predicate, &f.left, &pf.predicate, &mut v);
        }
        if let LogicalPlan::Filter(f2) = p2 {
            check_direction("R", &f.map(&f2.predicate), &f.right, &pf.predicate, &mut v);
        }
    }

    // 4b. Aggregate-rooted reconstruction: keys, functions, arguments and
    //     mask discipline.
    if let LogicalPlan::Aggregate(ga) = &f.plan {
        if let LogicalPlan::Aggregate(g1) = p1 {
            check_aggregate_side("P1", g1, None, ga, &mut v);
        }
        if let LogicalPlan::Aggregate(g2) = p2 {
            check_aggregate_side("P2", g2, Some(f), ga, &mut v);
        }
    }

    v
}

/// Same relaxation as structural validation: numeric widening is allowed.
pub(crate) fn types_compatible(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

/// The normalized, non-trivial conjuncts of a filter-position predicate.
/// `None` means the predicate is provably FALSE (the side selects no rows,
/// so any reconstruction obligation is vacuous).
pub(crate) fn conjunct_exprs(e: &Expr) -> Option<Vec<Expr>> {
    let n = normalize(&simplify_filter(e));
    if n.is_false_literal() {
        return None;
    }
    Some(
        split_conjuncts(&n)
            .into_iter()
            .filter(|c| !c.is_true_literal())
            .collect(),
    )
}

/// Whether `available ⊨ target` under the approximations the simplifier
/// itself uses: exact membership, or (absorption) the target is a
/// disjunction one of whose disjuncts is fully available.
pub(crate) fn implied(target: &Expr, available: &BTreeSet<String>) -> bool {
    if available.contains(&target.to_string()) {
        return true;
    }
    let disjuncts = split_disjuncts(target);
    disjuncts.len() >= 2
        && disjuncts.iter().any(|d| {
            split_conjuncts(d)
                .iter()
                .all(|dc| available.contains(&dc.to_string()))
        })
}

/// Require every conjunct of `original` to be implied by
/// `comp ∧ fused_pred`.
pub(crate) fn check_direction(
    side: &str,
    original: &Expr,
    comp: &Expr,
    fused_pred: &Expr,
    v: &mut Vec<Violation>,
) {
    let Some(targets) = conjunct_exprs(original) else {
        return; // original side provably empty
    };
    let Some(avail_exprs) = conjunct_exprs(&comp.clone().and(fused_pred.clone())) else {
        return; // compensated side provably empty: selects ⊆ ∅ trivially
    };
    let available: BTreeSet<String> = avail_exprs.iter().map(|c| c.to_string()).collect();
    for t in targets {
        if !implied(&t, &available) {
            v.push(Violation::new(
                AnalysisCode::Direction,
                format!(
                    "compensation {side} does not reconstruct the original filter: \
                     conjunct `{t}` is not implied by `{comp} AND {fused_pred}`"
                ),
            ));
        }
    }
}

/// Check one original GroupBy against the fused GroupBy: grouping keys
/// must survive (left: same ids; right: modulo `M`), and each original
/// masked aggregate must reappear with the same function, argument and a
/// mask at least as strict.
pub(crate) fn check_aggregate_side(
    side: &str,
    orig: &fusion_plan::Aggregate,
    map_through: Option<&Fused>,
    fused: &fusion_plan::Aggregate,
    v: &mut Vec<Violation>,
) {
    let fused_groups: BTreeSet<_> = fused.group_by.iter().copied().collect();
    let remap = |id| match map_through {
        Some(fu) => fu.mapped_id(id),
        None => id,
    };
    for k in &orig.group_by {
        if !fused_groups.contains(&remap(*k)) {
            v.push(Violation::new(
                AnalysisCode::Keys,
                format!(
                    "{side} grouping key #{} (fused #{}) is not a grouping key of the fused GroupBy",
                    k.0,
                    remap(*k).0
                ),
            ));
        }
    }
    if map_through.is_none() && fused.group_by.len() != orig.group_by.len() {
        v.push(Violation::new(
            AnalysisCode::Keys,
            format!(
                "fused GroupBy has {} grouping keys, P1 has {}",
                fused.group_by.len(),
                orig.group_by.len()
            ),
        ));
    }

    // Conjuncts of the filter (if any) directly under the fused GroupBy:
    // an original filter conjunct may be discharged there instead of in
    // the masks.
    let spine: BTreeSet<String> = match fused.input.as_ref() {
        LogicalPlan::Filter(ff) => conjunct_exprs(&ff.predicate)
            .unwrap_or_default()
            .iter()
            .map(|c| c.to_string())
            .collect(),
        _ => BTreeSet::new(),
    };

    let mut mask_sets: Vec<BTreeSet<String>> = Vec::new();
    for a in &orig.aggregates {
        let target_id = remap(a.id);
        let Some(fa) = fused.aggregates.iter().find(|fa| fa.id == target_id) else {
            // Missing output ids are already reported by the schema
            // reconstruction checks.
            continue;
        };
        if fa.agg.func != a.agg.func {
            v.push(Violation::new(
                AnalysisCode::Aggregate,
                format!(
                    "{side} aggregate {}#{} changed function {} -> {}",
                    a.name, a.id.0, a.agg.func, fa.agg.func
                ),
            ));
        }
        if fa.agg.distinct != a.agg.distinct {
            v.push(Violation::new(
                AnalysisCode::Aggregate,
                format!(
                    "{side} aggregate {}#{} changed DISTINCT {} -> {}",
                    a.name, a.id.0, a.agg.distinct, fa.agg.distinct
                ),
            ));
        }
        let orig_arg = a.agg.arg.as_ref().map(|e| match map_through {
            Some(fu) => fu.map(e),
            None => e.clone(),
        });
        match (&orig_arg, &fa.agg.arg) {
            (None, None) => {}
            (Some(oa), Some(na)) if fusion_expr::equiv(oa, na) => {}
            _ => v.push(Violation::new(
                AnalysisCode::Aggregate,
                format!(
                    "{side} aggregate {}#{} argument changed under fusion",
                    a.name, a.id.0
                ),
            )),
        }
        // Mask discipline: the fused mask must keep every conjunct of the
        // original mask (it may only get stricter).
        let orig_mask = match map_through {
            Some(fu) => fu.map(&a.agg.mask),
            None => a.agg.mask.clone(),
        };
        if let (Some(targets), Some(avail_exprs)) =
            (conjunct_exprs(&orig_mask), conjunct_exprs(&fa.agg.mask))
        {
            let available: BTreeSet<String> =
                avail_exprs.iter().map(|c| c.to_string()).collect();
            for t in targets {
                if !implied(&t, &available) {
                    v.push(Violation::new(
                        AnalysisCode::Mask,
                        format!(
                            "{side} aggregate {}#{} lost mask conjunct `{t}` \
                             (fused mask `{}`)",
                            a.name, a.id.0, fa.agg.mask
                        ),
                    ));
                }
            }
            mask_sets.push(available);
        }
    }

    // Scalar aggregates have no grouping keys and trivial compensations,
    // so an original filter under a scalar GroupBy must be absorbed into
    // the fused plan: either on the filter spine below the fused GroupBy
    // or — per derived aggregate — into that aggregate's mask. The mask
    // check is per-aggregate because masks from the same side may be
    // mutually exclusive (each one still implies the side's disjoined
    // filter on its own); an aggregate whose mask is provably FALSE
    // counts nothing and is vacuously safe.
    if orig.is_scalar() && !orig.aggregates.is_empty() {
        if let LogicalPlan::Filter(of) = orig.input.as_ref() {
            let orig_pred = match map_through {
                Some(fu) => fu.map(&of.predicate),
                None => of.predicate.clone(),
            };
            if let Some(targets) = conjunct_exprs(&orig_pred) {
                for t in targets {
                    let absorbed = spine.contains(&t.to_string())
                        || mask_sets.iter().all(|m| {
                            let avail: BTreeSet<String> =
                                spine.union(m).cloned().collect();
                            implied(&t, &avail)
                        });
                    if !absorbed {
                        v.push(Violation::new(
                            AnalysisCode::Mask,
                            format!(
                                "{side} scalar-aggregate filter conjunct `{t}` was \
                                 absorbed neither by the fused filter spine nor by \
                                 every derived aggregate mask"
                            ),
                        ));
                    }
                }
            }
        }
    }
}
