// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Quickstart: build a table, run a query with a duplicated common
//! subexpression, and watch query fusion halve the data scanned.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fusion_common::{DataType, Value};
use fusion_engine::Session;
use fusion_exec::table::TableColumn;
use fusion_exec::TableBuilder;

fn build_orders() -> fusion_exec::Table {
    let mut b = TableBuilder::new(
        "orders",
        vec![
            TableColumn {
                name: "order_id".into(),
                data_type: DataType::Int64,
                nullable: false,
            },
            TableColumn {
                name: "customer".into(),
                data_type: DataType::Utf8,
                nullable: true,
            },
            TableColumn {
                name: "region".into(),
                data_type: DataType::Utf8,
                nullable: true,
            },
            TableColumn {
                name: "amount".into(),
                data_type: DataType::Float64,
                nullable: true,
            },
        ],
    );
    let regions = ["north", "south", "east", "west"];
    for i in 0..10_000i64 {
        b.add_row(vec![
            Value::Int64(i),
            Value::Utf8(format!("customer-{}", i % 500)),
            Value::Utf8(regions[(i % 4) as usize].to_string()),
            Value::Float64(((i * 37) % 1000) as f64 / 10.0),
        ])
        .unwrap();
    }
    b.build()
}

fn main() {
    // The query: a CTE used by two UNION ALL branches. A streaming engine
    // without fusion evaluates the CTE twice.
    let sql = "WITH big_orders AS (
                 SELECT order_id, customer, region, amount
                 FROM orders WHERE amount > 10.0)
               SELECT order_id FROM big_orders WHERE region = 'north'
               UNION ALL
               SELECT order_id FROM big_orders WHERE amount > 90.0";

    let mut fused = Session::new();
    fused.register_table(build_orders());
    let mut baseline = Session::baseline();
    baseline.register_table(build_orders());

    let rb = baseline.sql(sql).expect("baseline run");
    let rf = fused.sql(sql).expect("fused run");

    println!("== Query ==\n{sql}\n");
    println!("== Baseline plan (fusion off) ==\n{}", rb.optimized_plan.display());
    println!("== Optimized plan (fusion on) ==\n{}", rf.optimized_plan.display());

    assert_eq!(rf.sorted_rows(), rb.sorted_rows());
    println!("rows returned:      {}", rf.rows.len());
    println!(
        "bytes scanned:      baseline {:>10}  fused {:>10}  ({:.0}% of baseline)",
        rb.metrics.bytes_scanned,
        rf.metrics.bytes_scanned,
        100.0 * rf.metrics.bytes_scanned as f64 / rb.metrics.bytes_scanned as f64
    );
    println!(
        "latency:            baseline {:>8.2?}  fused {:>8.2?}",
        rb.latency, rf.latency
    );
    println!(
        "fusion rules fired: {:?}",
        rf.report.fired.iter().collect::<std::collections::BTreeSet<_>>()
    );
}
