//! Fusing filters (§III.B).

use fusion_expr::equiv;
use fusion_plan::{Filter, LogicalPlan};

use super::{simp, FuseContext, Fused};

/// `Fuse(Filter_C1(P1), Filter_C2(P2))`: recursively fuse the inputs, then
/// either keep a single equivalent condition, or take the disjunction and
/// tighten the compensating filters:
///
/// ```text
/// (Filter_{C1 OR M(C2)}(P), M, L AND C1, R AND M(C2))
/// ```
pub fn fuse_filters(f1: &Filter, f2: &Filter, ctx: &FuseContext) -> Option<Fused> {
    let fused = super::fuse(&f1.input, &f2.input, ctx)?;
    let c1 = f1.predicate.clone();
    let c2m = fused.map(&f2.predicate);
    if equiv(&c1, &c2m) {
        return Some(Fused {
            plan: LogicalPlan::Filter(Filter {
                input: Box::new(fused.plan),
                predicate: c1,
            }),
            mapping: fused.mapping,
            left: fused.left,
            right: fused.right,
        });
    }
    let predicate = simp(c1.clone().or(c2m.clone()));
    let left = simp(fused.left.and(c1));
    let right = simp(fused.right.and(c2m));
    Some(Fused {
        plan: LogicalPlan::Filter(Filter {
            input: Box::new(fused.plan),
            predicate,
        }),
        mapping: fused.mapping,
        left,
        right,
    })
}

#[cfg(test)]
mod tests {
    use crate::fuse::{fuse, FuseContext};
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, equiv, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{LogicalPlan, PlanBuilder};

    fn item_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("i_item_desc", DataType::Utf8, true),
            ColumnDef::new("i_category", DataType::Utf8, true),
            ColumnDef::new("i_brand_id", DataType::Int64, true),
        ]
    }

    /// The §III.B example: same scan, `category = 'Music' AND brand > 1000`
    /// vs `category = 'Music' AND brand < 50`. The fused filter is the
    /// disjunction; L and R restore each side.
    #[test]
    fn disjoint_filters_fuse_with_disjunction() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let (a_cat, a_brand) = (a.col("i_category").unwrap(), a.col("i_brand_id").unwrap());
        let p1 = a
            .filter(
                col(a_cat)
                    .eq_to(lit("Music"))
                    .and(col(a_brand).gt(lit(1000i64))),
            )
            .build();

        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let (b_cat, b_brand) = (b.col("i_category").unwrap(), b.col("i_brand_id").unwrap());
        let p2 = b
            .filter(
                col(b_cat)
                    .eq_to(lit("Music"))
                    .and(col(b_brand).lt(lit(50i64))),
            )
            .build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        // L restores side 1: brand > 1000 (AND category = Music).
        assert!(f.left.to_string().contains("> 1000"));
        assert!(f.right.to_string().contains("< 50"));
        // The fused predicate contains the disjunction over left-side ids.
        if let LogicalPlan::Filter(filter) = &f.plan {
            let s = filter.predicate.to_string();
            assert!(s.contains("OR"), "fused predicate should be a disjunction: {s}");
            assert!(!filter.predicate.columns().contains(&b_brand));
        } else {
            panic!("expected Filter root");
        }
    }

    /// Equivalent conditions collapse to a single filter with trivial
    /// compensations.
    #[test]
    fn equivalent_filters_fuse_trivially() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let a_cat = a.col("i_category").unwrap();
        let p1 = a.filter(col(a_cat).eq_to(lit("Music"))).build();

        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let b_cat = b.col("i_category").unwrap();
        // Commuted operand order — still recognized as equivalent.
        let p2 = b.filter(lit("Music").eq_to(col(b_cat))).build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        assert!(f.trivial());
        assert!(matches!(f.plan, LogicalPlan::Filter(_)));
    }

    /// §III.G: filter on one side only — a trivial TRUE filter is
    /// manufactured, making L = TRUE side-compensation possible.
    #[test]
    fn filter_vs_bare_scan_uses_trivial_filter_adapter() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let a_brand = a.col("i_brand_id").unwrap();
        let p1 = a.filter(col(a_brand).gt(lit(10i64))).build();
        let p2 = PlanBuilder::scan(&gen, "item", &item_cols()).build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        // Fused keeps everything (TRUE OR pred == TRUE simplifies away the
        // filter predicate), left compensation restores the filtered side.
        assert!(equiv(&f.left, &col(a_brand).gt(lit(10i64))));
        assert!(f.right.is_true_literal());
    }
}
