//! Logical plan operators and schema propagation.

use fusion_common::{ColumnId, DataType, Field, Schema, Value};
use fusion_expr::{AggregateExpr, Expr, WindowExpr};

/// A logical query plan: a tree of relational operators.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    Scan(Scan),
    Filter(Filter),
    Project(Project),
    Join(Join),
    Aggregate(Aggregate),
    Window(Window),
    MarkDistinct(MarkDistinct),
    UnionAll(UnionAll),
    ConstantTable(ConstantTable),
    EnforceSingleRow(EnforceSingleRow),
    Sort(Sort),
    Limit(Limit),
}

/// A scan of a base table. Each instantiation allocates fresh column
/// identities; `column_indices[i]` records which base-table column (by
/// ordinal) produces output field `i`, which is what lets two instances of
/// the same table be matched positionally during fusion and lets the
/// column-pruning rule narrow the read set.
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    pub table: String,
    pub fields: Vec<Field>,
    pub column_indices: Vec<usize>,
    /// Predicates pushed into the scan (conjunctive). Populated by the
    /// predicate-pushdown pass; used for partition pruning at execution.
    pub filters: Vec<Expr>,
}

/// `WHERE`/`HAVING`: keep rows where the predicate evaluates to TRUE.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    pub input: Box<LogicalPlan>,
    pub predicate: Expr,
}

/// One projected output: a fresh identity, a display name, an expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjExpr {
    pub id: ColumnId,
    pub name: String,
    pub expr: Expr,
}

impl ProjExpr {
    pub fn new(id: ColumnId, name: impl Into<String>, expr: Expr) -> Self {
        ProjExpr {
            id,
            name: name.into(),
            expr,
        }
    }

    /// A pass-through projection of an existing field under its own id.
    pub fn passthrough(field: &Field) -> Self {
        ProjExpr {
            id: field.id,
            name: field.name.clone(),
            expr: Expr::Column(field.id),
        }
    }
}

/// Projection: a sequence of assignments of expressions to columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Project {
    pub input: Box<LogicalPlan>,
    pub exprs: Vec<ProjExpr>,
}

/// Join variants. `Semi` is a left semi-join (output = left columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    Left,
    Semi,
    Cross,
}

impl std::fmt::Display for JoinType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JoinType::Inner => "INNER",
            JoinType::Left => "LEFT",
            JoinType::Semi => "SEMI",
            JoinType::Cross => "CROSS",
        };
        f.write_str(s)
    }
}

/// Binary join with an arbitrary boolean condition (TRUE for cross joins).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub left: Box<LogicalPlan>,
    pub right: Box<LogicalPlan>,
    pub join_type: JoinType,
    pub condition: Expr,
}

/// One aggregate output column: fresh identity, name, masked aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct AggAssign {
    pub id: ColumnId,
    pub name: String,
    pub agg: AggregateExpr,
}

impl AggAssign {
    pub fn new(id: ColumnId, name: impl Into<String>, agg: AggregateExpr) -> Self {
        AggAssign {
            id,
            name: name.into(),
            agg,
        }
    }
}

/// GroupBy with masked aggregates (§III.E). Grouping columns are plain
/// column references and **keep their input identities** in the output.
/// A `GroupBy` with no aggregates is a DISTINCT.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    pub input: Box<LogicalPlan>,
    pub group_by: Vec<ColumnId>,
    pub aggregates: Vec<AggAssign>,
}

impl Aggregate {
    /// A scalar aggregate has no grouping columns and returns exactly one
    /// row.
    pub fn is_scalar(&self) -> bool {
        self.group_by.is_empty()
    }

    /// A distinct is a GroupBy with no aggregate functions.
    pub fn is_distinct(&self) -> bool {
        self.aggregates.is_empty()
    }
}

/// One window output column.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAssign {
    pub id: ColumnId,
    pub name: String,
    pub window: WindowExpr,
}

/// Window operator: passes through all input columns and appends one
/// column per partition-wide window aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    pub input: Box<LogicalPlan>,
    pub exprs: Vec<WindowAssign>,
}

/// `MarkDistinct` (§III.F): passes through the input and appends a boolean
/// column that is TRUE the first time each combination of `columns` is
/// seen and FALSE afterwards. Together with aggregate masks this
/// implements distinct aggregates without self-joins.
///
/// The operator supports a native *mask* (the extension §III.F sketches):
/// rows whose mask is not TRUE are marked FALSE and do not participate in
/// first-occurrence tracking. Fusion uses this to scope each side's marks
/// to its compensating filter without manufacturing extra columns.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkDistinct {
    pub input: Box<LogicalPlan>,
    pub columns: Vec<ColumnId>,
    pub mark_id: ColumnId,
    pub mark_name: String,
    pub mask: Expr,
}

/// N-ary bag union. All inputs have the same arity and positionally
/// compatible types; the output carries fresh identities (`fields`).
#[derive(Debug, Clone, PartialEq)]
pub struct UnionAll {
    pub inputs: Vec<LogicalPlan>,
    pub fields: Vec<Field>,
}

impl UnionAll {
    /// The positional mapping `UM` for input `i`: output field `j` is fed
    /// by the input's `j`-th column.
    pub fn input_column_for_output(&self, input: usize, output_pos: usize) -> ColumnId {
        self.inputs[input].schema().field(output_pos).id
    }
}

/// An inline constant relation (`VALUES`), e.g. the `(1), (2)` tag table
/// manufactured by the UnionAll fusion rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantTable {
    pub fields: Vec<Field>,
    pub rows: Vec<Vec<Value>>,
}

/// Enforce that the input produces exactly one row (scalar subqueries).
#[derive(Debug, Clone, PartialEq)]
pub struct EnforceSingleRow {
    pub input: Box<LogicalPlan>,
}

/// Sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub asc: bool,
    pub nulls_first: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            asc: true,
            nulls_first: false,
        }
    }

    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            asc: false,
            nulls_first: false,
        }
    }
}

/// ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct Sort {
    pub input: Box<LogicalPlan>,
    pub keys: Vec<SortKey>,
}

/// LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Limit {
    pub input: Box<LogicalPlan>,
    pub fetch: usize,
}

impl LogicalPlan {
    /// Compute the output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan(s) => Schema::new(s.fields.clone()),
            LogicalPlan::Filter(f) => f.input.schema(),
            LogicalPlan::Project(p) => {
                let input = p.input.schema();
                Schema::new(
                    p.exprs
                        .iter()
                        .map(|pe| {
                            let dt = pe
                                .expr
                                .data_type(&input)
                                .unwrap_or(DataType::Boolean);
                            Field::new(pe.id, pe.name.clone(), dt, pe.expr.nullable(&input))
                        })
                        .collect(),
                )
            }
            LogicalPlan::Join(j) => match j.join_type {
                JoinType::Semi => j.left.schema(),
                JoinType::Left => {
                    let mut fields = j.left.schema().fields().to_vec();
                    // Right side becomes nullable under a left join.
                    fields.extend(j.right.schema().fields().iter().map(|f| Field {
                        nullable: true,
                        ..f.clone()
                    }));
                    Schema::new(fields)
                }
                JoinType::Inner | JoinType::Cross => j.left.schema().join(&j.right.schema()),
            },
            LogicalPlan::Aggregate(a) => {
                let input = a.input.schema();
                let mut fields: Vec<Field> = a
                    .group_by
                    .iter()
                    .filter_map(|id| input.field_by_id(*id).cloned())
                    .collect();
                for assign in &a.aggregates {
                    let dt = assign
                        .agg
                        .output_type(&input)
                        .unwrap_or(DataType::Float64);
                    fields.push(Field::new(
                        assign.id,
                        assign.name.clone(),
                        dt,
                        assign.agg.output_nullable(),
                    ));
                }
                Schema::new(fields)
            }
            LogicalPlan::Window(w) => {
                let input = w.input.schema();
                let mut fields = input.fields().to_vec();
                for assign in &w.exprs {
                    let dt = assign
                        .window
                        .output_type(&input)
                        .unwrap_or(DataType::Float64);
                    fields.push(Field::new(assign.id, assign.name.clone(), dt, true));
                }
                Schema::new(fields)
            }
            LogicalPlan::MarkDistinct(m) => {
                let mut fields = m.input.schema().fields().to_vec();
                fields.push(Field::new(
                    m.mark_id,
                    m.mark_name.clone(),
                    DataType::Boolean,
                    false,
                ));
                Schema::new(fields)
            }
            LogicalPlan::UnionAll(u) => Schema::new(u.fields.clone()),
            LogicalPlan::ConstantTable(c) => Schema::new(c.fields.clone()),
            LogicalPlan::EnforceSingleRow(e) => e.input.schema(),
            LogicalPlan::Sort(s) => s.input.schema(),
            LogicalPlan::Limit(l) => l.input.schema(),
        }
    }

    /// Immediate children, in order.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan(_) | LogicalPlan::ConstantTable(_) => vec![],
            LogicalPlan::Filter(f) => vec![&f.input],
            LogicalPlan::Project(p) => vec![&p.input],
            LogicalPlan::Join(j) => vec![&j.left, &j.right],
            LogicalPlan::Aggregate(a) => vec![&a.input],
            LogicalPlan::Window(w) => vec![&w.input],
            LogicalPlan::MarkDistinct(m) => vec![&m.input],
            LogicalPlan::UnionAll(u) => u.inputs.iter().collect(),
            LogicalPlan::EnforceSingleRow(e) => vec![&e.input],
            LogicalPlan::Sort(s) => vec![&s.input],
            LogicalPlan::Limit(l) => vec![&l.input],
        }
    }

    /// Rebuild this node with new children (must match the arity of
    /// [`LogicalPlan::children`]).
    pub fn with_new_children(&self, mut children: Vec<LogicalPlan>) -> LogicalPlan {
        let mut next = || Box::new(children.remove(0));
        match self {
            LogicalPlan::Scan(_) | LogicalPlan::ConstantTable(_) => self.clone(),
            LogicalPlan::Filter(f) => LogicalPlan::Filter(Filter {
                input: next(),
                predicate: f.predicate.clone(),
            }),
            LogicalPlan::Project(p) => LogicalPlan::Project(Project {
                input: next(),
                exprs: p.exprs.clone(),
            }),
            LogicalPlan::Join(j) => {
                let left = next();
                let right = next();
                LogicalPlan::Join(Join {
                    left,
                    right,
                    join_type: j.join_type,
                    condition: j.condition.clone(),
                })
            }
            LogicalPlan::Aggregate(a) => LogicalPlan::Aggregate(Aggregate {
                input: next(),
                group_by: a.group_by.clone(),
                aggregates: a.aggregates.clone(),
            }),
            LogicalPlan::Window(w) => LogicalPlan::Window(Window {
                input: next(),
                exprs: w.exprs.clone(),
            }),
            LogicalPlan::MarkDistinct(m) => LogicalPlan::MarkDistinct(MarkDistinct {
                input: next(),
                columns: m.columns.clone(),
                mark_id: m.mark_id,
                mark_name: m.mark_name.clone(),
                mask: m.mask.clone(),
            }),
            LogicalPlan::UnionAll(u) => LogicalPlan::UnionAll(UnionAll {
                inputs: std::mem::take(&mut children),
                fields: u.fields.clone(),
            }),
            LogicalPlan::EnforceSingleRow(_) => {
                LogicalPlan::EnforceSingleRow(EnforceSingleRow { input: next() })
            }
            LogicalPlan::Sort(s) => LogicalPlan::Sort(Sort {
                input: next(),
                keys: s.keys.clone(),
            }),
            LogicalPlan::Limit(l) => LogicalPlan::Limit(Limit {
                input: next(),
                fetch: l.fetch,
            }),
        }
    }

    /// Short operator name for explain output.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan(_) => "Scan",
            LogicalPlan::Filter(_) => "Filter",
            LogicalPlan::Project(_) => "Project",
            LogicalPlan::Join(_) => "Join",
            LogicalPlan::Aggregate(_) => "Aggregate",
            LogicalPlan::Window(_) => "Window",
            LogicalPlan::MarkDistinct(_) => "MarkDistinct",
            LogicalPlan::UnionAll(_) => "UnionAll",
            LogicalPlan::ConstantTable(_) => "ConstantTable",
            LogicalPlan::EnforceSingleRow(_) => "EnforceSingleRow",
            LogicalPlan::Sort(_) => "Sort",
            LogicalPlan::Limit(_) => "Limit",
        }
    }

    /// Total number of operators in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Names of base tables scanned, with multiplicity (sorted).
    pub fn scanned_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(p: &LogicalPlan, out: &mut Vec<String>) {
            if let LogicalPlan::Scan(s) = p {
                out.push(s.table.clone());
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_common::IdGen;
    use fusion_expr::{col, lit, AggregateExpr};

    fn scan(gen: &IdGen) -> (LogicalPlan, Vec<ColumnId>) {
        let ids = gen.fresh_n(3);
        let fields = vec![
            Field::new(ids[0], "a", DataType::Int64, false),
            Field::new(ids[1], "b", DataType::Float64, true),
            Field::new(ids[2], "c", DataType::Utf8, true),
        ];
        (
            LogicalPlan::Scan(Scan {
                table: "t".into(),
                fields,
                column_indices: vec![0, 1, 2],
                filters: vec![],
            }),
            ids,
        )
    }

    #[test]
    fn scan_schema_reports_instance_fields() {
        let gen = IdGen::new();
        let (plan, ids) = scan(&gen);
        let schema = plan.schema();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.field(0).id, ids[0]);
    }

    #[test]
    fn aggregate_schema_keeps_group_ids_and_appends_aggs() {
        let gen = IdGen::new();
        let (plan, ids) = scan(&gen);
        let agg_id = gen.fresh();
        let agg = LogicalPlan::Aggregate(Aggregate {
            input: Box::new(plan),
            group_by: vec![ids[0]],
            aggregates: vec![AggAssign::new(
                agg_id,
                "s",
                AggregateExpr::sum(col(ids[1])),
            )],
        });
        let schema = agg.schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.field(0).id, ids[0]);
        assert_eq!(schema.field(1).id, agg_id);
        assert_eq!(schema.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn semi_join_keeps_left_schema_only() {
        let gen = IdGen::new();
        let (l, lids) = scan(&gen);
        let (r, rids) = scan(&gen);
        let j = LogicalPlan::Join(Join {
            left: Box::new(l),
            right: Box::new(r),
            join_type: JoinType::Semi,
            condition: col(lids[0]).eq_to(col(rids[0])),
        });
        assert_eq!(j.schema().len(), 3);
        assert_eq!(j.schema().field(0).id, lids[0]);
    }

    #[test]
    fn left_join_makes_right_nullable() {
        let gen = IdGen::new();
        let (l, lids) = scan(&gen);
        let (r, rids) = scan(&gen);
        let j = LogicalPlan::Join(Join {
            left: Box::new(l),
            right: Box::new(r),
            join_type: JoinType::Left,
            condition: col(lids[0]).eq_to(col(rids[0])),
        });
        let schema = j.schema();
        assert!(!schema.field(0).nullable); // left `a` stays NOT NULL
        assert!(schema.field(3).nullable); // right `a` becomes nullable
    }

    #[test]
    fn mark_distinct_appends_non_null_bool() {
        let gen = IdGen::new();
        let (p, ids) = scan(&gen);
        let mark = gen.fresh();
        let md = LogicalPlan::MarkDistinct(MarkDistinct {
            input: Box::new(p),
            columns: vec![ids[2]],
            mark_id: mark,
            mark_name: "d".into(),
            mask: Expr::boolean(true),
        });
        let schema = md.schema();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.field(3).data_type, DataType::Boolean);
        assert!(!schema.field(3).nullable);
    }

    #[test]
    fn with_new_children_round_trips() {
        let gen = IdGen::new();
        let (p, ids) = scan(&gen);
        let f = LogicalPlan::Filter(Filter {
            input: Box::new(p.clone()),
            predicate: col(ids[0]).gt(lit(1i64)),
        });
        let rebuilt = f.with_new_children(vec![p]);
        assert_eq!(f, rebuilt);
        assert_eq!(f.node_count(), 2);
    }

    #[test]
    fn scanned_tables_with_multiplicity() {
        let gen = IdGen::new();
        let (l, lids) = scan(&gen);
        let (r, rids) = scan(&gen);
        let j = LogicalPlan::Join(Join {
            left: Box::new(l),
            right: Box::new(r),
            join_type: JoinType::Inner,
            condition: col(lids[0]).eq_to(col(rids[0])),
        });
        assert_eq!(j.scanned_tables(), vec!["t".to_string(), "t".to_string()]);
    }
}
