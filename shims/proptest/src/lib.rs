//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this path crate
//! reimplements the subset of proptest the workspace's property tests
//! use: `Strategy` with `prop_map`/`prop_recursive`/`boxed`, range and
//! tuple strategies, `Just`, `any::<bool>()`, `collection::vec`,
//! `option::of`, and the `proptest!`/`prop_oneof!`/`prop_assert*!`/
//! `prop_assume!` macros. Generation is deterministic (seeded from the
//! test name, overridable via `PROPTEST_SEED`); failing cases report the
//! case number so a failure can be replayed. There is **no shrinking** —
//! on failure the full counterexample is printed as-is.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// `proptest::collection::vec(strategy, size)` — a Vec whose length
    /// is drawn from `size` (exact or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// `proptest::option::of(strategy)` — `None` roughly a quarter of the
    /// time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Equal-weight choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "assertion failed: {} == {}",
            stringify!($left), stringify!($right))
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if !(*__pt_left == *__pt_right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("{}\n left: {:?}\nright: {:?}",
                            format!($($fmt)+), __pt_left, __pt_right),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "assertion failed: {} != {}",
            stringify!($left), stringify!($right))
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if *__pt_left == *__pt_right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("{}\n both: {:?}", format!($($fmt)+), __pt_left),
                    ));
                }
            }
        }
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(16).max(1024) {
                                panic!(
                                    "proptest `{}`: too many rejected cases ({} rejects for {} accepted)",
                                    stringify!($name), rejected, accepted
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case #{case} (seed {}):\n{msg}",
                                stringify!($name), rng.seed(),
                            );
                        }
                    }
                }
            }
        )*
    };
}
