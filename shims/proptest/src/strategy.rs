//! Strategies: deterministic value generators.

use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// value tree / shrinking; `generate` draws a single value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `recurse` stacked over the
    /// base case, recursion taken with probability 1/2 per level. The
    /// `_desired_size`/`_expected_branch` hints of real proptest are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Equal-weight union; the `prop_oneof!` expansion.
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

// ---- ranges ----

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// ---- tuples ----

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- collections & options ----

/// Length spec for `collection::vec`: exact or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive; lo == hi means "exactly lo"
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange { lo: r.start, hi: r.end }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo >= self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

// ---- any::<T>() ----

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Range<$t>;
            fn arbitrary() -> Range<$t> {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_unions_stay_in_domain() {
        let mut rng = TestRng::for_test("ranges_and_unions_stay_in_domain");
        let s = crate::prop_oneof![(-5i64..0).prop_map(|v| v * 2), 10i64..20];
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((-10..0).contains(&v) || (10..20).contains(&v), "{v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = TestRng::for_test("recursive_strategies_terminate");
        let leaf = (0i64..10).prop_map(|v| vec![v]);
        let nested = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(mut a, b)| {
                a.extend(b);
                a
            })
        });
        for _ in 0..200 {
            let v = nested.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16, "len {}", v.len());
        }
    }

    #[test]
    fn vec_sizes_follow_spec() {
        let mut rng = TestRng::for_test("vec_sizes_follow_spec");
        let s = crate::collection::vec(0i64..3, 0..40);
        for _ in 0..200 {
            assert!(s.generate(&mut rng).len() < 40);
        }
        let exact = crate::collection::vec(0i64..3, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}
