//! Plan-mutation self-test: the analyzer's own regression suite.
//!
//! Each corruption below takes a *known-good* fusion artifact — a raw
//! `Fuse` result or an optimized tagged-dispatch plan — and applies one
//! seeded mutation of the kind a buggy rewrite would produce: drop a
//! mapping entry, swap or widen a compensating filter, widen an aggregate
//! mask, change an aggregate's function or argument, drop a grouping key,
//! retype or drop a tag-dispatch branch. The analyzer (contract checker +
//! structural validation + whole-plan checks) must reject every mutant;
//! a surviving mutant is a hole in the analyzer, reported by name for
//! triage and gated in CI at a ≥ 95% kill rate.

use fusion_common::{DataType, Field, IdGen, Value};
use fusion_expr::{col, lit, AggregateExpr, BinaryOp, Expr};
use fusion_plan::{
    AggAssign, Aggregate, Filter, LogicalPlan, Project, ProjExpr, Scan, UnionAll,
};

use super::{analyze_plan, check_fuse_contract, render_violations};
use crate::fuse::{fuse, FuseContext, Fused};
use crate::rules::union_fusion::UnionAllFusion;
use crate::rules::Rule;

/// Outcome of one seeded corruption.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    pub description: String,
    pub killed: bool,
    /// The violation (or validation error) that killed it, if any.
    pub detail: String,
}

/// Aggregated self-test result.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    pub outcomes: Vec<MutationOutcome>,
}

impl MutationReport {
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    pub fn killed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.killed).count()
    }

    pub fn kill_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.killed() as f64 / self.total() as f64
    }

    /// Descriptions of mutants the analyzer failed to reject.
    pub fn survivors(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.killed)
            .map(|o| o.description.as_str())
            .collect()
    }

    fn record_fused(
        &mut self,
        description: impl Into<String>,
        p1: &LogicalPlan,
        p2: &LogicalPlan,
        mutant: &Fused,
    ) {
        // A mutant is killed if any layer of the gate rejects it: the
        // contract checker, structural validation, or the plan checks.
        let mut detail = render_violations(&check_fuse_contract(p1, p2, mutant));
        if detail.is_empty() {
            if let Err(e) = mutant.plan.validate() {
                detail = e.to_string();
            }
        }
        if detail.is_empty() {
            detail = render_violations(&analyze_plan(&mutant.plan));
        }
        self.outcomes.push(MutationOutcome {
            description: description.into(),
            killed: !detail.is_empty(),
            detail,
        });
    }

    fn record_plan(&mut self, description: impl Into<String>, mutant: &LogicalPlan) {
        let mut detail = match mutant.validate() {
            Err(e) => e.to_string(),
            Ok(()) => String::new(),
        };
        if detail.is_empty() {
            detail = render_violations(&analyze_plan(mutant));
        }
        self.outcomes.push(MutationOutcome {
            description: description.into(),
            killed: !detail.is_empty(),
            detail,
        });
    }
}

/// Run the full corruption suite. Also asserts (as outcomes, not panics)
/// that the *uncorrupted* artifacts pass, so a false-positive analyzer
/// shows up as a mutation regression too.
pub fn run_self_test() -> MutationReport {
    let mut report = MutationReport::default();
    filter_fusion_mutants(&mut report);
    scalar_aggregate_mutants(&mut report);
    keyed_aggregate_mutants(&mut report);
    union_dispatch_mutants(&mut report);
    report
}

/// `[x Int64, y Utf8, z Int64, b Boolean]` scan with fresh ids.
fn scan(gen: &IdGen, table: &str) -> LogicalPlan {
    let fields = vec![
        Field::new(gen.fresh(), "x", DataType::Int64, true),
        Field::new(gen.fresh(), "y", DataType::Utf8, true),
        Field::new(gen.fresh(), "z", DataType::Int64, true),
        Field::new(gen.fresh(), "b", DataType::Boolean, true),
    ];
    LogicalPlan::Scan(Scan {
        table: table.into(),
        fields,
        column_indices: vec![0, 1, 2, 3],
        filters: Vec::new(),
    })
}

fn field_id(plan: &LogicalPlan, name: &str) -> fusion_common::ColumnId {
    plan.schema()
        .fields()
        .iter()
        .find(|f| f.name == name)
        .map(|f| f.id)
        .unwrap_or(fusion_common::ColumnId(u32::MAX))
}

/// A good/bad sanity pair plus the corruption matrix for plain filter
/// fusion: `Filter(x>5)(t)` fused with `Filter(x<3)(t)`.
fn filter_fusion_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let x1 = field_id(&s1, "x");
    let y1 = field_id(&s1, "y");
    let p1 = LogicalPlan::Filter(Filter {
        input: Box::new(s1.clone()),
        predicate: col(x1).gt(lit(5i64)),
    });
    let p2 = LogicalPlan::Filter(Filter {
        input: Box::new(s2.clone()),
        predicate: col(field_id(&s2, "x")).lt(lit(3i64)),
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "filter fusion sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };

    // Baseline: the uncorrupted result must be accepted (recorded
    // inverted — "killed" here means the analyzer stayed quiet).
    let baseline = check_fuse_contract(&p1, &p2, &good);
    report.outcomes.push(MutationOutcome {
        description: "filter fusion: pristine result accepted".into(),
        killed: baseline.is_empty(),
        detail: render_violations(&baseline),
    });

    // Drop each mapping entry.
    for key in good.mapping.keys().copied().collect::<Vec<_>>() {
        let mut m = good.clone();
        m.mapping.remove(&key);
        report.record_fused(
            format!("filter fusion: drop mapping entry for #{}", key.0),
            &p1,
            &p2,
            &m,
        );
    }
    // Remap a column onto a fresh id the fused plan does not produce.
    if let Some(key) = good.mapping.keys().next().copied() {
        let mut m = good.clone();
        m.mapping.insert(key, ctx.gen.fresh());
        report.record_fused("filter fusion: remap onto unknown column", &p1, &p2, &m);
    }
    // Remap P2's Utf8 column onto P1's Int64 column.
    {
        let mut m = good.clone();
        m.mapping.insert(field_id(&s2, "y"), x1);
        report.record_fused("filter fusion: remap Utf8 column onto Int64", &p1, &p2, &m);
    }
    // Swap the compensating filters.
    {
        let mut m = good.clone();
        std::mem::swap(&mut m.left, &mut m.right);
        report.record_fused("filter fusion: swap L and R", &p1, &p2, &m);
    }
    // Widen each compensation to TRUE.
    for side in ["L", "R"] {
        let mut m = good.clone();
        if side == "L" {
            m.left = Expr::boolean(true);
        } else {
            m.right = Expr::boolean(true);
        }
        report.record_fused(format!("filter fusion: widen {side} to TRUE"), &p1, &p2, &m);
    }
    // Compensation referencing a column outside the fused schema.
    {
        let mut m = good.clone();
        m.left = col(ctx.gen.fresh()).gt(lit(0i64));
        report.record_fused("filter fusion: L references unknown column", &p1, &p2, &m);
    }
    // Non-boolean compensation.
    {
        let mut m = good.clone();
        m.right = col(x1).add(lit(1i64));
        report.record_fused("filter fusion: R is not boolean", &p1, &p2, &m);
    }
    // Drop one of P1's columns from the fused plan via a projection.
    {
        let mut m = good.clone();
        let keep: Vec<ProjExpr> = m
            .plan
            .schema()
            .fields()
            .iter()
            .filter(|f| f.id != y1)
            .map(|f| ProjExpr::new(f.id, f.name.clone(), col(f.id)))
            .collect();
        m.plan = LogicalPlan::Project(Project {
            input: Box::new(m.plan),
            exprs: keep,
        });
        report.record_fused("filter fusion: fused plan drops a P1 column", &p1, &p2, &m);
    }
}

/// Scalar aggregates over different filters: the filters must be absorbed
/// into every derived mask.
fn scalar_aggregate_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let x1 = field_id(&s1, "x");
    let x2 = field_id(&s2, "x");
    let agg1 = gen.fresh();
    let agg2 = gen.fresh();
    let p1 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(LogicalPlan::Filter(Filter {
            input: Box::new(s1.clone()),
            predicate: col(x1).gt(lit(5i64)),
        })),
        group_by: vec![],
        aggregates: vec![AggAssign::new(agg1, "s", AggregateExpr::sum(col(x1)))],
    });
    let p2 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(LogicalPlan::Filter(Filter {
            input: Box::new(s2.clone()),
            predicate: col(x2).lt(lit(3i64)),
        })),
        group_by: vec![],
        aggregates: vec![AggAssign::new(agg2, "s", AggregateExpr::sum(col(x2)))],
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "scalar aggregate sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };
    let baseline = check_fuse_contract(&p1, &p2, &good);
    report.outcomes.push(MutationOutcome {
        description: "scalar aggregates: pristine result accepted".into(),
        killed: baseline.is_empty(),
        detail: render_violations(&baseline),
    });

    // Widen each fused aggregate's mask to TRUE.
    let n_aggs = match &good.plan {
        LogicalPlan::Aggregate(g) => g.aggregates.len(),
        _ => 0,
    };
    for i in 0..n_aggs {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.get_mut(i) {
                a.agg.mask = Expr::boolean(true);
            }
        }
        report.record_fused(
            format!("scalar aggregates: widen mask of fused aggregate {i}"),
            &p1,
            &p2,
            &m,
        );
    }
    // Change the function / argument / DISTINCT-ness of a fused aggregate.
    for (what, change) in [
        ("function SUM->MAX", 0),
        ("argument x->z", 1),
        ("set DISTINCT", 2),
    ] {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.first_mut() {
                match change {
                    0 => a.agg.func = fusion_expr::AggFunc::Max,
                    1 => a.agg.arg = Some(col(field_id(&s1, "z"))),
                    _ => a.agg.distinct = true,
                }
            }
        }
        report.record_fused(format!("scalar aggregates: {what}"), &p1, &p2, &m);
    }
}

/// Keyed aggregates with masked source aggregates: masks may only get
/// stricter, grouping keys must survive.
fn keyed_aggregate_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let s1 = scan(&gen, "t");
    let s2 = scan(&gen, "t");
    let k1 = field_id(&s1, "z");
    let k2 = field_id(&s2, "z");
    let b1 = field_id(&s1, "b");
    let b2 = field_id(&s2, "b");
    let agg1 = gen.fresh();
    let agg2 = gen.fresh();
    let p1 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(s1.clone()),
        group_by: vec![k1],
        aggregates: vec![AggAssign::new(
            agg1,
            "m",
            AggregateExpr::min(col(field_id(&s1, "x"))).with_mask(col(b1)),
        )],
    });
    let p2 = LogicalPlan::Aggregate(Aggregate {
        input: Box::new(s2.clone()),
        group_by: vec![k2],
        aggregates: vec![AggAssign::new(
            agg2,
            "m2",
            AggregateExpr::max(col(field_id(&s2, "x"))).with_mask(col(b2)),
        )],
    });
    let ctx = FuseContext::new(gen);
    let Some(good) = fuse(&p1, &p2, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "keyed aggregate sample failed to fuse".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };
    let baseline = check_fuse_contract(&p1, &p2, &good);
    report.outcomes.push(MutationOutcome {
        description: "keyed aggregates: pristine result accepted".into(),
        killed: baseline.is_empty(),
        detail: render_violations(&baseline),
    });

    // Widen the mask of the aggregate carrying P1's MIN.
    {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.iter_mut().find(|a| a.id == agg1) {
                a.agg.mask = Expr::boolean(true);
            }
        }
        report.record_fused("keyed aggregates: widen P1 mask", &p1, &p2, &m);
    }
    // Widen the mask of the aggregate carrying P2's MAX (found via M).
    {
        let mut m = good.clone();
        let target = m.mapped_id(agg2);
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            if let Some(a) = g.aggregates.iter_mut().find(|a| a.id == target) {
                a.agg.mask = Expr::boolean(true);
            }
        }
        report.record_fused("keyed aggregates: widen P2 mask", &p1, &p2, &m);
    }
    // Drop the grouping key.
    {
        let mut m = good.clone();
        if let LogicalPlan::Aggregate(g) = &mut m.plan {
            g.group_by.clear();
        }
        report.record_fused("keyed aggregates: drop grouping key", &p1, &p2, &m);
    }
    // Corrupt the mapping entry for P2's aggregate output. Same-table
    // fusions may carry P2's output under its own identity, in which
    // case *removing* the entry is a no-op (`mapped_id` falls back to
    // identity) — so the corruption points it at a column the fused
    // plan does not produce instead.
    {
        let mut m = good.clone();
        m.mapping.insert(agg2, ctx.gen.fresh());
        report.record_fused(
            "keyed aggregates: remap P2 output onto unknown column",
            &p1,
            &p2,
            &m,
        );
    }
}

/// Tag-dispatch corruption of an optimized 3-branch union fusion.
fn union_dispatch_mutants(report: &mut MutationReport) {
    let gen = IdGen::new();
    let mut inputs = Vec::new();
    let mut bounds = [10i64, 20, 30].iter();
    let mut fields = Vec::new();
    for i in 0..3 {
        let s = scan(&gen, "t");
        let x = field_id(&s, "x");
        let bound = *bounds.next().unwrap_or(&0);
        if i == 0 {
            fields = s
                .schema()
                .fields()
                .iter()
                .map(|f| Field::new(gen.fresh(), f.name.clone(), f.data_type, f.nullable))
                .collect();
        }
        inputs.push(LogicalPlan::Filter(Filter {
            input: Box::new(s),
            predicate: col(x).gt(lit(bound)),
        }));
    }
    let union = LogicalPlan::UnionAll(UnionAll { inputs, fields });
    let ctx = FuseContext::new(gen);
    let Some(good) = UnionAllFusion.apply(&union, &ctx) else {
        report.outcomes.push(MutationOutcome {
            description: "union dispatch sample: rule did not fire".into(),
            killed: false,
            detail: String::new(),
        });
        return;
    };

    let baseline = analyze_plan(&good);
    report.outcomes.push(MutationOutcome {
        description: "union dispatch: pristine plan accepted".into(),
        killed: baseline.is_empty() && good.validate().is_ok(),
        detail: render_violations(&baseline),
    });

    // Retype a tag literal: `tag = 2` becomes `tag = 9`.
    report.record_plan(
        "union dispatch: retype tag literal 2 -> 9",
        &rewrite_filters(&good, &|pred| replace_tag_literal(pred, 2, 9)),
    );
    // Duplicate a branch: `tag = 2` becomes `tag = 1`.
    report.record_plan(
        "union dispatch: dispatch branch 1 twice, drop branch 2",
        &rewrite_filters(&good, &|pred| replace_tag_literal(pred, 2, 1)),
    );
    // Drop a dispatch branch entirely.
    report.record_plan(
        "union dispatch: drop dispatch branch for tag 3",
        &rewrite_filters(&good, &|pred| drop_tag_disjunct(pred, 3)),
    );
}

/// Rewrite every Filter predicate with `f` (first match wins).
fn rewrite_filters(plan: &LogicalPlan, f: &dyn Fn(&Expr) -> Option<Expr>) -> LogicalPlan {
    plan.transform_down(&mut |node| {
        if let LogicalPlan::Filter(flt) = node {
            f(&flt.predicate).map(|predicate| {
                LogicalPlan::Filter(Filter {
                    input: flt.input.clone(),
                    predicate,
                })
            })
        } else {
            None
        }
    })
}

/// Replace the first `col = from` equality with `col = to`.
fn replace_tag_literal(pred: &Expr, from: i64, to: i64) -> Option<Expr> {
    let changed = std::cell::Cell::new(false);
    let out = pred.transform(&|e| {
        if changed.get() {
            return None;
        }
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = &e
        {
            if let (Expr::Column(id), Expr::Literal(Value::Int64(k))) =
                (left.as_ref(), right.as_ref())
            {
                if *k == from {
                    changed.set(true);
                    return Some(col(*id).eq_to(lit(to)));
                }
            }
        }
        None
    });
    changed.get().then_some(out)
}

/// Remove the disjunct dispatching `tag = which` from a top-level
/// disjunction.
fn drop_tag_disjunct(pred: &Expr, which: i64) -> Option<Expr> {
    let disjuncts = fusion_expr::split_disjuncts(pred);
    if disjuncts.len() < 2 {
        return None;
    }
    let keep: Vec<Expr> = disjuncts
        .iter()
        .filter(|d| {
            !fusion_expr::split_conjuncts(d).iter().any(|c| {
                matches!(
                    c,
                    Expr::Binary { op: BinaryOp::Eq, left, right }
                        if matches!(left.as_ref(), Expr::Column(_))
                            && matches!(right.as_ref(), Expr::Literal(Value::Int64(k)) if *k == which)
                )
            })
        })
        .cloned()
        .collect();
    (keep.len() < disjuncts.len() && !keep.is_empty()).then(|| fusion_expr::disjoin(keep))
}
