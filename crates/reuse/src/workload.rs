//! Cross-query fusion and shared-subplan execution — layer 2 of workload
//! reuse.
//!
//! [`plan_workload`] takes a batch of logical plans (one per concurrent
//! query), finds subplans that can be computed once and shared, executes
//! each shared subplan a single time, and rewrites every consuming query
//! to read the materialized rows instead — through the paper's
//! compensation machinery: consumer `i` becomes
//!
//! ```text
//! Project_{M_i(outCols_i)}( Filter_{C_i}( ConstantTable(rows of P) ) )
//! ```
//!
//! where `P` is the shared plan, `C_i` the consumer's compensating filter
//! and `M_i` its column mapping — exactly the `(P, M, L, R)` contract of
//! `Fuse`, lifted from two queries to a reuse *group* by folding:
//! fusing a new member into `P` ANDs the fold's `L` onto every prior
//! member's compensation (prior columns survive in the fused plan under
//! their ids, so prior mappings stay valid).
//!
//! Reuse groups come in two flavors:
//!
//! * **exact** — members share a canonical fingerprint; rows are spliced
//!   directly, aligned position-by-position via canonical slots;
//! * **fused** — members share a shape (root operator + scanned tables)
//!   but differ in predicates/columns; `fuse` builds the covering plan.
//!
//! Every shared plan is re-validated by the semantic plan analyzer before
//! execution, and every spliced consumer is re-validated before it
//! replaces the original plan; any violation reverts that consumer to its
//! unshared form.
//!
//! **Fault isolation** (see `DESIGN.md` §13): a shared group is one
//! failure domain shared by every consumer, so its execution is fenced.
//! Transient failures retry under the batch [`ExecContext`]'s
//! `RetryPolicy` — the same merged deadline/budget every query in the
//! batch runs under — and a *permanent* failure detaches all consumers:
//! each keeps its un-spliced original plan and re-executes independently
//! (counted in `consumers_detached`), exactly the fallback path single
//! queries already had. Repeated failures of the same fingerprint trip a
//! per-fingerprint [`FailureBreaker`] that stops re-forming the group.
//! The [`FaultPolicy`]'s [`ReuseFaultSite`] fault points inject
//! deterministic failures into shared execution, consumer splicing, and
//! cache admission/lookup/contents so the batch chaos harness can drive
//! every one of these paths.

use std::collections::HashMap;
use std::sync::Arc;

use fusion_common::{Field, IdGen};
use fusion_core::analysis::{
    certify_exact_splice, certify_fused_splice, certify_stamps, certify_subsumption,
    render_violations,
};
use fusion_core::{analyze_plan, fuse, FuseContext};
use fusion_exec::{
    execute_plan_profiled, Catalog, ExecContext, ExecMetrics, FaultPolicy, ReuseFaultSite, Row,
};
use fusion_expr::{simplify_filter, Expr};
use fusion_plan::{ConstantTable, Filter, LogicalPlan, Project, ProjExpr};

use crate::breaker::FailureBreaker;
use crate::cache::{DepStamps, ReuseCache};
use crate::fingerprint::{canonical_form, position_map, CanonicalForm};

/// Tuning knobs for the workload optimizer.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Smallest subplan (in plan nodes) considered for sharing. The
    /// default of 2 excludes bare table scans: sharing a full-table
    /// materialization costs more memory than it saves work.
    pub min_nodes: usize,
    /// Ceiling on cross-query `fuse` attempts per batch.
    pub max_fuse_attempts: usize,
    /// Consecutive shared-execution failures of one fingerprint before
    /// its circuit breaker opens and groups stop forming for it
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Batches an open breaker swallows before half-opening one probe
    /// group.
    pub breaker_cool_after: u32,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            min_nodes: 2,
            max_fuse_attempts: 64,
            breaker_threshold: 3,
            breaker_cool_after: 4,
        }
    }
}

/// The outcome of workload planning for a batch.
pub struct WorkloadOutcome {
    /// One plan per input query, rewritten where sharing applied.
    pub plans: Vec<LogicalPlan>,
    /// Human-readable per-query reuse notes (rendered under
    /// `-- workload reuse --` in EXPLAIN ANALYZE).
    pub notes: Vec<Vec<String>>,
    /// Certificate rejections from the reuse-soundness prover: splice,
    /// subsumption, or dependency-stamp claims that failed certification.
    /// Each rejected rewrite reverted to cold execution; under
    /// `FUSION_ANALYZE=strict` the engine fails the batch instead.
    /// Maintainability fallbacks (e.g. float-SUM refresh refusals) are
    /// deliberately *not* here — they are correct typed fallbacks, not
    /// soundness failures — and surface in `notes` only.
    pub rejections: Vec<String>,
    /// Per-group accounting.
    pub report: WorkloadReport,
}

/// Batch-level reuse accounting.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    pub groups: Vec<GroupReport>,
}

impl WorkloadReport {
    /// Number of shared subplans that were actually executed (not served
    /// from cache).
    pub fn shared_executions(&self) -> usize {
        self.groups.iter().filter(|g| g.executed).count()
    }

    /// Total consumers spliced across all groups.
    pub fn consumers_spliced(&self) -> usize {
        self.groups.iter().map(|g| g.spliced).sum()
    }

    /// Distinct batch queries served by at least one reuse group — the
    /// numerator of a coalescing window's share rate.
    pub fn queries_sharing(&self) -> usize {
        let mut queries = std::collections::BTreeSet::new();
        for group in &self.groups {
            queries.extend(group.queries.iter().copied());
        }
        queries.len()
    }

    /// Fraction of a `window_queries`-sized window served through a
    /// shared group or cache splice (0.0 for an empty window). The
    /// service's `coalesced_share_rate` is this, aggregated over windows.
    pub fn share_rate(&self, window_queries: usize) -> f64 {
        if window_queries == 0 {
            0.0
        } else {
            self.queries_sharing() as f64 / window_queries as f64
        }
    }

    /// Groups served from the shared-subplan cache (warm hits) rather
    /// than executed in this window.
    pub fn cache_hits(&self) -> usize {
        self.groups.iter().filter(|g| g.cache_hit).count()
    }
}

/// Accounting for one reuse group.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Fingerprint of the shared plan, rendered.
    pub fingerprint: String,
    /// Queries (by batch index) with at least one member in the group.
    pub queries: Vec<usize>,
    /// Consumers successfully rewritten to read the shared result.
    pub spliced: usize,
    /// Whether the group needed cross-query fusion (vs. exact match).
    pub fused: bool,
    /// Whether the shared rows came from the cache.
    pub cache_hit: bool,
    /// Whether the shared plan was executed in this batch.
    pub executed: bool,
    /// Rows produced by (or cached for) the shared plan.
    pub rows: usize,
    /// Plan nodes in the shared subplan.
    pub subplan_nodes: usize,
}

/// One occurrence of a shareable subplan inside a query.
struct Candidate {
    query: usize,
    /// Child-index path from the query root to the subplan root.
    path: Vec<usize>,
    plan: LogicalPlan,
    form: CanonicalForm,
}

/// A reuse group ready for execution: a shared plan plus its consumers.
struct Group {
    plan: LogicalPlan,
    form: CanonicalForm,
    fused: bool,
    /// `(candidate index, compensating filter over plan's columns,
    /// mapping from consumer output ids into plan's column ids)`.
    /// Exact-group members have no entry here; they splice via slots.
    members: Vec<GroupMember>,
}

struct GroupMember {
    cand: usize,
    /// Compensating filter over the shared plan's columns (TRUE for exact
    /// members).
    comp: Expr,
    /// Consumer output id -> shared plan column id. `None` for exact
    /// members, which align by canonical slots instead.
    mapping: Option<HashMap<fusion_common::ColumnId, fusion_common::ColumnId>>,
}

/// An optional single-plan optimizer the caller (the engine session)
/// lends the workload optimizer so shared subplans run with pushdown and
/// pruning applied. The optimized form is only used when it validates and
/// preserves the shared plan's output schema (ids, order, types) — the
/// slots and compensations are expressed against that schema.
pub type OptimizeFn<'a> = &'a dyn Fn(&LogicalPlan) -> LogicalPlan;

/// Plan a batch: detect reuse groups, execute each shared subplan once
/// (or serve it from `cache`), and rewrite consumers. Shared executions
/// and cache traffic are counted on `metrics`; rewritten plans that fail
/// validation or the semantic analyzer are reverted, never returned.
#[allow(clippy::too_many_arguments)]
pub fn plan_workload(
    cfg: &WorkloadConfig,
    cache: &mut ReuseCache,
    breaker: &mut FailureBreaker,
    plans: &[LogicalPlan],
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
    gen: &IdGen,
    metrics: &ExecMetrics,
    optimize: Option<OptimizeFn<'_>>,
) -> WorkloadOutcome {
    let mut out = WorkloadOutcome {
        plans: plans.to_vec(),
        notes: vec![Vec::new(); plans.len()],
        rejections: Vec::new(),
        report: WorkloadReport::default(),
    };
    if plans.len() < 2 && cache.is_empty() {
        return out;
    }

    let candidates = collect_candidates(plans, cfg.min_nodes);
    let versions = catalog.table_versions();
    let groups = form_groups(cfg, cache, &candidates, catalog, &versions, plans.len(), gen);

    for group in groups {
        execute_group(
            group,
            &candidates,
            cache,
            breaker,
            catalog,
            ctx,
            gen,
            metrics,
            &versions,
            optimize,
            &mut out,
        );
    }

    // Subsumption pass: a consumer no exact or fused group served may
    // still be answerable from a cached *superset* — its own filter over
    // the cached rows recovers the exact result. Spliced regions contain
    // no scans, so candidate collection naturally skips them.
    let fault = ctx.fault_policy();
    for q in 0..out.plans.len() {
        let (rewritten, notes, rejections) = apply_subsumption(
            cfg,
            cache,
            &out.plans[q],
            catalog,
            &versions,
            fault,
            metrics,
        );
        out.plans[q] = rewritten;
        out.notes[q].extend(notes);
        out.notes[q].extend(rejections.iter().cloned());
        out.rejections.extend(rejections);
    }
    out
}

/// Rewrite a single query plan against the warm cache only (no batch, no
/// shared execution). Used by the engine's single-query path so a query
/// arriving after a batch still benefits from cached shared subplans.
pub fn apply_cache(
    cfg: &WorkloadConfig,
    cache: &mut ReuseCache,
    plan: &LogicalPlan,
    catalog: &Catalog,
    fault: &FaultPolicy,
    metrics: &ExecMetrics,
) -> (LogicalPlan, Vec<String>) {
    if cache.is_empty() {
        return (plan.clone(), Vec::new());
    }
    let versions = catalog.table_versions();
    let candidates = collect_candidates(std::slice::from_ref(plan), cfg.min_nodes);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&x, &y| {
        candidates[y]
            .plan
            .node_count()
            .cmp(&candidates[x].plan.node_count())
            .then_with(|| candidates[x].path.cmp(&candidates[y].path))
    });
    let mut result = plan.clone();
    let mut notes = Vec::new();
    let mut taken: Vec<Vec<usize>> = Vec::new();
    for i in order {
        let c = &candidates[i];
        if taken.iter().any(|p| paths_overlap(p, &c.path)) {
            continue;
        }
        // Same CacheLookup fault point as the batch path: a forced miss
        // leaves the query on its cold plan.
        if fault
            .inject_reuse(
                ReuseFaultSite::CacheLookup,
                &c.form.fingerprint.to_string(),
                0,
            )
            .is_err()
        {
            metrics.add_fault_injected();
            continue;
        }
        let hit = cache.lookup(c.form.fingerprint, &c.form.encoding, catalog, &versions, metrics);
        notes.extend(cache.drain_rejections());
        let Some(hit) = hit else {
            continue;
        };
        // Certificate gate: re-prove the exact-splice claim from the
        // consumer plan itself before any cached row is served.
        match certify_exact_splice(&c.plan, &c.form.encoding, &hit.slots) {
            Ok(_) => metrics.add_reuse_certificate_issued(),
            Err(v) => {
                metrics.add_reuse_certificate_rejected();
                notes.push(format!(
                    "cache hit {} rejected by reuse prover ({}); running cold",
                    c.form.fingerprint,
                    render_violations(&v)
                ));
                continue;
            }
        }
        let Some(replacement) = splice_exact(&c.plan, &c.form.slots, &hit.slots, &hit.rows) else {
            continue;
        };
        let rewritten = replace_at(&result, &c.path, replacement);
        if rewritten.validate().is_ok() && analyze_plan(&rewritten).is_empty() {
            metrics.add_reuse_cache_hit();
            notes.push(format!(
                "cache hit {}: {} node subplan served from shared-subplan cache ({} rows{})",
                c.form.fingerprint,
                c.plan.node_count(),
                hit.rows.len(),
                refresh_note(&hit),
            ));
            result = rewritten;
            taken.push(c.path.clone());
        }
    }
    // Exact misses may still be answerable from a cached superset. The
    // single-query path has no batch to strict-fail, so certificate
    // rejections surface as typed notes and the query stays cold.
    let (result, sub_notes, sub_rejections) =
        apply_subsumption(cfg, cache, &result, catalog, &versions, fault, metrics);
    notes.extend(sub_notes);
    notes.extend(sub_rejections);
    (result, notes)
}

/// Render the delta-refresh suffix for a cache-hit note.
fn refresh_note(hit: &crate::cache::CachedRows) -> String {
    match hit.refreshed_delta_rows {
        Some(n) => format!(", refreshed in place over {n} delta rows"),
        None => String::new(),
    }
}

/// Rewrite `plan` against cached entries that strictly *subsume* one of
/// its Filter-rooted subplans: the consumer's own predicate over the
/// cached superset rows recovers its exact result (σ_p over σ_q rows
/// with q ⊆ p). Every splice is re-validated and analyzer-gated with
/// revert-on-violation, like all other splices. Returns
/// `(plan, notes, rejections)`: rejections are subsumption claims the
/// reuse prover refused — the consumer stayed cold, and strict batches
/// fail on them.
fn apply_subsumption(
    cfg: &WorkloadConfig,
    cache: &mut ReuseCache,
    plan: &LogicalPlan,
    catalog: &Catalog,
    versions: &HashMap<String, u64>,
    fault: &FaultPolicy,
    metrics: &ExecMetrics,
) -> (LogicalPlan, Vec<String>, Vec<String>) {
    if cache.is_empty() {
        return (plan.clone(), Vec::new(), Vec::new());
    }
    let candidates = collect_candidates(std::slice::from_ref(plan), cfg.min_nodes);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&x, &y| {
        candidates[y]
            .plan
            .node_count()
            .cmp(&candidates[x].plan.node_count())
            .then_with(|| candidates[x].path.cmp(&candidates[y].path))
    });
    let mut result = plan.clone();
    let mut notes = Vec::new();
    let mut rejections = Vec::new();
    let mut taken: Vec<Vec<usize>> = Vec::new();
    for i in order {
        let c = &candidates[i];
        if !matches!(c.plan, LogicalPlan::Filter(_)) {
            continue;
        }
        if taken.iter().any(|p| paths_overlap(p, &c.path)) {
            continue;
        }
        // Same CacheLookup fault point as exact lookups: a forced miss
        // leaves the consumer on its cold plan.
        if fault
            .inject_reuse(
                ReuseFaultSite::CacheLookup,
                &format!("subsume/{}", c.form.fingerprint),
                0,
            )
            .is_err()
        {
            metrics.add_fault_injected();
            continue;
        }
        let looked = cache.lookup_subsuming(&c.plan, catalog, versions, metrics);
        notes.extend(cache.drain_rejections());
        let Some((hit, fp)) = looked else {
            continue;
        };
        // Certificate gate: re-derive the subsumption proof against the
        // cached entry's *plan* (not its match metadata) before serving.
        match cache.entry_plan(fp).map(|p| certify_subsumption(p, &c.plan)) {
            Some(Ok(_)) => metrics.add_reuse_certificate_issued(),
            Some(Err(v)) => {
                metrics.add_reuse_certificate_rejected();
                rejections.push(format!(
                    "subsumption serve {fp} rejected by reuse prover ({}); running cold",
                    render_violations(&v)
                ));
                continue;
            }
            // Entry vanished between lookup and certification: stay cold.
            None => continue,
        }
        let Some(replacement) = splice_subsumed(&c.plan, &hit) else {
            continue;
        };
        let rewritten = replace_at(&result, &c.path, replacement);
        if rewritten.validate().is_ok() && analyze_plan(&rewritten).is_empty() {
            metrics.add_subsumption_hit();
            notes.push(format!(
                "subsumption hit {fp}: certified; consumer served from cached superset through \
                 compensating filter ({} rows{})",
                hit.rows.len(),
                refresh_note(&hit),
            ));
            result = rewritten;
            taken.push(c.path.clone());
        }
    }
    (result, notes, rejections)
}

/// Splice for a subsumption hit: the consumer is `Filter_p(Input)` and
/// the cached rows are `Filter_q(Input)` with q's conjuncts a strict
/// subset of p's. Materialize the cached rows under the consumer's own
/// input schema (aligned by canonical slots) and re-apply the consumer's
/// *full* predicate — σ_p(σ_q(I)) = σ_p(I) — so no predicate surgery is
/// needed and row order matches a cold run (a filtered subsequence of
/// the same partition-ordered stream).
fn splice_subsumed(consumer: &LogicalPlan, hit: &crate::cache::CachedRows) -> Option<LogicalPlan> {
    let LogicalPlan::Filter(f) = consumer else {
        return None;
    };
    let input_form = canonical_form(&f.input);
    let map = position_map(&input_form.slots, &hit.slots)?;
    let fields: Vec<Field> = f.input.schema().fields().to_vec();
    if fields.len() != map.len() {
        return None;
    }
    let identity = map.iter().enumerate().all(|(j, &k)| j == k);
    let rows: Vec<Row> = if identity {
        hit.rows.as_ref().clone()
    } else {
        hit.rows
            .iter()
            .map(|row| {
                map.iter()
                    .map(|&k| row.get(k).cloned().unwrap_or(fusion_common::Value::Null))
                    .collect()
            })
            .collect()
    };
    Some(LogicalPlan::Filter(Filter {
        input: Box::new(LogicalPlan::ConstantTable(ConstantTable { fields, rows })),
        predicate: f.predicate.clone(),
    }))
}

// ---------------------------------------------------------------------
// Candidate enumeration
// ---------------------------------------------------------------------

/// Whether a plan node may root a shared subplan.
fn shareable_root(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Filter(_)
            | LogicalPlan::Project(_)
            | LogicalPlan::Join(_)
            | LogicalPlan::Aggregate(_)
            | LogicalPlan::Window(_)
            | LogicalPlan::MarkDistinct(_)
            | LogicalPlan::UnionAll(_)
            | LogicalPlan::EnforceSingleRow(_)
            | LogicalPlan::Scan(_)
    )
}

fn contains_scan(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan(_) => true,
        _ => plan.children().into_iter().any(contains_scan),
    }
}

fn collect_candidates(plans: &[LogicalPlan], min_nodes: usize) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (query, plan) in plans.iter().enumerate() {
        let mut path = Vec::new();
        walk(plan, query, &mut path, min_nodes, &mut out);
    }
    out
}

fn walk(
    plan: &LogicalPlan,
    query: usize,
    path: &mut Vec<usize>,
    min_nodes: usize,
    out: &mut Vec<Candidate>,
) {
    if shareable_root(plan) && plan.node_count() >= min_nodes && contains_scan(plan) {
        out.push(Candidate {
            query,
            path: path.clone(),
            plan: plan.clone(),
            form: canonical_form(plan),
        });
    }
    for (i, child) in plan.children().into_iter().enumerate() {
        path.push(i);
        walk(child, query, path, min_nodes, out);
        path.pop();
    }
}

/// Two paths overlap when one is a prefix of the other (same subtree or
/// nested subtrees).
fn paths_overlap(a: &[usize], b: &[usize]) -> bool {
    let n = a.len().min(b.len());
    a[..n] == b[..n]
}

// ---------------------------------------------------------------------
// Group formation
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn form_groups(
    cfg: &WorkloadConfig,
    cache: &ReuseCache,
    candidates: &[Candidate],
    catalog: &Catalog,
    versions: &HashMap<String, u64>,
    n_queries: usize,
    gen: &IdGen,
) -> Vec<Group> {
    // Size-descending greedy order: prefer sharing the largest subplans.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&x, &y| {
        candidates[y]
            .plan
            .node_count()
            .cmp(&candidates[x].plan.node_count())
            .then_with(|| candidates[x].query.cmp(&candidates[y].query))
            .then_with(|| candidates[x].path.cmp(&candidates[y].path))
    });

    // Which encodings qualify for exact sharing: seen in >= 2 distinct
    // queries, or already cached and valid.
    let mut query_span: HashMap<&str, Vec<usize>> = HashMap::new();
    for c in candidates {
        let qs = query_span.entry(c.form.encoding.as_str()).or_default();
        if !qs.contains(&c.query) {
            qs.push(c.query);
        }
    }

    let mut taken: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_queries];
    let mut exact: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut exact_order: Vec<&str> = Vec::new();

    for &i in &order {
        let c = &candidates[i];
        let enc = c.form.encoding.as_str();
        let spans = query_span.get(enc).map(|q| q.len()).unwrap_or(0);
        // Servable = valid, or refreshable in place after a pure append —
        // either way a lookup during execution will produce rows.
        let cached = cache.contains_servable(c.form.fingerprint, enc, catalog, versions);
        if spans < 2 && !cached {
            continue;
        }
        if taken[c.query].iter().any(|p| paths_overlap(p, &c.path)) {
            continue;
        }
        taken[c.query].push(c.path.clone());
        let members = exact.entry(enc).or_default();
        if members.is_empty() {
            exact_order.push(enc);
        }
        members.push(i);
    }

    let mut groups = Vec::new();
    for enc in exact_order {
        let Some(members) = exact.remove(enc) else {
            continue;
        };
        let cached = members
            .first()
            .map(|&i| {
                cache.contains_servable(candidates[i].form.fingerprint, enc, catalog, versions)
            })
            .unwrap_or(false);
        if members.len() < 2 && !cached {
            // Conflicts whittled the group below the sharing threshold;
            // release its regions so fusion can still use them.
            for &i in &members {
                let c = &candidates[i];
                taken[c.query].retain(|p| p != &c.path);
            }
            continue;
        }
        let rep = &candidates[members[0]];
        groups.push(Group {
            plan: rep.plan.clone(),
            form: rep.form.clone(),
            fused: false,
            members: members
                .into_iter()
                .map(|i| GroupMember {
                    cand: i,
                    comp: Expr::boolean(true),
                    mapping: None,
                })
                .collect(),
        });
    }

    // Fusion pass over the remaining candidates: bucket by shape (root
    // operator + scanned table set), fold `fuse` across distinct queries.
    let fuse_ctx = FuseContext::new(gen.clone());
    let mut attempts = 0usize;
    let shape_of = |c: &Candidate| {
        let mut tables = c.plan.scanned_tables();
        tables.dedup();
        format!("{}|{}", c.plan.op_name(), tables.join(","))
    };
    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    let mut bucket_order: Vec<String> = Vec::new();
    for &i in &order {
        let c = &candidates[i];
        if taken[c.query].iter().any(|p| paths_overlap(p, &c.path)) {
            continue;
        }
        let key = shape_of(c);
        let b = buckets.entry(key.clone()).or_default();
        if b.is_empty() {
            bucket_order.push(key);
        }
        b.push(i);
    }

    for key in bucket_order {
        let Some(bucket) = buckets.remove(&key) else {
            continue;
        };
        let mut distinct: Vec<usize> = Vec::new();
        let mut seen_queries: Vec<usize> = Vec::new();
        for &i in &bucket {
            let c = &candidates[i];
            if seen_queries.contains(&c.query) {
                continue;
            }
            if taken[c.query].iter().any(|p| paths_overlap(p, &c.path)) {
                continue;
            }
            seen_queries.push(c.query);
            distinct.push(i);
        }
        if distinct.len() < 2 {
            continue;
        }
        let base = distinct[0];
        let mut plan = candidates[base].plan.clone();
        let mut members = vec![GroupMember {
            cand: base,
            comp: Expr::boolean(true),
            mapping: None,
        }];
        for &i in &distinct[1..] {
            if attempts >= cfg.max_fuse_attempts {
                break;
            }
            attempts += 1;
            let Some(f) = fuse(&plan, &candidates[i].plan, &fuse_ctx) else {
                continue;
            };
            // Folding: P's columns survive under their ids, so prior
            // compensations/mappings remain valid once restricted by L.
            for m in &mut members {
                m.comp = simplify_filter(&m.comp.clone().and(f.left.clone()));
            }
            members.push(GroupMember {
                cand: i,
                comp: simplify_filter(&f.right),
                mapping: Some(f.mapping.clone()),
            });
            plan = f.plan;
        }
        if members.len() < 2 {
            continue;
        }
        // Representative members of a fused group need an explicit
        // (identity) mapping so they splice through the compensation
        // path rather than slot alignment.
        for m in &mut members {
            if m.mapping.is_none() {
                m.mapping = Some(HashMap::new());
            }
        }
        for m in &members {
            let c = &candidates[m.cand];
            taken[c.query].push(c.path.clone());
        }
        let form = canonical_form(&plan);
        groups.push(Group {
            plan,
            form,
            fused: true,
            members,
        });
    }

    groups
}

// ---------------------------------------------------------------------
// Group execution and splicing
// ---------------------------------------------------------------------

/// Whether `optimized` produces the same positional row layout as
/// `original`: equal arity with equal types per position. Column ids and
/// names may differ — splicing aligns rows by position, never by id.
fn layout_preserved(optimized: &LogicalPlan, original: &LogicalPlan) -> bool {
    let a = optimized.schema();
    let b = original.schema();
    a.fields().len() == b.fields().len()
        && a.fields()
            .iter()
            .zip(b.fields())
            .all(|(x, y)| x.data_type == y.data_type)
}

#[allow(clippy::too_many_arguments)]
fn execute_group(
    group: Group,
    candidates: &[Candidate],
    cache: &mut ReuseCache,
    breaker: &mut FailureBreaker,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
    gen: &IdGen,
    metrics: &ExecMetrics,
    versions: &HashMap<String, u64>,
    optimize: Option<OptimizeFn<'_>>,
    out: &mut WorkloadOutcome,
) {
    // The shared plan must satisfy both the structural validator and the
    // semantic analyzer before we spend anything executing it.
    if group.plan.validate().is_err() {
        return;
    }
    let violations = analyze_plan(&group.plan);
    if !violations.is_empty() {
        for m in &group.members {
            let q = candidates[m.cand].query;
            out.notes[q].push(format!(
                "reuse group {} rejected by analyzer ({} violations)",
                group.form.fingerprint,
                violations.len()
            ));
        }
        return;
    }

    let fp = group.form.fingerprint;
    let fp_key = fp.to_string();

    // Circuit breaker: a fingerprint whose shared executions keep failing
    // stops forming groups; consumers simply run their originals.
    if !breaker.allows(fp.0) {
        for m in &group.members {
            let q = candidates[m.cand].query;
            out.notes[q].push(format!(
                "reuse group {fp}: circuit breaker open after repeated shared failures; running unshared"
            ));
        }
        return;
    }

    let mut queries: Vec<usize> = group
        .members
        .iter()
        .map(|m| candidates[m.cand].query)
        .collect();
    queries.sort_unstable();
    queries.dedup();

    let fault = ctx.fault_policy();
    // CacheLookup fault point: a forced miss — fall through to cold
    // execution rather than trusting the warm entry.
    let hit = if fault
        .inject_reuse(ReuseFaultSite::CacheLookup, &fp_key, 0)
        .is_err()
    {
        metrics.add_fault_injected();
        None
    } else {
        cache.lookup(fp, &group.form.encoding, catalog, versions, metrics)
    };
    // Maintainability fallbacks recorded during the lookup (e.g. a
    // float-SUM entry that could not be refreshed in place) are typed
    // notes for every consumer, never strict failures.
    for note in cache.drain_rejections() {
        for &q in &queries {
            out.notes[q].push(note.clone());
        }
    }
    let cache_hit = hit.is_some();
    let refreshed_delta_rows = hit.as_ref().and_then(|h| h.refreshed_delta_rows);
    let (rows, slots): (Arc<Vec<Row>>, Vec<String>) = match hit {
        Some(h) => (h.rows, h.slots),
        None => {
            // Run the shared plan through the caller's optimizer when the
            // result keeps the output layout (slots and compensations are
            // positional, so field order and types must survive; ids and
            // names are free to change under rewrites).
            let exec_plan = optimize
                .map(|f| f(&group.plan))
                .filter(|o| {
                    layout_preserved(o, &group.plan)
                        && o.validate().is_ok()
                        && analyze_plan(o).is_empty()
                })
                .unwrap_or_else(|| group.plan.clone());
            let executed = match execute_shared(&exec_plan, catalog, ctx, metrics, &fp_key) {
                Ok(output) => output,
                Err(e) => {
                    // The group is one failure domain; fence it off. Every
                    // consumer detaches — keeps its un-spliced original
                    // plan and re-executes independently — so one bad
                    // shared plan never takes down the whole batch.
                    metrics.add_shared_group_failure();
                    // Cancellation, deadlines, and budgets are verdicts on
                    // the *batch*, not on this fingerprint; only failures
                    // the fallback path can absorb count toward the
                    // breaker.
                    if e.allows_fallback() && breaker.record_failure(fp.0) {
                        metrics.add_circuit_breaker_trip();
                    }
                    for m in &group.members {
                        let q = candidates[m.cand].query;
                        metrics.add_consumer_detached();
                        out.notes[q].push(format!(
                            "shared subplan {fp} failed ({e}); consumer detached, re-executing unshared"
                        ));
                    }
                    return;
                }
            };
            breaker.record_success(fp.0);
            metrics.add_shared_subplan_executed();
            (Arc::new(executed.rows), group.form.slots.clone())
        }
    };

    let mut spliced = 0usize;
    for (i, m) in group.members.iter().enumerate() {
        let c = &candidates[m.cand];
        // Splice fault point: detaches just this consumer; the rest of
        // the group keeps sharing.
        if fault
            .inject_reuse(ReuseFaultSite::Splice, &format!("{fp_key}/{i}"), 0)
            .is_err()
        {
            metrics.add_fault_injected();
            metrics.add_consumer_detached();
            out.notes[c.query].push(format!(
                "reuse group {fp}: injected splice fault; consumer detached, running unshared"
            ));
            continue;
        }
        // Certificate gate: every splice must be re-proven sound from the
        // consumer and shared plans themselves before any row is served.
        // Exact members re-derive canonical equality; fused members
        // discharge the mapping/compensation obligations of §III.A.
        let certificate = match &m.mapping {
            None => certify_exact_splice(&c.plan, &group.form.encoding, &slots),
            Some(mapping) => certify_fused_splice(&c.plan, &group.plan, mapping, &m.comp),
        };
        if let Err(v) = certificate {
            metrics.add_reuse_certificate_rejected();
            metrics.add_consumer_detached();
            let msg = format!(
                "reuse group {fp}: splice rejected by reuse prover ({}); \
                 consumer detached, running unshared",
                render_violations(&v)
            );
            out.notes[c.query].push(msg.clone());
            out.rejections.push(msg);
            continue;
        }
        metrics.add_reuse_certificate_issued();
        let replacement = match &m.mapping {
            None => splice_exact(&c.plan, &c.form.slots, &slots, &rows),
            Some(mapping) => splice_fused(&c.plan, &group.plan, mapping, &m.comp, &rows, gen),
        };
        let Some(replacement) = replacement else {
            metrics.add_consumer_detached();
            out.notes[c.query].push(format!(
                "reuse group {fp}: consumer could not be aligned; running unshared"
            ));
            continue;
        };
        let rewritten = replace_at(&out.plans[c.query], &c.path, replacement);
        if rewritten.validate().is_ok() && analyze_plan(&rewritten).is_empty() {
            if cache_hit {
                metrics.add_reuse_cache_hit();
            }
            // Admission pressure (`admit_min_uses`) counts only consumers
            // that were actually served a validated splice.
            cache.observe(fp);
            out.notes[c.query].push(format!(
                "{} {}: {} node subplan shared across queries {:?} ({} rows, certified{}{})",
                if group.fused { "fused" } else { "shared" },
                fp,
                c.plan.node_count(),
                queries,
                rows.len(),
                if cache_hit { ", cached" } else { "" },
                match refreshed_delta_rows {
                    Some(n) => format!(", refreshed in place over {n} delta rows"),
                    None => String::new(),
                },
            ));
            out.plans[c.query] = rewritten;
            spliced += 1;
        } else {
            metrics.add_consumer_detached();
            out.notes[c.query].push(format!(
                "reuse group {fp}: spliced plan failed validation; reverted"
            ));
        }
    }

    // Admission happens strictly after the complete, validated execution
    // and after splicing — never mid-flight — gated by the CacheAdmit
    // fault point (a skipped admission only costs future batches a warm
    // hit). The CacheCorrupt point then silently flips a cached value so
    // chaos runs exercise the checksum defense on the next lookup.
    if !cache_hit {
        if fault
            .inject_reuse(ReuseFaultSite::CacheAdmit, &fp_key, 0)
            .is_err()
        {
            metrics.add_fault_injected();
        } else if let Some(deps) = DepStamps::for_plan(&group.plan, versions) {
            // Certificate gate: the canonical stamps must be re-proven
            // consistent with the plan's scanned tables and the live
            // catalog before the entry becomes servable to future batches.
            match certify_stamps(&group.plan, deps.as_slice(), versions) {
                Ok(_) => {
                    metrics.add_reuse_certificate_issued();
                    cache.admit(
                        fp,
                        &group.form.encoding,
                        Arc::clone(&rows),
                        group.form.slots.clone(),
                        &group.plan,
                        deps,
                        metrics,
                    );
                    if fault
                        .inject_reuse(ReuseFaultSite::CacheCorrupt, &fp_key, 0)
                        .is_err()
                    {
                        metrics.add_fault_injected();
                        cache.corrupt_entry(fp);
                    }
                }
                Err(v) => {
                    metrics.add_reuse_certificate_rejected();
                    let msg = format!(
                        "reuse group {fp}: admission stamps rejected by reuse prover ({}); \
                         result not cached",
                        render_violations(&v)
                    );
                    for &q in &queries {
                        out.notes[q].push(msg.clone());
                    }
                    out.rejections.push(msg);
                }
            }
        }
    }

    out.report.groups.push(GroupReport {
        fingerprint: fp.to_string(),
        queries,
        spliced,
        fused: group.fused,
        cache_hit,
        executed: !cache_hit,
        rows: rows.len(),
        subplan_nodes: group.plan.node_count(),
    });
}

/// Execute a shared subplan under the batch context's [`RetryPolicy`]:
/// transient failures (injected [`ReuseFaultSite::SharedExec`] faults or
/// real transient I/O) retry with exponential backoff, re-checking
/// cancellation and the merged deadline between attempts. Fatal errors
/// and exhausted retries propagate — the caller detaches every consumer.
fn execute_shared(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
    metrics: &ExecMetrics,
    fp_key: &str,
) -> fusion_common::Result<fusion_exec::QueryOutput> {
    let fault = ctx.fault_policy();
    let retry = ctx.retry_policy();
    let mut attempt: u32 = 0;
    loop {
        ctx.check()?;
        let injected = fault.inject_reuse(ReuseFaultSite::SharedExec, fp_key, attempt);
        if injected.is_err() {
            metrics.add_fault_injected();
        }
        let outcome =
            injected.and_then(|()| execute_plan_profiled(plan, catalog, ctx).map(|(o, _)| o));
        match outcome {
            Ok(output) => return Ok(output),
            Err(e) => {
                if !e.is_retryable() || attempt >= retry.max_retries {
                    return Err(e);
                }
                attempt += 1;
                metrics.add_retry();
                std::thread::sleep(retry.backoff(attempt));
            }
        }
    }
}

/// Splice for an exact member: the consumer's subplan is canonically
/// identical to the shared plan, so its rows are the shared rows permuted
/// into the consumer's output layout, under the consumer's own ids.
fn splice_exact(
    consumer: &LogicalPlan,
    consumer_slots: &[String],
    shared_slots: &[String],
    rows: &Arc<Vec<Row>>,
) -> Option<LogicalPlan> {
    let map = position_map(consumer_slots, shared_slots)?;
    let fields: Vec<Field> = consumer.schema().fields().to_vec();
    if fields.len() != map.len() {
        return None;
    }
    let identity = map.iter().enumerate().all(|(j, &k)| j == k);
    let rows: Vec<Row> = if identity {
        rows.as_ref().clone()
    } else {
        rows.iter()
            .map(|row| {
                map.iter()
                    .map(|&k| row.get(k).cloned().unwrap_or(fusion_common::Value::Null))
                    .collect()
            })
            .collect()
    };
    Some(LogicalPlan::ConstantTable(ConstantTable { fields, rows }))
}

/// Splice for a fused member: materialize the shared plan's schema under
/// fresh ids, filter by the member's compensation, and project the
/// member's output columns through its mapping — the paper's
/// `Project_M(outCols)(Filter_C(P))` reconstruction.
fn splice_fused(
    consumer: &LogicalPlan,
    shared: &LogicalPlan,
    mapping: &HashMap<fusion_common::ColumnId, fusion_common::ColumnId>,
    comp: &Expr,
    rows: &Arc<Vec<Row>>,
    gen: &IdGen,
) -> Option<LogicalPlan> {
    let shared_schema = shared.schema();
    // Fresh ids per splice instance: the same shared schema is spliced
    // into several queries, and column ids must stay unique per plan.
    let fresh: HashMap<fusion_common::ColumnId, fusion_common::ColumnId> = shared_schema
        .fields()
        .iter()
        .map(|f| (f.id, gen.fresh()))
        .collect();
    let ct_fields: Vec<Field> = shared_schema
        .fields()
        .iter()
        .map(|f| {
            Some(Field::new(
                *fresh.get(&f.id)?,
                f.name.clone(),
                f.data_type,
                f.nullable,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    let table = LogicalPlan::ConstantTable(ConstantTable {
        fields: ct_fields,
        rows: rows.as_ref().clone(),
    });
    let comp = comp.map_columns(&fresh);
    let filtered = if comp.is_true_literal() {
        table
    } else {
        LogicalPlan::Filter(Filter {
            input: Box::new(table),
            predicate: comp,
        })
    };
    let exprs: Vec<ProjExpr> = consumer
        .schema()
        .fields()
        .iter()
        .map(|f| {
            let src = mapping.get(&f.id).copied().unwrap_or(f.id);
            let src = fresh.get(&src).copied()?;
            Some(ProjExpr::new(f.id, f.name.clone(), Expr::Column(src)))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(LogicalPlan::Project(Project {
        input: Box::new(filtered),
        exprs,
    }))
}

/// Replace the subtree at `path` (child-index steps from the root).
fn replace_at(plan: &LogicalPlan, path: &[usize], replacement: LogicalPlan) -> LogicalPlan {
    match path.split_first() {
        None => replacement,
        Some((&step, rest)) => {
            let mut children: Vec<LogicalPlan> =
                plan.children().into_iter().cloned().collect();
            if let Some(child) = children.get_mut(step) {
                *child = replace_at(child, rest, replacement);
            }
            plan.with_new_children(children)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn paths_overlap_is_prefix_relation() {
        assert!(paths_overlap(&[], &[0, 1]));
        assert!(paths_overlap(&[0, 1], &[0]));
        assert!(paths_overlap(&[0, 1], &[0, 1]));
        assert!(!paths_overlap(&[0, 1], &[0, 2]));
        assert!(!paths_overlap(&[1], &[0, 1]));
    }

    #[test]
    fn report_share_rate_counts_distinct_queries() {
        let group = |queries: Vec<usize>, cache_hit: bool| GroupReport {
            fingerprint: String::new(),
            queries,
            spliced: 2,
            fused: false,
            cache_hit,
            executed: !cache_hit,
            rows: 0,
            subplan_nodes: 1,
        };
        let report = WorkloadReport {
            groups: vec![group(vec![0, 1], false), group(vec![1, 3], true)],
        };
        // Query 1 is in both groups but counts once.
        assert_eq!(report.queries_sharing(), 3);
        assert!((report.share_rate(4) - 0.75).abs() < 1e-9);
        assert_eq!(report.share_rate(0), 0.0);
        assert_eq!(report.cache_hits(), 1);
    }
}
