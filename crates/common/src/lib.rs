//! Shared foundation types for the athena-fusion query engine.
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! * [`DataType`] and [`Value`] — the scalar type system and runtime values,
//!   with total ordering and hashing so values can be used as group-by and
//!   join keys.
//! * [`ColumnId`] and [`IdGen`] — globally unique column identities. Every
//!   instantiation of a table scan allocates *fresh* identities, mirroring
//!   the convention described in the paper ("the engine follows the common
//!   practice of assigning new column identities to each instance of the
//!   same table"). Query fusion then reasons about mappings between
//!   identities rather than between names.
//! * [`Field`] / [`Schema`] — typed, identity-carrying schemas.
//! * [`FusionError`] / [`Result`] — the error type shared across crates.

pub mod error;
pub mod ident;
pub mod schema;
pub mod types;
pub mod value;

pub use error::{ErrorCode, FusionError, Result};
pub use ident::{ColumnId, IdGen};
pub use schema::{Field, Schema, SchemaRef};
pub use types::DataType;
pub use value::Value;
