// One-shot benchmark driver: aborting on a setup or I/O failure is the
// desired behavior, so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! End-to-end TPC-DS query benchmarks, baseline vs fused — the Criterion
//! counterpart of the `paper_figures` binary (Figures 1 and 2 report the
//! same runs with medians and byte counters).

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_bench::Harness;
use fusion_tpcds::featured_queries;

fn bench_queries(c: &mut Criterion) {
    let scale = std::env::var("TPCDS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.1);
    let harness = Harness::new(scale);
    let mut group = c.benchmark_group("tpcds");
    group.sample_size(10);

    for q in featured_queries() {
        group.bench_function(format!("{}_baseline", q.id), |b| {
            b.iter(|| harness.baseline.sql(&q.sql).unwrap())
        });
        group.bench_function(format!("{}_fused", q.id), |b| {
            b.iter(|| harness.fused.sql(&q.sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
