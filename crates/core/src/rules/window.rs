//! The `GroupByJoinToWindow` rule (§IV.A).
//!
//! Pattern: `P1 ⨝_C GroupBy_{K,A}(P2)` where `Fuse(P1, P2)` succeeds and
//! the join condition equates the grouping columns with their mapped
//! twins. The aggregate-and-join-back is replaced by a window aggregate
//! partitioned on the keys over the single fused input — evaluating and
//! reading the common expression once. Non-trivial compensations are
//! handled per the paper's footnote 4: the window aggregates are masked
//! with `R`, a windowed `COUNT(*) FILTER (R) > 0` certifies that the
//! join partner exists, and `L` filters the probe side.
//!
//! The rule operates on the flattened n-ary join (§IV.E), so the two
//! fusable inputs may be separated by other joins, as in the paper's Q01
//! walkthrough. Key-equality conjuncts are left in the pool: after the
//! rewrite they degenerate to `k = k`, whose SQL semantics (`NULL = NULL`
//! is not TRUE) provide exactly the `IS NOT NULL` compensation the paper
//! prescribes.

use fusion_expr::WindowExpr;
use fusion_plan::{Aggregate, LogicalPlan, Project, ProjExpr, Window};

use super::graph::JoinGraph;
use super::Rule;
use crate::fuse::{fuse, FuseContext};

pub struct GroupByJoinToWindow;

impl Rule for GroupByJoinToWindow {
    fn name(&self) -> &'static str {
        "GroupByJoinToWindow"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &FuseContext) -> Option<LogicalPlan> {
        let graph = JoinGraph::from_plan(plan)?;
        let n = graph.inputs.len();
        if n < 2 {
            return None;
        }
        for j in 0..n {
            let agg = match &graph.inputs[j] {
                LogicalPlan::Aggregate(a) if !a.group_by.is_empty() => a,
                _ => continue,
            };
            if !window_expressible(agg) {
                continue;
            }
            for i in 0..n {
                if i == j {
                    continue;
                }
                if let Some(replacement) =
                    try_pair(&graph, &graph.inputs[i], agg, ctx)
                {
                    let mut g = graph.clone();
                    g.inputs[i] = replacement;
                    g.inputs.remove(j);
                    return Some(g.rebuild());
                }
            }
        }
        None
    }
}

/// Window execution supports masked (but not distinct) aggregates.
fn window_expressible(agg: &Aggregate) -> bool {
    !agg.aggregates.is_empty() && agg.aggregates.iter().all(|a| !a.agg.distinct)
}

fn try_pair(
    graph: &JoinGraph,
    p1: &LogicalPlan,
    agg: &Aggregate,
    ctx: &FuseContext,
) -> Option<LogicalPlan> {
    // The GroupBy's output must really be keyed by its grouping columns —
    // discharged via the property lattice so a malformed aggregate (or a
    // future rule emitting one) cannot smuggle a row-multiplying join
    // into the window rewrite.
    let agg_plan = LogicalPlan::Aggregate(agg.clone());
    if !crate::analysis::plan_has_key(&agg_plan, &agg.group_by) {
        return None;
    }

    let fused = fuse(p1, &agg.input, ctx)?;

    // Every grouping column must be equated with its mapped twin in the
    // fused plan by the conjunct pool.
    let mut partition = Vec::with_capacity(agg.group_by.len());
    for k in &agg.group_by {
        let mk = fused.mapped_id(*k);
        if !graph.columns_equated(*k, mk) {
            return None;
        }
        partition.push(mk);
    }

    // Window aggregates over the fused plan. With non-trivial
    // compensations (footnote 4 of the paper) the aggregates only see the
    // P2 side's rows via masks, mirroring non-scalar aggregate fusion.
    let window_assigns: Vec<(fusion_common::ColumnId, fusion_plan::WindowAssign)> = agg
        .aggregates
        .iter()
        .map(|a| {
            let w_id = ctx.gen.fresh();
            let mask = crate::fuse::simp(fused.map(&a.agg.mask).and(fused.right.clone()));
            (
                a.id,
                fusion_plan::WindowAssign {
                    id: w_id,
                    name: format!("$w_{}", a.name),
                    window: WindowExpr::new(
                        a.agg.func,
                        a.agg.arg.as_ref().map(|e| fused.map(e)),
                        partition.clone(),
                    )
                    .with_mask(mask),
                },
            )
        })
        .collect();

    // Compensations (analogous to the compensating COUNT(*) of §III.E):
    // a windowed COUNT(*) FILTER(R) > 0 certifies the join partner
    // exists; the L filter keeps only P1's rows.
    let mut window_exprs: Vec<fusion_plan::WindowAssign> =
        window_assigns.iter().map(|(_, w)| w.clone()).collect();
    let mut post_filters: Vec<fusion_expr::Expr> = Vec::new();
    if !fused.right.is_true_literal() {
        let count_id = ctx.gen.fresh();
        window_exprs.push(fusion_plan::WindowAssign {
            id: count_id,
            name: "$w_countR".into(),
            window: WindowExpr::new(fusion_expr::AggFunc::CountStar, None, partition.clone())
                .with_mask(fused.right.clone()),
        });
        post_filters.push(fusion_expr::col(count_id).gt(fusion_expr::lit(0i64)));
    }
    if !fused.left.is_true_literal() {
        post_filters.push(fused.left.clone());
    }

    let mut windowed = LogicalPlan::Window(Window {
        input: Box::new(fused.plan.clone()),
        exprs: window_exprs,
    });
    if !post_filters.is_empty() {
        windowed = LogicalPlan::Filter(fusion_plan::Filter {
            input: Box::new(windowed),
            predicate: fusion_expr::conjoin(post_filters),
        });
    }

    // Restore the aggregate's output identities: group columns map to
    // their fused twins, aggregate outputs to the window columns. All
    // fused/window outputs pass through so residual conditions and other
    // join conjuncts keep working.
    let mut exprs: Vec<ProjExpr> = windowed
        .schema()
        .fields()
        .iter()
        .map(ProjExpr::passthrough)
        .collect();
    let agg_schema = LogicalPlan::Aggregate(agg.clone()).schema();
    for field in agg_schema.fields() {
        if exprs.iter().any(|pe| pe.id == field.id) {
            continue; // identity-mapped group column already exposed
        }
        if let Some((_, w)) = window_assigns.iter().find(|(orig, _)| *orig == field.id) {
            exprs.push(ProjExpr::new(
                field.id,
                field.name.clone(),
                fusion_expr::col(w.id),
            ));
        } else {
            // A group column mapped to a different fused column.
            let src = fused.mapped_id(field.id);
            exprs.push(ProjExpr::new(
                field.id,
                field.name.clone(),
                fusion_expr::col(src),
            ));
        }
    }

    Some(LogicalPlan::Project(Project {
        input: Box::new(windowed),
        exprs,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen, Value};
    use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
    use fusion_expr::{col, AggregateExpr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{JoinType, PlanBuilder};

    fn sales_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("store", DataType::Int64, true),
            ColumnDef::new("item", DataType::Int64, true),
            ColumnDef::new("price", DataType::Float64, true),
        ]
    }

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "sales",
            vec![
                fusion_exec::table::TableColumn {
                    name: "store".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                fusion_exec::table::TableColumn {
                    name: "item".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                fusion_exec::table::TableColumn {
                    name: "price".into(),
                    data_type: DataType::Float64,
                    nullable: true,
                },
            ],
        );
        let rows: Vec<(Option<i64>, i64, f64)> = vec![
            (Some(1), 10, 5.0),
            (Some(1), 11, 15.0),
            (Some(2), 10, 7.0),
            (Some(2), 12, 9.0),
            (Some(2), 13, 2.0),
            (None, 14, 4.0), // NULL store: must vanish from the join
        ];
        for (s, i, p) in rows {
            b.add_row(vec![
                s.map(Value::Int64).unwrap_or(Value::Null),
                Value::Int64(i),
                Value::Float64(p),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register(b.build());
        c
    }

    /// The motivating Q65-like shape: per-(store,item) revenue joined with
    /// per-store AVG of that same revenue.
    fn q65_like(gen: &IdGen) -> fusion_plan::LogicalPlan {
        // sc: GroupBy(store,item) SUM(price)
        let sc = PlanBuilder::scan(gen, "sales", &sales_cols());
        let (s1, i1, p1) = (
            sc.col("store").unwrap(),
            sc.col("item").unwrap(),
            sc.col("price").unwrap(),
        );
        let sc = sc.aggregate(
            vec![s1, i1],
            vec![("revenue", AggregateExpr::sum(col(p1)))],
        );
        let revenue = sc.col("revenue").unwrap();

        // sb: GroupBy(store) AVG(revenue) over the same subexpression.
        let sa = PlanBuilder::scan(gen, "sales", &sales_cols());
        let (s2, i2, p2) = (
            sa.col("store").unwrap(),
            sa.col("item").unwrap(),
            sa.col("price").unwrap(),
        );
        let sa = sa.aggregate(
            vec![s2, i2],
            vec![("revenue", AggregateExpr::sum(col(p2)))],
        );
        let rev2 = sa.col("revenue").unwrap();
        let sb = sa.aggregate(vec![s2], vec![("ave", AggregateExpr::avg(col(rev2)))]);
        let ave = sb.col("ave").unwrap();

        // Join on store, keep rows with revenue <= ave.
        sc.join(sb.build(), JoinType::Inner, col(s1).eq_to(col(s2)))
            .filter(col(revenue).lt_eq(col(ave)))
            .build()
    }

    #[test]
    fn rewrites_group_join_to_window_and_preserves_results() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let plan = q65_like(&gen);
        plan.validate().unwrap();

        let rewritten = apply_everywhere(&GroupByJoinToWindow, &plan, &ctx)
            .expect("rule should fire");
        rewritten.validate().unwrap();

        // The rewrite removes one of the two aggregate pipelines: the
        // base table is now scanned once.
        assert_eq!(plan.scanned_tables().len(), 2);
        assert_eq!(rewritten.scanned_tables().len(), 1);
        assert!(rewritten.any(&|p| matches!(p, LogicalPlan::Window(_))));

        // Results identical.
        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        assert!(!base.rows.is_empty());
    }

    #[test]
    fn does_not_fire_without_fusable_inputs() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        // Join with an aggregate over a *different* table.
        let a = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let s1 = a.col("store").unwrap();
        let other = PlanBuilder::scan(&gen, "returns", &sales_cols());
        let (s2, p2) = (other.col("store").unwrap(), other.col("price").unwrap());
        let agg = other.aggregate(vec![s2], vec![("t", AggregateExpr::sum(col(p2)))]);
        let plan = a
            .join(agg.build(), JoinType::Inner, col(s1).eq_to(col(s2)))
            .build();
        assert!(apply_everywhere(&GroupByJoinToWindow, &plan, &ctx).is_none());
    }

    #[test]
    fn does_not_fire_when_keys_not_joined() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let (s1, i1) = (a.col("store").unwrap(), a.col("item").unwrap());
        let b = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let (s2, p2) = (b.col("store").unwrap(), b.col("price").unwrap());
        let agg = b.aggregate(vec![s2], vec![("t", AggregateExpr::sum(col(p2)))]);
        // Join on item = store — not the grouping key pairing.
        let plan = a
            .join(agg.build(), JoinType::Inner, col(i1).eq_to(col(s2)))
            .build();
        let _ = s1;
        assert!(apply_everywhere(&GroupByJoinToWindow, &plan, &ctx).is_none());
    }
}

#[cfg(test)]
mod footnote4_tests {
    use super::*;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen, Value};
    use fusion_exec::table::TableColumn;
    use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
    use fusion_expr::{col, lit, AggregateExpr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{JoinType, PlanBuilder};

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("store", DataType::Int64, true),
            ColumnDef::new("qty", DataType::Int64, true),
            ColumnDef::new("price", DataType::Float64, true),
        ]
    }

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "sales",
            vec![
                TableColumn {
                    name: "store".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "qty".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "price".into(),
                    data_type: DataType::Float64,
                    nullable: true,
                },
            ],
        );
        let rows: Vec<(Option<i64>, i64, f64)> = vec![
            (Some(1), 5, 10.0),
            (Some(1), 50, 20.0),
            (Some(2), 5, 30.0),
            (Some(2), 7, 40.0),
            (Some(3), 60, 50.0), // store 3 has no qty<20 rows
            (None, 5, 60.0),
        ];
        for (s, q, p) in rows {
            b.add_row(vec![
                s.map(Value::Int64).unwrap_or(Value::Null),
                Value::Int64(q),
                Value::Float64(p),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register(b.build());
        c
    }

    /// Footnote 4: P1 and the aggregate's input differ by a filter. The
    /// rewrite must use masked window aggregates plus the COUNT(*) > 0
    /// existence compensation, and the L-filter for the probe side.
    #[test]
    fn nontrivial_compensations_use_masked_windows() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());

        // P1: sales rows with qty >= 10.
        let a = PlanBuilder::scan(&gen, "sales", &cols());
        let (s1, q1, p1c) = (
            a.col("store").unwrap(),
            a.col("qty").unwrap(),
            a.col("price").unwrap(),
        );
        let left = a.filter(col(q1).gt_eq(lit(10i64)));
        let _ = p1c;

        // P2: AVG(price) per store over rows with qty < 20.
        let b = PlanBuilder::scan(&gen, "sales", &cols());
        let (s2, q2, p2c) = (
            b.col("store").unwrap(),
            b.col("qty").unwrap(),
            b.col("price").unwrap(),
        );
        let agg = b
            .filter(col(q2).lt(lit(20i64)))
            .aggregate(vec![s2], vec![("avg_p", AggregateExpr::avg(col(p2c)))])
            .build();

        let plan = left
            .join(agg, JoinType::Inner, col(s1).eq_to(col(s2)))
            .build();
        plan.validate().unwrap();

        let rewritten =
            apply_everywhere(&GroupByJoinToWindow, &plan, &ctx).expect("rule should fire");
        rewritten.validate().unwrap();
        assert_eq!(rewritten.scanned_tables().len(), 1);
        // The window aggregates must carry masks.
        let mut masked = 0;
        rewritten.visit(&mut |p| {
            if let LogicalPlan::Window(w) = p {
                masked += w.exprs.iter().filter(|a| !a.window.unmasked()).count();
            }
        });
        assert!(masked >= 2, "AVG mask + COUNT compensation expected:\n{}", rewritten.display());

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        // Store 1: qty>=10 row joins avg over its qty<20 rows; store 3's
        // qty>=10 row must NOT appear (no qty<20 partner).
        assert!(!base.rows.is_empty());
        assert!(base
            .rows
            .iter()
            .all(|r| r[0] != Value::Int64(3)));
    }

    /// Masked source aggregates (FILTER clauses) are also expressible.
    #[test]
    fn masked_source_aggregates_supported() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk_scan = || PlanBuilder::scan(&gen, "sales", &cols());
        let a = mk_scan();
        let (s1, _q1) = (a.col("store").unwrap(), a.col("qty").unwrap());
        let b = mk_scan();
        let (s2, q2, p2c) = (
            b.col("store").unwrap(),
            b.col("qty").unwrap(),
            b.col("price").unwrap(),
        );
        let agg = b
            .aggregate(
                vec![s2],
                vec![(
                    "sum_small",
                    AggregateExpr::sum(col(p2c)).with_mask(col(q2).lt(lit(10i64))),
                )],
            )
            .build();
        let plan = a
            .join(agg, JoinType::Inner, col(s1).eq_to(col(s2)))
            .build();

        let rewritten =
            apply_everywhere(&GroupByJoinToWindow, &plan, &ctx).expect("rule should fire");
        rewritten.validate().unwrap();

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
    }
}
