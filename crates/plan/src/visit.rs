//! Plan tree traversal and rewriting helpers.

use crate::plan::LogicalPlan;

impl LogicalPlan {
    /// Bottom-up rewrite: children first, then `f` on the rebuilt node.
    /// `f` returns `Some(replacement)` to rewrite or `None` to keep.
    pub fn transform_up(&self, f: &mut dyn FnMut(&LogicalPlan) -> Option<LogicalPlan>) -> LogicalPlan {
        let new_children: Vec<LogicalPlan> = self
            .children()
            .into_iter()
            .map(|c| c.transform_up(f))
            .collect();
        let rebuilt = if new_children.is_empty() {
            self.clone()
        } else {
            self.with_new_children(new_children)
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// Top-down rewrite: `f` on the node first (repeatedly, until it
    /// declines), then recurse into the (possibly new) children.
    pub fn transform_down(
        &self,
        f: &mut dyn FnMut(&LogicalPlan) -> Option<LogicalPlan>,
    ) -> LogicalPlan {
        let mut node = self.clone();
        let mut fuel = 100; // defensive cap against non-converging rewrites
        while fuel > 0 {
            match f(&node) {
                Some(next) => node = next,
                None => break,
            }
            fuel -= 1;
        }
        let new_children: Vec<LogicalPlan> = node
            .children()
            .into_iter()
            .map(|c| c.transform_down(f))
            .collect();
        if new_children.is_empty() {
            node
        } else {
            node.with_new_children(new_children)
        }
    }

    /// Pre-order visit.
    pub fn visit(&self, f: &mut dyn FnMut(&LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Does any node in the tree satisfy the predicate?
    pub fn any(&self, f: &dyn Fn(&LogicalPlan) -> bool) -> bool {
        if f(self) {
            return true;
        }
        self.children().iter().any(|c| c.any(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Filter, Limit, Scan};
    use fusion_common::{DataType, Field, IdGen};
    use fusion_expr::{col, lit};

    fn sample(gen: &IdGen) -> LogicalPlan {
        let id = gen.fresh();
        let scan = LogicalPlan::Scan(Scan {
            table: "t".into(),
            fields: vec![Field::new(id, "a", DataType::Int64, false)],
            column_indices: vec![0],
            filters: vec![],
        });
        let filter = LogicalPlan::Filter(Filter {
            input: Box::new(scan),
            predicate: col(id).gt(lit(0i64)),
        });
        LogicalPlan::Limit(Limit {
            input: Box::new(filter),
            fetch: 10,
        })
    }

    #[test]
    fn transform_up_rewrites_bottom_first() {
        let gen = IdGen::new();
        let plan = sample(&gen);
        let mut order = Vec::new();
        plan.transform_up(&mut |p| {
            order.push(p.op_name());
            None
        });
        assert_eq!(order, vec!["Scan", "Filter", "Limit"]);
    }

    #[test]
    fn transform_up_replaces_nodes() {
        let gen = IdGen::new();
        let plan = sample(&gen);
        // Drop every Limit.
        let rewritten = plan.transform_up(&mut |p| match p {
            LogicalPlan::Limit(l) => Some(l.input.as_ref().clone()),
            _ => None,
        });
        assert_eq!(rewritten.op_name(), "Filter");
        assert_eq!(rewritten.node_count(), 2);
    }

    #[test]
    fn visit_and_any() {
        let gen = IdGen::new();
        let plan = sample(&gen);
        let mut n = 0;
        plan.visit(&mut |_| n += 1);
        assert_eq!(n, 3);
        assert!(plan.any(&|p| matches!(p, LogicalPlan::Scan(_))));
        assert!(!plan.any(&|p| matches!(p, LogicalPlan::Window(_))));
    }

    #[test]
    fn transform_down_sees_parent_first() {
        let gen = IdGen::new();
        let plan = sample(&gen);
        let mut order = Vec::new();
        plan.transform_down(&mut |p| {
            order.push(p.op_name());
            None
        });
        assert_eq!(order, vec!["Limit", "Filter", "Scan"]);
    }
}
