//! Name-resolution scopes.

use fusion_common::{ColumnId, FusionError, Result};

/// One visible column: an optional table qualifier, a name, an identity.
#[derive(Debug, Clone)]
pub struct ScopeItem {
    pub qualifier: Option<String>,
    pub name: String,
    pub id: ColumnId,
}

/// The set of columns visible to expressions at some point of planning.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub items: Vec<ScopeItem>,
}

impl Scope {
    /// Resolve a possibly-qualified identifier to a column id.
    pub fn resolve(&self, parts: &[String]) -> Result<ColumnId> {
        match parts {
            [name] => {
                let name_l = name.to_ascii_lowercase();
                let mut hits = self
                    .items
                    .iter()
                    .filter(|i| i.name.to_ascii_lowercase() == name_l);
                match (hits.next(), hits.next()) {
                    (Some(item), None) => Ok(item.id),
                    (Some(_), Some(_)) => Err(FusionError::Sql(format!(
                        "column `{name}` is ambiguous"
                    ))),
                    (None, _) => Err(FusionError::Sql(format!("column `{name}` not found"))),
                }
            }
            [qualifier, name] => {
                let q_l = qualifier.to_ascii_lowercase();
                let name_l = name.to_ascii_lowercase();
                let mut hits = self.items.iter().filter(|i| {
                    i.qualifier.as_deref() == Some(q_l.as_str())
                        && i.name.to_ascii_lowercase() == name_l
                });
                match (hits.next(), hits.next()) {
                    (Some(item), None) => Ok(item.id),
                    (Some(_), Some(_)) => Err(FusionError::Sql(format!(
                        "column `{qualifier}.{name}` is ambiguous"
                    ))),
                    (None, _) => Err(FusionError::Sql(format!(
                        "column `{qualifier}.{name}` not found"
                    ))),
                }
            }
            _ => Err(FusionError::Sql(format!(
                "unsupported identifier `{}`",
                parts.join(".")
            ))),
        }
    }

    /// Can the identifier be resolved here?
    pub fn can_resolve(&self, parts: &[String]) -> bool {
        self.resolve(parts).is_ok()
    }

    /// The same columns under a single new qualifier (subquery alias).
    pub fn requalified(&self, qualifier: &str) -> Scope {
        Scope {
            items: self
                .items
                .iter()
                .map(|i| ScopeItem {
                    qualifier: Some(qualifier.to_ascii_lowercase()),
                    name: i.name.clone(),
                    id: i.id,
                })
                .collect(),
        }
    }

    /// Items visible under the given qualifier (for `t.*`).
    pub fn qualified_items(&self, qualifier: &str) -> Vec<&ScopeItem> {
        let q = qualifier.to_ascii_lowercase();
        self.items
            .iter()
            .filter(|i| i.qualifier.as_deref() == Some(q.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> Scope {
        Scope {
            items: vec![
                ScopeItem {
                    qualifier: Some("t".into()),
                    name: "a".into(),
                    id: ColumnId(1),
                },
                ScopeItem {
                    qualifier: Some("u".into()),
                    name: "a".into(),
                    id: ColumnId(2),
                },
                ScopeItem {
                    qualifier: Some("t".into()),
                    name: "b".into(),
                    id: ColumnId(3),
                },
            ],
        }
    }

    #[test]
    fn unqualified_resolution_and_ambiguity() {
        let s = scope();
        assert_eq!(s.resolve(&["b".into()]).unwrap(), ColumnId(3));
        assert!(s.resolve(&["a".into()]).is_err()); // ambiguous
        assert!(s.resolve(&["zz".into()]).is_err());
    }

    #[test]
    fn qualified_resolution() {
        let s = scope();
        assert_eq!(s.resolve(&["t".into(), "a".into()]).unwrap(), ColumnId(1));
        assert_eq!(s.resolve(&["U".into(), "A".into()]).unwrap(), ColumnId(2));
        assert!(s.resolve(&["v".into(), "a".into()]).is_err());
    }

    #[test]
    fn requalify_replaces_qualifiers() {
        let s = scope().requalified("x");
        assert_eq!(s.resolve(&["x".into(), "a".into()]).err().map(|_| ()), Some(()));
        // `a` is still ambiguous under the shared qualifier.
        assert_eq!(s.resolve(&["x".into(), "b".into()]).unwrap(), ColumnId(3));
    }
}
