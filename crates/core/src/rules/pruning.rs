//! Column pruning.
//!
//! A whole-plan top-down pass: each node receives the set of columns its
//! parent requires and rebuilds itself reading only what is needed. At
//! the leaves this narrows table scans, which — together with partition
//! pruning — is what the bytes-scanned meter (the paper's billing metric)
//! observes. Fused plans benefit automatically: a fused scan whose extra
//! columns turn out unused gets re-narrowed here.

use std::collections::HashSet;

use fusion_common::ColumnId;
use fusion_plan::{
    Aggregate, ConstantTable, EnforceSingleRow, Filter, Join, Limit, LogicalPlan,
    MarkDistinct, Project, Scan, Sort, UnionAll, Window,
};

/// Prune the whole plan to its own output columns.
pub fn prune_columns(plan: &LogicalPlan) -> LogicalPlan {
    let required: HashSet<ColumnId> = plan.schema().ids().into_iter().collect();
    prune(plan, &required)
}

fn prune(plan: &LogicalPlan, required: &HashSet<ColumnId>) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan(s) => {
            let mut needed: HashSet<ColumnId> = required.clone();
            for f in &s.filters {
                needed.extend(f.columns());
            }
            let mut fields = Vec::new();
            let mut indices = Vec::new();
            for (f, &ord) in s.fields.iter().zip(&s.column_indices) {
                if needed.contains(&f.id) {
                    fields.push(f.clone());
                    indices.push(ord);
                }
            }
            if fields.is_empty() {
                // Row counts must be preserved: keep the narrowest column.
                let pick = s
                    .fields
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, f)| f.data_type.fixed_width().unwrap_or(16))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                fields.push(s.fields[pick].clone());
                indices.push(s.column_indices[pick]);
            }
            LogicalPlan::Scan(Scan {
                table: s.table.clone(),
                fields,
                column_indices: indices,
                filters: s.filters.clone(),
            })
        }
        LogicalPlan::Filter(f) => {
            let mut child_req = required.clone();
            child_req.extend(f.predicate.columns());
            LogicalPlan::Filter(Filter {
                input: Box::new(prune(&f.input, &child_req)),
                predicate: f.predicate.clone(),
            })
        }
        LogicalPlan::Project(p) => {
            let mut kept: Vec<_> = p
                .exprs
                .iter()
                .filter(|pe| required.contains(&pe.id))
                .cloned()
                .collect();
            if kept.is_empty() {
                // Preserve cardinality with the cheapest expression.
                let pick = p
                    .exprs
                    .iter()
                    .find(|pe| matches!(pe.expr, fusion_expr::Expr::Column(_)))
                    .or_else(|| p.exprs.first())
                    .cloned();
                if let Some(pe) = pick {
                    kept.push(pe);
                }
            }
            let mut child_req = HashSet::new();
            for pe in &kept {
                child_req.extend(pe.expr.columns());
            }
            LogicalPlan::Project(Project {
                input: Box::new(prune(&p.input, &child_req)),
                exprs: kept,
            })
        }
        LogicalPlan::Join(j) => {
            let left_schema = j.left.schema();
            let right_schema = j.right.schema();
            let cond_cols = j.condition.columns();
            let mut left_req: HashSet<ColumnId> = required
                .iter()
                .chain(cond_cols.iter())
                .copied()
                .filter(|id| left_schema.contains(*id))
                .collect();
            let mut right_req: HashSet<ColumnId> = required
                .iter()
                .chain(cond_cols.iter())
                .copied()
                .filter(|id| right_schema.contains(*id))
                .collect();
            if left_req.is_empty() {
                if let Some(f) = left_schema.fields().first() {
                    left_req.insert(f.id);
                }
            }
            if right_req.is_empty() {
                if let Some(f) = right_schema.fields().first() {
                    right_req.insert(f.id);
                }
            }
            LogicalPlan::Join(Join {
                left: Box::new(prune(&j.left, &left_req)),
                right: Box::new(prune(&j.right, &right_req)),
                join_type: j.join_type,
                condition: j.condition.clone(),
            })
        }
        LogicalPlan::Aggregate(a) => {
            let mut kept: Vec<_> = a
                .aggregates
                .iter()
                .filter(|assign| required.contains(&assign.id))
                .cloned()
                .collect();
            if kept.is_empty() && a.group_by.is_empty() && !a.aggregates.is_empty() {
                // A scalar aggregate must keep one output to stay well
                // formed.
                kept.push(a.aggregates[0].clone());
            }
            let mut child_req: HashSet<ColumnId> = a.group_by.iter().copied().collect();
            for assign in &kept {
                child_req.extend(assign.agg.columns());
            }
            LogicalPlan::Aggregate(Aggregate {
                input: Box::new(prune(&a.input, &child_req)),
                group_by: a.group_by.clone(),
                aggregates: kept,
            })
        }
        LogicalPlan::Window(w) => {
            let kept: Vec<_> = w
                .exprs
                .iter()
                .filter(|assign| required.contains(&assign.id))
                .cloned()
                .collect();
            let input_schema = w.input.schema();
            let mut child_req: HashSet<ColumnId> = required
                .iter()
                .copied()
                .filter(|id| input_schema.contains(*id))
                .collect();
            for assign in &kept {
                child_req.extend(assign.window.columns());
            }
            if kept.is_empty() {
                // The window only appends columns; drop it entirely.
                return prune_nonempty(&w.input, child_req);
            }
            LogicalPlan::Window(Window {
                input: Box::new(prune_keep_nonempty(&w.input, child_req)),
                exprs: kept,
            })
        }
        LogicalPlan::MarkDistinct(m) => {
            if !required.contains(&m.mark_id) {
                // The mark is unused and MarkDistinct preserves
                // cardinality: drop the operator.
                let input_schema = m.input.schema();
                let child_req: HashSet<ColumnId> = required
                    .iter()
                    .copied()
                    .filter(|id| input_schema.contains(*id))
                    .collect();
                return prune_nonempty(&m.input, child_req);
            }
            let mut child_req: HashSet<ColumnId> = required
                .iter()
                .copied()
                .filter(|id| *id != m.mark_id)
                .collect();
            child_req.extend(m.columns.iter().copied());
            child_req.extend(m.mask.columns());
            LogicalPlan::MarkDistinct(MarkDistinct {
                input: Box::new(prune_keep_nonempty(&m.input, child_req)),
                columns: m.columns.clone(),
                mark_id: m.mark_id,
                mark_name: m.mark_name.clone(),
                mask: m.mask.clone(),
            })
        }
        LogicalPlan::UnionAll(u) => {
            let mut positions: Vec<usize> = u
                .fields
                .iter()
                .enumerate()
                .filter(|(_, f)| required.contains(&f.id))
                .map(|(i, _)| i)
                .collect();
            if positions.is_empty() {
                positions.push(0);
            }
            let fields: Vec<_> = positions.iter().map(|&i| u.fields[i].clone()).collect();
            let inputs = u
                .inputs
                .iter()
                .map(|input| {
                    let schema = input.schema();
                    let kept_ids: Vec<ColumnId> =
                        positions.iter().map(|&i| schema.field(i).id).collect();
                    let child =
                        prune(input, &kept_ids.iter().copied().collect::<HashSet<_>>());
                    // Positional alignment: project exactly the kept
                    // columns in order.
                    let child_schema = child.schema();
                    let aligned = child_schema.ids() == kept_ids;
                    if aligned {
                        child
                    } else {
                        let exprs = kept_ids
                            .iter()
                            .map(|id| {
                                let f = child_schema
                                    .field_by_id(*id)
                                    .or_else(|| schema.field_by_id(*id))
                                    .expect("pruned union branch column");
                                fusion_plan::ProjExpr::passthrough(f)
                            })
                            .collect();
                        LogicalPlan::Project(Project {
                            input: Box::new(child),
                            exprs,
                        })
                    }
                })
                .collect();
            LogicalPlan::UnionAll(UnionAll { inputs, fields })
        }
        LogicalPlan::ConstantTable(c) => {
            let mut positions: Vec<usize> = c
                .fields
                .iter()
                .enumerate()
                .filter(|(_, f)| required.contains(&f.id))
                .map(|(i, _)| i)
                .collect();
            if positions.is_empty() {
                positions.push(0);
            }
            LogicalPlan::ConstantTable(ConstantTable {
                fields: positions.iter().map(|&i| c.fields[i].clone()).collect(),
                rows: c
                    .rows
                    .iter()
                    .map(|r| positions.iter().map(|&i| r[i].clone()).collect())
                    .collect(),
            })
        }
        LogicalPlan::EnforceSingleRow(e) => {
            let input_schema = e.input.schema();
            let child_req: HashSet<ColumnId> = required
                .iter()
                .copied()
                .filter(|id| input_schema.contains(*id))
                .collect();
            LogicalPlan::EnforceSingleRow(EnforceSingleRow {
                input: Box::new(prune_keep_nonempty(&e.input, child_req)),
            })
        }
        LogicalPlan::Sort(s) => {
            let mut child_req = required.clone();
            for k in &s.keys {
                child_req.extend(k.expr.columns());
            }
            LogicalPlan::Sort(Sort {
                input: Box::new(prune(&s.input, &child_req)),
                keys: s.keys.clone(),
            })
        }
        LogicalPlan::Limit(l) => LogicalPlan::Limit(Limit {
            input: Box::new(prune(&l.input, required)),
            fetch: l.fetch,
        }),
    }
}

/// Prune with a possibly-empty requirement set (leaf guards keep one
/// column to preserve row counts).
fn prune_nonempty(plan: &LogicalPlan, required: HashSet<ColumnId>) -> LogicalPlan {
    prune(plan, &required)
}

fn prune_keep_nonempty(plan: &LogicalPlan, required: HashSet<ColumnId>) -> LogicalPlan {
    prune(plan, &required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_common::{DataType, IdGen, Value};
    use fusion_exec::table::TableColumn;
    use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
    use fusion_expr::{col, lit, AggregateExpr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn wide_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("k", DataType::Int64, false),
            ColumnDef::new("v", DataType::Int64, true),
            ColumnDef::new("s", DataType::Utf8, true),
            ColumnDef::new("w", DataType::Float64, true),
        ]
    }

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                TableColumn {
                    name: "k".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "v".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "s".into(),
                    data_type: DataType::Utf8,
                    nullable: true,
                },
                TableColumn {
                    name: "w".into(),
                    data_type: DataType::Float64,
                    nullable: true,
                },
            ],
        );
        for i in 0..10i64 {
            b.add_row(vec![
                Value::Int64(i),
                Value::Int64(i * 2),
                Value::Utf8(format!("a-very-long-string-{i}")),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register(b.build());
        c
    }

    #[test]
    fn pruned_scan_reads_fewer_bytes_same_result() {
        let gen = IdGen::new();
        let t = PlanBuilder::scan(&gen, "t", &wide_cols());
        let (k, v) = (t.col("k").unwrap(), t.col("v").unwrap());
        let plan = t
            .filter(col(k).gt(lit(2i64)))
            .project(vec![("double_v", col(v).mul(lit(2i64)))])
            .build();

        let pruned = prune_columns(&plan);
        pruned.validate().unwrap();

        let catalog = catalog();
        let m1 = ExecMetrics::new();
        let base = execute_plan(&plan, &catalog, &m1).unwrap();
        let m2 = ExecMetrics::new();
        let opt = execute_plan(&pruned, &catalog, &m2).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        assert!(
            m2.bytes_scanned() < m1.bytes_scanned(),
            "pruned {} vs base {}",
            m2.bytes_scanned(),
            m1.bytes_scanned()
        );
    }

    #[test]
    fn count_star_keeps_narrowest_column() {
        let gen = IdGen::new();
        let t = PlanBuilder::scan(&gen, "t", &wide_cols());
        let plan = t
            .aggregate(vec![], vec![("n", AggregateExpr::count_star())])
            .build();
        let pruned = prune_columns(&plan);
        pruned.validate().unwrap();
        let mut width = usize::MAX;
        pruned.visit(&mut |p| {
            if let LogicalPlan::Scan(s) = p {
                assert_eq!(s.fields.len(), 1);
                width = s.fields[0].data_type.fixed_width().unwrap_or(16);
            }
        });
        assert!(width <= 8);

        let catalog = catalog();
        let out = execute_plan(&pruned, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(10)]]);
    }

    #[test]
    fn unused_aggregates_dropped_but_groups_kept() {
        let gen = IdGen::new();
        let t = PlanBuilder::scan(&gen, "t", &wide_cols());
        let (k, v, w) = (
            t.col("k").unwrap(),
            t.col("v").unwrap(),
            t.col("w").unwrap(),
        );
        let agg = t.aggregate(
            vec![k],
            vec![
                ("sv", AggregateExpr::sum(col(v))),
                ("sw", AggregateExpr::sum(col(w))),
            ],
        );
        let sv = agg.col("sv").unwrap();
        let plan = agg.project(vec![("out", col(sv))]).build();
        let pruned = prune_columns(&plan);
        pruned.validate().unwrap();
        pruned.visit(&mut |p| {
            if let LogicalPlan::Aggregate(a) = p {
                assert_eq!(a.aggregates.len(), 1);
                assert_eq!(a.group_by.len(), 1);
            }
        });
    }

    #[test]
    fn union_branches_prune_positionally() {
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "t", &wide_cols());
        let b = PlanBuilder::scan(&gen, "t", &wide_cols()).build();
        let u = a.union_all(vec![b]).unwrap();
        let k_out = u.schema().field(0).id;
        let plan = u.project(vec![("kk", col(k_out))]).build();

        let pruned = prune_columns(&plan);
        pruned.validate().unwrap();
        pruned.visit(&mut |p| {
            if let LogicalPlan::Scan(s) = p {
                assert_eq!(s.fields.len(), 1);
            }
            if let LogicalPlan::UnionAll(u) = p {
                assert_eq!(u.fields.len(), 1);
            }
        });

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&pruned, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
    }

    #[test]
    fn unused_mark_distinct_dropped() {
        let gen = IdGen::new();
        let t = PlanBuilder::scan(&gen, "t", &wide_cols());
        let (k, v) = (t.col("k").unwrap(), t.col("v").unwrap());
        let md = t.mark_distinct(vec![v], "d");
        let plan = md.project(vec![("kk", col(k))]).build();
        let pruned = prune_columns(&plan);
        pruned.validate().unwrap();
        assert!(!pruned.any(&|p| matches!(p, LogicalPlan::MarkDistinct(_))));
    }
}
