// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Property-based tests for the fusion machinery.
//!
//! The central property is the paper's semantic contract for `Fuse`:
//!
//! ```text
//! P1 = Project_outCols(P1)( Filter_L( P ) )
//! P2 = Project_M(outCols(P2))( Filter_R( P ) )
//! ```
//!
//! We generate random plan pairs over a shared base table, fuse them, and
//! *execute* both sides of the equation, comparing result multisets.
//! Supporting properties cover expression simplification, normalization
//! and contradiction detection.

use proptest::prelude::*;

use fusion_common::{ColumnId, DataType, FusionError, IdGen, Value};
use fusion_core::fuse::{fuse, FuseContext};
use fusion_core::rules::union_fusion::UnionAllFusion;
use fusion_core::rules::{apply_everywhere, Rule};
use fusion_exec::table::TableColumn;
use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
use fusion_expr::{col, eval, is_contradiction, lit, normalize, simplify, AggregateExpr, Expr};
use fusion_plan::builder::ColumnDef;
use fusion_plan::{Filter, LogicalPlan, PlanBuilder, Project, ProjExpr};

// ---------- expression strategies ----------

const NUM_INT_COLS: u32 = 2;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-20i64..20).prop_map(Value::Int64),
    ]
}

fn arb_numeric_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NUM_INT_COLS).prop_map(|i| col(ColumnId(i))),
        (-20i64..20).prop_map(lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (inner.clone(), inner, 0..4u8).prop_map(|(a, b, op)| match op {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            _ => a.div(b),
        })
    })
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    let cmp = (arb_numeric_expr(), arb_numeric_expr(), 0..6u8).prop_map(|(a, b, op)| match op {
        0 => a.eq_to(b),
        1 => a.not_eq_to(b),
        2 => a.lt(b),
        3 => a.lt_eq(b),
        4 => a.gt(b),
        _ => a.gt_eq(b),
    });
    cmp.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.negated()),
        ]
    })
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), NUM_INT_COLS as usize)
}

fn resolver(row: &[Value]) -> impl Fn(ColumnId) -> Result<Value, FusionError> + '_ {
    move |id: ColumnId| {
        row.get(id.0 as usize)
            .cloned()
            .ok_or_else(|| FusionError::Execution(format!("no col {id}")))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Simplification must preserve evaluation on every row.
    #[test]
    fn simplify_preserves_semantics(e in arb_predicate(), row in arb_row()) {
        let simplified = simplify(&e);
        let before = eval(&e, &resolver(&row)).unwrap();
        let after = eval(&simplified, &resolver(&row)).unwrap();
        prop_assert_eq!(before, after, "simplify({}) = {}", e, simplified);
    }

    /// Normalization (used by equivalence checks) preserves evaluation.
    #[test]
    fn normalize_preserves_semantics(e in arb_predicate(), row in arb_row()) {
        let normalized = normalize(&e);
        let before = eval(&e, &resolver(&row)).unwrap();
        let after = eval(&normalized, &resolver(&row)).unwrap();
        prop_assert_eq!(before, after, "normalize({}) = {}", e, normalized);
    }

    /// If the contradiction checker claims `e ≡ FALSE`, no row may make it
    /// TRUE (soundness — completeness is not claimed).
    #[test]
    fn contradiction_checker_is_sound(e in arb_predicate(), row in arb_row()) {
        if is_contradiction(&e) {
            let v = eval(&e, &resolver(&row)).unwrap();
            prop_assert_ne!(v, Value::Boolean(true), "claimed contradiction: {}", e);
        }
    }

    /// Substituting through a column map is a homomorphism w.r.t.
    /// evaluation: eval(map(e), row) == eval(e, permuted row).
    #[test]
    fn column_mapping_is_homomorphic(e in arb_predicate(), row in arb_row()) {
        let mut m = fusion_expr::ColumnMap::new();
        m.insert(ColumnId(0), ColumnId(1));
        m.insert(ColumnId(1), ColumnId(0));
        let mapped = e.map_columns(&m);
        let mut swapped = row.clone();
        swapped.swap(0, 1);
        let a = eval(&mapped, &resolver(&row)).unwrap();
        let b = eval(&e, &resolver(&swapped)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Equivalence checking is sound: if normalize says two random
    /// predicates are equal, they must evaluate identically.
    #[test]
    fn equivalence_is_sound(
        e1 in arb_predicate(),
        e2 in arb_predicate(),
        row in arb_row(),
    ) {
        if fusion_expr::equiv(&e1, &e2) {
            let a = eval(&e1, &resolver(&row)).unwrap();
            let b = eval(&e2, &resolver(&row)).unwrap();
            prop_assert_eq!(a, b, "equiv claimed for {} and {}", e1, e2);
        }
    }
}

// ---------- plan-level fusion properties ----------

/// A recipe for one side of a fusion pair: filter bound, optional extra
/// projection, optional aggregation with an optional mask.
#[derive(Debug, Clone)]
struct PlanRecipe {
    filter_lo: i64,
    filter_hi: i64,
    project_offset: Option<i64>,
    aggregate: bool,
    agg_mask_bound: Option<i64>,
}

fn arb_recipe() -> impl Strategy<Value = PlanRecipe> {
    (
        -10i64..10,
        0i64..20,
        proptest::option::of(-5i64..5),
        any::<bool>(),
        proptest::option::of(0i64..10),
    )
        .prop_map(
            |(lo, span, project_offset, aggregate, agg_mask_bound)| PlanRecipe {
                filter_lo: lo,
                filter_hi: lo + span,
                project_offset,
                aggregate,
                agg_mask_bound,
            },
        )
}

fn table_cols() -> Vec<ColumnDef> {
    vec![
        ColumnDef::new("g", DataType::Int64, true),
        ColumnDef::new("x", DataType::Int64, true),
        ColumnDef::new("y", DataType::Int64, true),
    ]
}

type RowSpec = (Option<i64>, i64, i64);

fn build_catalog(rows: &[RowSpec]) -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            TableColumn {
                name: "g".into(),
                data_type: DataType::Int64,
                nullable: true,
            },
            TableColumn {
                name: "x".into(),
                data_type: DataType::Int64,
                nullable: true,
            },
            TableColumn {
                name: "y".into(),
                data_type: DataType::Int64,
                nullable: true,
            },
        ],
    );
    for (g, x, y) in rows {
        b.add_row(vec![
            g.map(Value::Int64).unwrap_or(Value::Null),
            Value::Int64(*x),
            Value::Int64(*y),
        ])
        .unwrap();
    }
    let mut c = Catalog::new();
    c.register(b.build());
    c
}

fn build_plan(recipe: &PlanRecipe, gen: &IdGen) -> LogicalPlan {
    let t = PlanBuilder::scan(gen, "t", &table_cols());
    let (g, x, y) = (
        t.col("g").unwrap(),
        t.col("x").unwrap(),
        t.col("y").unwrap(),
    );
    let mut b = t.filter(
        col(x)
            .gt_eq(lit(recipe.filter_lo))
            .and(col(x).lt_eq(lit(recipe.filter_hi))),
    );
    if let Some(off) = recipe.project_offset {
        b = b.project(vec![
            ("g", col(g)),
            ("x", col(x)),
            ("v", col(y).add(lit(off))),
        ]);
    }
    if recipe.aggregate {
        let group = b.col("g").unwrap();
        let arg = b.col("x").unwrap();
        let mut agg = AggregateExpr::sum(col(arg));
        if let Some(bound) = recipe.agg_mask_bound {
            agg = agg.with_mask(col(arg).gt(lit(bound)));
        }
        b = b.aggregate(
            vec![group],
            vec![("s", agg), ("n", AggregateExpr::count_star())],
        );
    }
    b.build()
}

/// Execute `Project_{ids}(Filter_comp(plan))` — the reconstruction side of
/// the fusion contract.
fn reconstruct(
    fused_plan: &LogicalPlan,
    comp: &Expr,
    out_ids: &[(ColumnId, ColumnId)],
    catalog: &Catalog,
) -> Vec<Vec<Value>> {
    let filtered = if comp.is_true_literal() {
        fused_plan.clone()
    } else {
        LogicalPlan::Filter(Filter {
            input: Box::new(fused_plan.clone()),
            predicate: comp.clone(),
        })
    };
    let exprs = out_ids
        .iter()
        .map(|(orig, src)| ProjExpr::new(*orig, format!("o{}", orig.0), Expr::Column(*src)))
        .collect();
    let projected = LogicalPlan::Project(Project {
        input: Box::new(filtered),
        exprs,
    });
    projected
        .validate()
        .unwrap_or_else(|e| panic!("reconstruction invalid: {e}\n{}", projected.display()));
    let mut rows = execute_plan(&projected, catalog, &ExecMetrics::new())
        .unwrap()
        .rows;
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's Fuse contract, executed: fusing two random pipelines
    /// over the same table and applying the compensating filters
    /// reconstructs both originals exactly.
    #[test]
    fn fuse_reconstructs_both_inputs(
        r1 in arb_recipe(),
        r2 in arb_recipe(),
        rows in proptest::collection::vec(
            (proptest::option::of(0i64..4), -10i64..10, -10i64..10),
            0..40
        ),
    ) {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let p1 = build_plan(&r1, &gen);
        let p2 = build_plan(&r2, &gen);
        let catalog = build_catalog(&rows);

        if let Some(fused) = fuse(&p1, &p2, &ctx) {
            fused.plan.validate().unwrap_or_else(|e| {
                panic!("fused plan invalid: {e}\n{}", fused.plan.display())
            });

            let p1_ids: Vec<_> = p1.schema().ids().iter().map(|id| (*id, *id)).collect();
            let expect1 = execute_plan(&p1, &catalog, &ExecMetrics::new()).unwrap();
            let got1 = reconstruct(&fused.plan, &fused.left, &p1_ids, &catalog);
            prop_assert_eq!(
                expect1.sorted_rows(), got1,
                "P1 reconstruction failed\nP1:\n{}\nfused:\n{}\nL: {}",
                p1.display(), fused.plan.display(), &fused.left
            );

            let p2_ids: Vec<_> = p2
                .schema()
                .ids()
                .iter()
                .map(|id| (*id, fused.mapped_id(*id)))
                .collect();
            let expect2 = execute_plan(&p2, &catalog, &ExecMetrics::new()).unwrap();
            let got2 = reconstruct(&fused.plan, &fused.right, &p2_ids, &catalog);
            prop_assert_eq!(
                expect2.sorted_rows(), got2,
                "P2 reconstruction failed\nP2:\n{}\nfused:\n{}\nR: {}",
                p2.display(), fused.plan.display(), &fused.right
            );
        }
    }

    /// The UnionAll fusion rule preserves result multisets on random
    /// branch pairs (including overlapping and disjoint filters).
    #[test]
    fn union_fusion_preserves_multisets(
        r1 in arb_recipe(),
        r2 in arb_recipe(),
        rows in proptest::collection::vec(
            (proptest::option::of(0i64..4), -10i64..10, -10i64..10),
            0..40
        ),
    ) {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let p1 = build_plan(&r1, &gen);
        let p2 = build_plan(&r2, &gen);
        prop_assume!(p1.schema().len() == p2.schema().len());

        let union = match PlanBuilder::from_plan(&gen, p1).union_all(vec![p2]) {
            Ok(b) => b.build(),
            Err(_) => return Ok(()),
        };
        let catalog = build_catalog(&rows);
        let expected = execute_plan(&union, &catalog, &ExecMetrics::new()).unwrap();

        if let Some(rewritten) = apply_everywhere(&UnionAllFusion, &union, &ctx) {
            rewritten.validate().unwrap();
            let got = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
            prop_assert_eq!(expected.sorted_rows(), got.sorted_rows());
            prop_assert_eq!(rewritten.scanned_tables().len(), 1);
        }
    }

    /// Full optimizer equivalence on random single-table pipelines (the
    /// optimizer also validates each intermediate plan internally).
    #[test]
    fn optimizer_preserves_single_table_pipelines(
        r in arb_recipe(),
        rows in proptest::collection::vec(
            (proptest::option::of(0i64..4), -10i64..10, -10i64..10),
            0..40
        ),
    ) {
        let gen = IdGen::new();
        let plan = build_plan(&r, &gen);
        let catalog = build_catalog(&rows);
        let expected = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();

        let optimizer =
            fusion_core::Optimizer::new(gen.clone(), fusion_core::OptimizerConfig::default());
        let (optimized, _) = optimizer.optimize(&plan);
        let got = execute_plan(&optimized, &catalog, &ExecMetrics::new()).unwrap();
        prop_assert_eq!(expected.sorted_rows(), got.sorted_rows());
    }

    /// Self-join of two random keyed pipelines: JoinOnKeys (when it
    /// fires through the full optimizer) must preserve the join result.
    #[test]
    fn optimizer_preserves_keyed_self_joins(
        r1 in arb_recipe(),
        r2 in arb_recipe(),
        rows in proptest::collection::vec(
            (proptest::option::of(0i64..4), -10i64..10, -10i64..10),
            0..30
        ),
    ) {
        // Force both sides to aggregate so the join is keyed.
        let mut r1 = r1;
        let mut r2 = r2;
        r1.aggregate = true;
        r2.aggregate = true;
        let gen = IdGen::new();
        let p1 = build_plan(&r1, &gen);
        let p2 = build_plan(&r2, &gen);
        let k1 = p1.schema().field(0).id;
        let k2 = p2.schema().field(0).id;
        let plan = PlanBuilder::from_plan(&gen, p1)
            .join(p2, fusion_plan::JoinType::Inner, col(k1).eq_to(col(k2)))
            .build();
        let catalog = build_catalog(&rows);
        let expected = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();

        let optimizer =
            fusion_core::Optimizer::new(gen.clone(), fusion_core::OptimizerConfig::default());
        let (optimized, _) = optimizer.optimize(&plan);
        let got = execute_plan(&optimized, &catalog, &ExecMetrics::new()).unwrap();
        prop_assert_eq!(
            expected.sorted_rows(), got.sorted_rows(),
            "plan:\n{}\noptimized:\n{}", plan.display(), optimized.display()
        );
    }
}

/// Sanity: the Rule trait objects used above are the real ones.
#[test]
fn rule_names() {
    assert_eq!(UnionAllFusion.name(), "UnionAllFusion");
}

// ---------- semantic analyzer properties ----------

/// Every TPC-DS corpus plan — fused and baseline, before and after
/// optimization — passes the semantic analyzer with zero violations.
/// The analyzer must be sound *and* quiet on legitimate plans: a false
/// positive here would silently disable fusion in strict mode.
#[test]
fn tpcds_corpus_plans_pass_the_analyzer() {
    use fusion_engine::Session;
    use fusion_tpcds::{generate_catalog, TpcdsConfig};

    let cfg = TpcdsConfig::with_scale(0.01);
    let mut fused = Session::new();
    for t in generate_catalog(&cfg).into_tables() {
        fused.register_table(t);
    }
    let mut baseline = Session::baseline();
    for t in generate_catalog(&cfg).into_tables() {
        baseline.register_table(t);
    }

    for q in fusion_tpcds::all_queries() {
        for (mode, session) in [("fused", &fused), ("baseline", &baseline)] {
            let plan = session
                .plan_sql(&q.sql)
                .unwrap_or_else(|e| panic!("{} ({mode}): planning failed: {e}", q.id));
            let (optimized, report) = session.optimize(&plan);
            assert!(
                report.validation_error.is_none(),
                "{} ({mode}): optimizer flagged plan: {:?}",
                q.id,
                report.validation_error
            );
            for (stage, p) in [("raw", &plan), ("optimized", &optimized)] {
                let violations = fusion_core::analyze_plan(p);
                assert!(
                    violations.is_empty(),
                    "{} ({mode}/{stage}): analyzer violations: {}\nplan:\n{}",
                    q.id,
                    fusion_core::analysis::render_violations(&violations),
                    p.display()
                );
            }
        }
    }
}

/// The analyzer's plan-mutation self-test: seeded corruptions of known
/// good fusion artifacts (dropped mapping entries, swapped or widened
/// compensations, widened masks, retyped tags, dropped dispatch
/// branches) must be rejected at a ≥ 95% kill rate. Survivors are
/// printed by name so a regression is immediately actionable.
#[test]
fn mutation_self_test_kills_at_least_95_percent() {
    let report = fusion_core::analysis::run_self_test();
    for survivor in report.survivors() {
        eprintln!("surviving mutant: {survivor}");
    }
    assert!(
        report.kill_rate() >= 0.95,
        "mutation kill rate {:.1}% ({} of {} killed); survivors: {:?}",
        report.kill_rate() * 100.0,
        report.killed(),
        report.total(),
        report.survivors()
    );
}

/// The reuse-soundness prover's own corruption suite: seeded corruptions
/// of known-good reuse rewrites (wrong or swapped compensations, broken
/// mappings, non-subset subsumptions, non-mergeable aggregates classified
/// mergeable, stale or non-canonical dep stamps) must be rejected at a
/// ≥ 95% kill rate, and every pristine artifact must certify.
#[test]
fn reuse_mutation_self_test_kills_at_least_95_percent() {
    let report = fusion_core::analysis::run_reuse_self_test();
    for survivor in report.survivors() {
        eprintln!("surviving reuse mutant: {survivor}");
    }
    assert!(
        report.total() >= 25,
        "reuse corpus shrank to {} outcomes",
        report.total()
    );
    assert!(
        report.kill_rate() >= 0.95,
        "reuse mutation kill rate {:.1}% ({} of {} killed); survivors: {:?}",
        report.kill_rate() * 100.0,
        report.killed(),
        report.total(),
        report.survivors()
    );
    // Pristine controls are recorded inverted ("killed" = accepted), so a
    // false positive necessarily shows up among the survivors with a
    // "pristine"/"accepted" description.
    let false_positives: Vec<&str> = report
        .survivors()
        .into_iter()
        .filter(|s| s.contains("pristine") || s.contains("accepted"))
        .collect();
    assert!(
        false_positives.is_empty(),
        "reuse prover false positives: {false_positives:?}"
    );
}
