//! Per-query execution context: cancellation, deadlines, enforced memory
//! budgets, and fault/retry policies.
//!
//! Every operator holds an `Arc<ExecContext>` and calls
//! [`ExecContext::check`] at chunk boundaries, so a long pipeline notices
//! cancellation or a blown deadline within one `CHUNK_SIZE` batch of work.
//! The context also carries the *enforced* memory budget: unlike the soft
//! budget on [`ExecMetrics`] (which counts simulated spills and lets the
//! query continue — the paper's §V.C metric), crossing the enforced budget
//! aborts the query with [`FusionError::ResourceExhausted`].
//!
//! Existing call sites that only have metrics keep working: operator
//! constructors accept `impl IntoContext`, and [`IntoContext`] turns a
//! bare `Arc<ExecMetrics>` into an unbounded context.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusion_common::{FusionError, Result};

use crate::fault::{FaultPolicy, RetryPolicy};
use crate::metrics::ExecMetrics;
use crate::profile::OpSpan;

/// Shared flag used to cancel a running query from another thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation; running operators observe it at the next
    /// chunk boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Everything an operator needs beyond its inputs: metrics, cooperative
/// cancellation, a deadline, an enforced memory budget, and the fault and
/// retry policies applied by scans.
#[derive(Debug)]
pub struct ExecContext {
    metrics: Arc<ExecMetrics>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// Enforced budget in bytes (`None` = unlimited). Checked by
    /// [`BudgetedReservation`]; distinct from the soft spill-counting
    /// budget on the metrics.
    hard_budget: Option<usize>,
    fault_policy: FaultPolicy,
    retry_policy: RetryPolicy,
    /// Worker threads available for morsel-parallel operators (1 = run
    /// everything on the caller's thread).
    parallelism: usize,
    /// Whether plan compilation may collapse scan→filter→project(→agg)
    /// chains into push-based [`crate::pipeline::FusedPipeline`]
    /// operators (the `FUSION_PIPELINES` knob; default on).
    pipelines: bool,
}

impl ExecContext {
    /// An unbounded context: no deadline, no budget, no faults.
    pub fn new(metrics: Arc<ExecMetrics>) -> Arc<Self> {
        Arc::new(ExecContext {
            metrics,
            cancel: CancelToken::new(),
            deadline: None,
            hard_budget: None,
            fault_policy: FaultPolicy::default(),
            retry_policy: RetryPolicy::default(),
            parallelism: 1,
            pipelines: true,
        })
    }

    /// Builder-style configuration (consume and re-wrap in `Arc` at the
    /// end).
    pub fn builder(metrics: Arc<ExecMetrics>) -> ExecContextBuilder {
        ExecContextBuilder {
            metrics,
            cancel: CancelToken::new(),
            deadline: None,
            hard_budget: None,
            fault_policy: FaultPolicy::default(),
            retry_policy: RetryPolicy::default(),
            parallelism: 1,
            pipelines: true,
        }
    }

    pub fn metrics(&self) -> &Arc<ExecMetrics> {
        &self.metrics
    }

    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    pub fn fault_policy(&self) -> &FaultPolicy {
        &self.fault_policy
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry_policy
    }

    pub fn hard_budget(&self) -> Option<usize> {
        self.hard_budget
    }

    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Whether push-based pipeline compilation is enabled.
    pub fn pipelines(&self) -> bool {
        self.pipelines
    }

    /// Worker count for a stage of `morsels` independent work units:
    /// never more workers than morsels, never fewer than one.
    pub fn workers_for(&self, morsels: usize) -> usize {
        self.parallelism.min(morsels).max(1)
    }

    /// Cooperative check called by operators at chunk boundaries. Returns
    /// [`FusionError::Cancelled`] or [`FusionError::DeadlineExceeded`].
    pub fn check(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(FusionError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(FusionError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Fail with [`FusionError::ResourceExhausted`] if reserving `more`
    /// bytes on top of the current state would cross the enforced budget.
    fn check_budget(&self, more: i64) -> Result<()> {
        if let Some(budget) = self.hard_budget {
            let current = self.metrics.current_state_bytes();
            let requested = current.saturating_add(more.max(0) as u64) as usize;
            if requested > budget {
                return Err(FusionError::ResourceExhausted { budget, requested });
            }
        }
        Ok(())
    }

    /// Run `read` for `(table, partition)`, applying the fault policy and
    /// retrying transient failures with exponential backoff. Counts every
    /// injected fault and every retry into the metrics. Fatal errors (or
    /// exhausted retries) propagate.
    pub fn faulted_read<T>(
        &self,
        table: &str,
        partition: usize,
        mut read: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let policy = &self.fault_policy;
        if !policy.is_active() {
            return read();
        }
        let mut attempt: u32 = 0;
        loop {
            self.check()?;
            if !policy.read_latency.is_zero() {
                std::thread::sleep(policy.read_latency);
            }
            let outcome = policy
                .inject(table, partition, attempt)
                .and_then(|()| read());
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) => {
                    self.metrics.add_fault_injected();
                    if !e.is_retryable() || attempt >= self.retry_policy.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.metrics.add_retry();
                    std::thread::sleep(self.retry_policy.backoff(attempt));
                }
            }
        }
    }
}

/// Builder returned by [`ExecContext::builder`].
pub struct ExecContextBuilder {
    metrics: Arc<ExecMetrics>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    hard_budget: Option<usize>,
    fault_policy: FaultPolicy,
    retry_policy: RetryPolicy,
    parallelism: usize,
    pipelines: bool,
}

impl ExecContextBuilder {
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn timeout(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Enforced memory budget: exceeding it aborts the query.
    pub fn hard_budget(mut self, bytes: usize) -> Self {
        self.hard_budget = Some(bytes);
        self
    }

    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Worker threads for morsel-parallel operators (clamped to ≥ 1).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Enable or disable push-based pipeline compilation (default on).
    pub fn pipelines(mut self, enabled: bool) -> Self {
        self.pipelines = enabled;
        self
    }

    pub fn build(self) -> Arc<ExecContext> {
        Arc::new(ExecContext {
            metrics: self.metrics,
            cancel: self.cancel,
            deadline: self.deadline,
            hard_budget: self.hard_budget,
            fault_policy: self.fault_policy,
            retry_policy: self.retry_policy,
            parallelism: self.parallelism,
            pipelines: self.pipelines,
        })
    }
}

/// Conversion accepted by operator constructors: pass either a ready
/// `Arc<ExecContext>` or a bare `Arc<ExecMetrics>` (metrics-only call
/// sites — most tests — get an unbounded context). A local trait because
/// the orphan rules forbid `From<Arc<ExecMetrics>> for Arc<ExecContext>`.
pub trait IntoContext {
    fn into_ctx(self) -> Arc<ExecContext>;
}

impl IntoContext for Arc<ExecContext> {
    fn into_ctx(self) -> Arc<ExecContext> {
        self
    }
}

impl IntoContext for &Arc<ExecContext> {
    fn into_ctx(self) -> Arc<ExecContext> {
        self.clone()
    }
}

impl IntoContext for Arc<ExecMetrics> {
    fn into_ctx(self) -> Arc<ExecContext> {
        ExecContext::new(self)
    }
}

/// RAII guard for operator state under the *enforced* budget. Reserves
/// through the metrics (so peaks and soft-budget spills are still
/// observed) but fails with [`FusionError::ResourceExhausted`] instead of
/// growing past the context's hard budget. When a profiling span is
/// attached, the reservation is mirrored into the span so the query
/// profile can report a per-operator peak.
pub struct BudgetedReservation {
    ctx: Arc<ExecContext>,
    bytes: i64,
    span: Option<Arc<OpSpan>>,
}

impl BudgetedReservation {
    pub fn try_new(ctx: Arc<ExecContext>, bytes: i64) -> Result<Self> {
        ctx.check_budget(bytes)?;
        ctx.metrics.reserve_state(bytes);
        Ok(BudgetedReservation {
            ctx,
            bytes,
            span: None,
        })
    }

    /// Attribute this reservation (current bytes and all future growth)
    /// to an operator's profiling span.
    pub fn set_span(&mut self, span: Arc<OpSpan>) {
        span.state_delta(self.bytes);
        self.span = Some(span);
    }

    pub fn try_grow(&mut self, more: i64) -> Result<()> {
        self.ctx.check_budget(more)?;
        self.ctx.metrics.reserve_state(more);
        self.bytes += more;
        if let Some(span) = &self.span {
            span.state_delta(more);
        }
        Ok(())
    }
}

impl Drop for BudgetedReservation {
    fn drop(&mut self) {
        self.ctx.metrics.release_state(self.bytes);
        if let Some(span) = &self.span {
            span.state_delta(-self.bytes);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_context_always_checks_ok() {
        let ctx = ExecContext::new(ExecMetrics::new());
        assert!(ctx.check().is_ok());
        let mut r = BudgetedReservation::try_new(ctx.clone(), 1 << 30).unwrap();
        r.try_grow(1 << 30).unwrap();
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let ctx = ExecContext::builder(ExecMetrics::new())
            .cancel_token(token.clone())
            .build();
        assert!(ctx.check().is_ok());
        token.cancel();
        assert_eq!(ctx.check(), Err(FusionError::Cancelled));
    }

    #[test]
    fn past_deadline_fails_check() {
        let ctx = ExecContext::builder(ExecMetrics::new())
            .deadline(Instant::now() - Duration::from_millis(1))
            .build();
        assert_eq!(ctx.check(), Err(FusionError::DeadlineExceeded));
    }

    #[test]
    fn hard_budget_rejects_with_resource_exhausted() {
        let ctx = ExecContext::builder(ExecMetrics::new())
            .hard_budget(100)
            .build();
        let mut r = BudgetedReservation::try_new(ctx.clone(), 60).unwrap();
        match r.try_grow(60) {
            Err(FusionError::ResourceExhausted { budget, requested }) => {
                assert_eq!(budget, 100);
                assert_eq!(requested, 120);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // The failed grow must not leak into the reservation.
        drop(r);
        assert_eq!(ctx.metrics().snapshot().peak_state_bytes, 60);
        // Releases let a new reservation succeed again.
        let _r2 = BudgetedReservation::try_new(ctx, 90).unwrap();
    }

    #[test]
    fn budget_accounts_for_concurrent_reservations() {
        let ctx = ExecContext::builder(ExecMetrics::new())
            .hard_budget(100)
            .build();
        let _a = BudgetedReservation::try_new(ctx.clone(), 70).unwrap();
        assert!(matches!(
            BudgetedReservation::try_new(ctx, 70),
            Err(FusionError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn faulted_read_retries_until_success() {
        // Find a (table, partition) that fails attempt 0 but recovers
        // within the retry allowance.
        let policy = FaultPolicy::transient(11, 0.5);
        let retry = RetryPolicy::default();
        let pick = (0..200).find(|&p| {
            policy.inject("t", p, 0).is_err()
                && (1..=retry.max_retries).any(|a| policy.inject("t", p, a).is_ok())
        });
        let p = pick.expect("some partition recovers under this seed");
        let metrics = ExecMetrics::new();
        let ctx = ExecContext::builder(metrics.clone())
            .fault_policy(policy)
            .retry_policy(retry)
            .build();
        let v = ctx.faulted_read("t", p, || Ok(42)).unwrap();
        assert_eq!(v, 42);
        let snap = metrics.snapshot();
        assert!(snap.retries >= 1);
        assert!(snap.faults_injected >= 1);
    }

    #[test]
    fn faulted_read_gives_up_after_max_retries() {
        // Rate 1.0 fails every attempt.
        let metrics = ExecMetrics::new();
        let ctx = ExecContext::builder(metrics.clone())
            .fault_policy(FaultPolicy::transient(1, 1.0))
            .retry_policy(RetryPolicy::default())
            .build();
        let out: Result<()> = ctx.faulted_read("t", 0, || Ok(()));
        assert!(matches!(out, Err(FusionError::TransientIo(_))));
        assert_eq!(metrics.snapshot().retries as u32, RetryPolicy::default().max_retries);
    }

    #[test]
    fn poison_bypasses_retry() {
        let metrics = ExecMetrics::new();
        let ctx = ExecContext::builder(metrics.clone())
            .fault_policy(FaultPolicy::default().with_poison("t", 5))
            .build();
        let out: Result<()> = ctx.faulted_read("t", 5, || Ok(()));
        assert!(matches!(out, Err(FusionError::DataCorruption(_))));
        assert_eq!(metrics.snapshot().retries, 0);
    }
}
