//! Identity-carrying schemas.

use std::fmt;
use std::sync::Arc;

use crate::error::{FusionError, Result};
use crate::ident::ColumnId;
use crate::types::DataType;

/// One output column of a plan node: a unique identity, a display name,
/// a type, and nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub id: ColumnId,
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(id: ColumnId, name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            id,
            name: name.into(),
            data_type,
            nullable,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} {}", self.name, self.id, self.data_type)?;
        if !self.nullable {
            f.write_str(" NOT NULL")?;
        }
        Ok(())
    }
}

/// An ordered collection of [`Field`]s; the output shape of a plan node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column with the given identity.
    pub fn index_of(&self, id: ColumnId) -> Option<usize> {
        self.fields.iter().position(|f| f.id == id)
    }

    /// Field with the given identity.
    pub fn field_by_id(&self, id: ColumnId) -> Option<&Field> {
        self.fields.iter().find(|f| f.id == id)
    }

    /// Field with the given identity, or a schema error.
    pub fn try_field_by_id(&self, id: ColumnId) -> Result<&Field> {
        self.field_by_id(id)
            .ok_or_else(|| FusionError::Schema(format!("column {id} not found in schema {self}")))
    }

    /// First field with the given (case-insensitive) name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.fields
            .iter()
            .find(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// All fields with the given (case-insensitive) name — used by name
    /// resolution to detect ambiguity.
    pub fn fields_by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Field> + 'a {
        self.fields
            .iter()
            .filter(move |f| f.name.eq_ignore_ascii_case(name))
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    pub fn contains(&self, id: ColumnId) -> bool {
        self.index_of(id).is_some()
    }

    /// Concatenate two schemas (e.g. the output of a join).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// All column ids, in order.
    pub fn ids(&self) -> Vec<ColumnId> {
        self.fields.iter().map(|f| f.id).collect()
    }

    /// Validate that no column id appears twice.
    pub fn check_unique_ids(&self) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for f in &self.fields {
            if !seen.insert(f.id) {
                return Err(FusionError::Schema(format!(
                    "duplicate column id {} ({})",
                    f.id, f.name
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

impl From<Vec<Field>> for Schema {
    fn from(fields: Vec<Field>) -> Self {
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new(ColumnId(0), "a", DataType::Int64, false),
            Field::new(ColumnId(1), "b", DataType::Utf8, true),
            Field::new(ColumnId(2), "B", DataType::Float64, true),
        ])
    }

    #[test]
    fn lookup_by_id_and_name() {
        let s = sample();
        assert_eq!(s.index_of(ColumnId(1)), Some(1));
        assert_eq!(s.field_by_name("A").unwrap().id, ColumnId(0));
        assert!(s.field_by_id(ColumnId(9)).is_none());
    }

    #[test]
    fn name_lookup_is_case_insensitive_and_reports_all() {
        let s = sample();
        let hits: Vec<_> = s.fields_by_name("b").collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let t = Schema::new(vec![Field::new(ColumnId(7), "x", DataType::Date, true)]);
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        assert_eq!(j.field(3).id, ColumnId(7));
    }

    #[test]
    fn duplicate_ids_detected() {
        let s = Schema::new(vec![
            Field::new(ColumnId(0), "a", DataType::Int64, false),
            Field::new(ColumnId(0), "b", DataType::Int64, false),
        ]);
        assert!(s.check_unique_ids().is_err());
        assert!(sample().check_unique_ids().is_ok());
    }
}
