//! Fusing `MarkDistinct` operators (§III.F).

use fusion_plan::{LogicalPlan, MarkDistinct};

use super::{simp, FuseContext, Fused};

/// `Fuse(MarkDistinct_{d1,D1}(P1), MarkDistinct_{d2,D2}(P2))`.
///
/// With trivial child compensations the two marks simply stack (the right
/// one over mapped columns). Otherwise each mark's native mask (the
/// §III.F extension, implemented here instead of the basic
/// projected-column scheme) is tightened with the side's compensating
/// filter, so each mark distinguishes first occurrences *within its own
/// side's rows* — restoring each original mark stream under the
/// compensating filter.
pub fn fuse_mark_distinct(
    m1: &MarkDistinct,
    m2: &MarkDistinct,
    ctx: &FuseContext,
) -> Option<Fused> {
    let fused = super::fuse(&m1.input, &m2.input, ctx)?;
    let d2_mapped: Vec<_> = m2.columns.iter().map(|c| fused.mapped_id(*c)).collect();

    // Each side's mark must only consider its own rows: tighten the
    // (mapped) native masks with the compensating filters. With trivial
    // compensations this is a no-op — the paper's "skip the extra
    // columns" optimization falls out of simplification.
    let mask2 = simp(fused.map(&m2.mask).and(fused.right.clone()));
    let inner_md = LogicalPlan::MarkDistinct(MarkDistinct {
        input: Box::new(fused.plan.clone()),
        columns: d2_mapped,
        mark_id: m2.mark_id,
        mark_name: m2.mark_name.clone(),
        mask: mask2,
    });

    let mask1 = simp(m1.mask.clone().and(fused.left.clone()));
    let outer_md = LogicalPlan::MarkDistinct(MarkDistinct {
        input: Box::new(inner_md),
        columns: m1.columns.clone(),
        mark_id: m1.mark_id,
        mark_name: m1.mark_name.clone(),
        mask: mask1,
    });

    Some(Fused {
        plan: outer_md,
        mapping: fused.mapping,
        left: fused.left,
        right: fused.right,
    })
}

#[cfg(test)]
mod tests {
    use crate::fuse::{fuse, FuseContext};
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{LogicalPlan, PlanBuilder};

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("a", DataType::Int64, true),
            ColumnDef::new("b", DataType::Int64, true),
            ColumnDef::new("c", DataType::Int64, true),
        ]
    }

    /// Trivial compensations: the marks stack with mapped columns and no
    /// extra mask columns.
    #[test]
    fn trivial_fusion_stacks_marks() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t1 = PlanBuilder::scan(&gen, "t", &cols());
        let b1 = t1.col("b").unwrap();
        let p1 = t1.mark_distinct(vec![b1], "db").build();

        let t2 = PlanBuilder::scan(&gen, "t", &cols());
        let c2 = t2.col("c").unwrap();
        let p2 = t2.mark_distinct(vec![c2], "dc").build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        assert!(f.trivial());
        // Outer MD is p1's, inner is p2's over mapped columns.
        let outer = match &f.plan {
            LogicalPlan::MarkDistinct(md) => md,
            _ => panic!("expected MarkDistinct root"),
        };
        assert_eq!(outer.columns, vec![b1]);
        let inner = match outer.input.as_ref() {
            LogicalPlan::MarkDistinct(md) => md,
            _ => panic!("expected inner MarkDistinct"),
        };
        // c2 mapped to the left instance's c.
        assert_ne!(inner.columns, vec![c2]);
        assert_eq!(inner.columns.len(), 1);
        // Both marks are present in the fused schema.
        let schema = f.plan.schema();
        assert!(schema.field_by_name("db").is_some());
        assert!(schema.field_by_name("dc").is_some());
    }

    /// Non-trivial compensations land in the marks' native masks.
    #[test]
    fn compensated_fusion_tightens_native_masks() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t1 = PlanBuilder::scan(&gen, "t", &cols());
        let (a1, b1) = (t1.col("a").unwrap(), t1.col("b").unwrap());
        let p1 = t1
            .filter(col(a1).gt(lit(0i64)))
            .mark_distinct(vec![b1], "db")
            .build();

        let t2 = PlanBuilder::scan(&gen, "t", &cols());
        let (a2, c2) = (t2.col("a").unwrap(), t2.col("c").unwrap());
        let p2 = t2
            .filter(col(a2).lt(lit(0i64)))
            .mark_distinct(vec![c2], "dc")
            .build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        assert!(!f.trivial());
        let outer = match &f.plan {
            LogicalPlan::MarkDistinct(md) => md,
            _ => panic!("expected MarkDistinct root"),
        };
        // Key sets stay as-is; the compensations live in the native masks.
        assert_eq!(outer.columns.len(), 1);
        assert!(outer.mask.to_string().contains("> 0"));
        let inner = match outer.input.as_ref() {
            LogicalPlan::MarkDistinct(md) => md,
            _ => panic!("expected inner MarkDistinct"),
        };
        assert_eq!(inner.columns.len(), 1);
        assert!(inner.mask.to_string().contains("< 0"));
    }

    /// §III.G: MarkDistinct on one side is skipped and re-added, rather
    /// than blocking fusion.
    #[test]
    fn mark_distinct_root_mismatch_skips_and_readds() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t1 = PlanBuilder::scan(&gen, "t", &cols());
        let b1 = t1.col("b").unwrap();
        let p1 = t1.mark_distinct(vec![b1], "db").build();
        let p2 = PlanBuilder::scan(&gen, "t", &cols()).build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        assert!(matches!(f.plan, LogicalPlan::MarkDistinct(_)));
        // All of p2's outputs reachable through the mapping.
        let schema = f.plan.schema();
        for id in p2.schema().ids() {
            assert!(schema.contains(f.mapped_id(id)));
        }
    }
}
