// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! The Q09/Q28 pattern (§V.B): many scalar-aggregate subqueries over
//! overlapping subsets of the same fact table. The `JoinOnKeys` scalar
//! variant merges all of them into a single multi-masked scan — the
//! pattern with the paper's largest wins (3–6× latency, 60–85% fewer
//! bytes).
//!
//! ```sh
//! cargo run --release --example scalar_aggregates
//! ```

use fusion_engine::Session;
use fusion_tpcds::{generate_catalog, queries, TpcdsConfig};

fn main() {
    let cfg = TpcdsConfig::with_scale(0.5);
    let mut fused = Session::new();
    for t in generate_catalog(&cfg).into_tables() {
        fused.register_table(t);
    }
    let mut baseline = Session::baseline();
    for t in generate_catalog(&cfg).into_tables() {
        baseline.register_table(t);
    }

    for q in [queries::q09(), queries::q28(), queries::q88()] {
        let rb = baseline.sql(&q.sql).expect("baseline");
        let rf = fused.sql(&q.sql).expect("fused");
        assert_eq!(rf.sorted_rows(), rb.sorted_rows());

        let base_scans = rb.initial_plan.scanned_tables().len();
        let fused_scans = rf.optimized_plan.scanned_tables().len();
        println!("== {} ({}) ==", q.id, q.family);
        println!(
            "  table scans : {base_scans} -> {fused_scans} (fusion merged {} scans)",
            base_scans - fused_scans
        );
        println!(
            "  latency     : baseline {:>9.2?} | fused {:>9.2?} | {:.2}x",
            rb.latency,
            rf.latency,
            rb.latency.as_secs_f64() / rf.latency.as_secs_f64()
        );
        println!(
            "  bytes read  : baseline {:>10} | fused {:>10} | {:.0}% of baseline",
            rb.metrics.bytes_scanned,
            rf.metrics.bytes_scanned,
            100.0 * rf.metrics.bytes_scanned as f64 / rb.metrics.bytes_scanned as f64
        );
        println!();
    }
    println!("(paper: these queries improve 3–6x in latency and 60–85% in bytes)");
}
