//! Fusing aggregations (§III.E).

use std::collections::HashSet;

use fusion_common::ColumnId;
use fusion_expr::{equiv, AggFunc, AggregateExpr, Expr};
use fusion_plan::{AggAssign, Aggregate, LogicalPlan};

use super::{simp, FuseContext, Fused};

/// `Fuse(GroupBy_{K1,A1}(P1), GroupBy_{K2,A2}(P2))`.
///
/// The inputs fuse to `(P, M, L, R)`; the grouping keys must be equal
/// modulo `M`. Each aggregate of `A1` gets its mask tightened with `L`,
/// each aggregate of `A2` is mapped through `M` and tightened with `R`;
/// equivalent aggregate/mask pairs are deduplicated via the mapping.
///
/// For non-scalar GroupBys with a non-trivial compensation, a group whose
/// rows were all rejected by the compensation must not produce an output
/// row for that side — so compensating `COUNT(*) FILTER(L)` (resp. `R`)
/// aggregates are added, and the returned compensating filters become
/// `countL > 0` (resp. `countR > 0`).
pub fn fuse_aggregates(g1: &Aggregate, g2: &Aggregate, ctx: &FuseContext) -> Option<Fused> {
    let fused = super::fuse(&g1.input, &g2.input, ctx)?;

    // Grouping keys must match modulo the mapping (as id sets).
    let k1: HashSet<ColumnId> = g1.group_by.iter().copied().collect();
    let k2_mapped: HashSet<ColumnId> = g2.group_by.iter().map(|c| fused.mapped_id(*c)).collect();
    if k1 != k2_mapped {
        return None;
    }

    // Distinct aggregates cannot have their mask tightened (the dedup set
    // would still be polluted by the other side's rows is *not* true —
    // masks gate before dedup — but DISTINCT + mask interacts with the
    // MarkDistinct lowering, so we only allow it when the compensation for
    // that side is trivial).
    let mut mapping = fused.mapping.clone();
    let mut new_aggs: Vec<AggAssign> = Vec::with_capacity(g1.aggregates.len());

    for a in &g1.aggregates {
        if a.agg.distinct && !fused.left.is_true_literal() {
            return None;
        }
        let mask = simp(a.agg.mask.clone().and(fused.left.clone()));
        new_aggs.push(AggAssign::new(
            a.id,
            a.name.clone(),
            AggregateExpr {
                func: a.agg.func,
                arg: a.agg.arg.clone(),
                distinct: a.agg.distinct,
                mask,
            },
        ));
    }

    for a in &g2.aggregates {
        if a.agg.distinct && !fused.right.is_true_literal() {
            return None;
        }
        let mapped_arg = a.agg.arg.as_ref().map(|e| fused.map(e));
        let mask = simp(fused.map(&a.agg.mask).and(fused.right.clone()));
        let candidate = AggregateExpr {
            func: a.agg.func,
            arg: mapped_arg,
            distinct: a.agg.distinct,
            mask,
        };
        match new_aggs.iter().find(|existing| {
            existing.agg.func == candidate.agg_func()
                && existing.agg.distinct == candidate.distinct
                && args_equiv(&existing.agg.arg, &candidate.arg)
                && equiv(&existing.agg.mask, &candidate.mask)
        }) {
            Some(existing) => {
                mapping.insert(a.id, existing.id);
            }
            None => {
                new_aggs.push(AggAssign::new(a.id, a.name.clone(), candidate));
            }
        }
    }

    // Compensating COUNT(*) aggregates for non-scalar GroupBys (§III.E).
    let scalar = g1.group_by.is_empty();
    let comp_left = compensation(&mut new_aggs, &fused.left, scalar, ctx, "$countL");
    let comp_right = compensation(&mut new_aggs, &fused.right, scalar, ctx, "$countR");

    Some(Fused {
        plan: LogicalPlan::Aggregate(Aggregate {
            input: Box::new(fused.plan),
            group_by: g1.group_by.clone(),
            aggregates: new_aggs,
        }),
        mapping,
        left: comp_left,
        right: comp_right,
    })
}

trait AggFuncOf {
    fn agg_func(&self) -> AggFunc;
}
impl AggFuncOf for AggregateExpr {
    fn agg_func(&self) -> AggFunc {
        self.func
    }
}

fn args_equiv(a: &Option<Expr>, b: &Option<Expr>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => equiv(x, y),
        _ => false,
    }
}

/// Build the compensating filter for one side. Reuses an existing
/// `COUNT(*)` with an equivalent mask when one is already present.
fn compensation(
    aggs: &mut Vec<AggAssign>,
    comp: &Expr,
    scalar: bool,
    ctx: &FuseContext,
    name: &str,
) -> Expr {
    if scalar || comp.is_true_literal() {
        return Expr::boolean(true);
    }
    let count_id = match aggs.iter().find(|a| {
        a.agg.func == AggFunc::CountStar && !a.agg.distinct && equiv(&a.agg.mask, comp)
    }) {
        Some(existing) => existing.id,
        None => {
            let id = ctx.gen.fresh();
            aggs.push(AggAssign::new(
                id,
                name,
                AggregateExpr::count_star().with_mask(comp.clone()),
            ));
            id
        }
    };
    fusion_expr::col(count_id).gt(fusion_expr::lit(0i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::{fuse, FuseContext};
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn item_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("i_item_sk", DataType::Int64, false),
            ColumnDef::new("i_brand_id", DataType::Int64, true),
            ColumnDef::new("i_category_id", DataType::Int64, true),
            ColumnDef::new("i_color", DataType::Utf8, true),
            ColumnDef::new("i_size", DataType::Utf8, true),
        ]
    }

    /// The §III.E example: `MIN(i_brand_id)` grouped by item over
    /// `i_color = 'red'`, fused with `AVG(i_category_id) FILTER (i_size =
    /// 'm')` grouped by item over the unfiltered table. The fused GroupBy
    /// carries both aggregates with tightened masks plus a compensating
    /// `COUNT(*) FILTER (i_color = 'red')`, and `L` becomes `count > 0`.
    #[test]
    fn masked_fusion_with_compensating_count() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());

        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let (a_sk, a_brand, a_color) = (
            a.col("i_item_sk").unwrap(),
            a.col("i_brand_id").unwrap(),
            a.col("i_color").unwrap(),
        );
        let g1 = a
            .filter(col(a_color).eq_to(lit("red")))
            .aggregate(
                vec![a_sk],
                vec![("mi", AggregateExpr::min(col(a_brand)))],
            )
            .build();

        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let (b_sk, b_cat, b_size) = (
            b.col("i_item_sk").unwrap(),
            b.col("i_category_id").unwrap(),
            b.col("i_size").unwrap(),
        );
        let g2 = b
            .aggregate(
                vec![b_sk],
                vec![(
                    "avgc",
                    AggregateExpr::avg(col(b_cat)).with_mask(col(b_size).eq_to(lit("m"))),
                )],
            )
            .build();

        let f = fuse(&g1, &g2, &ctx).unwrap();
        f.plan.validate().unwrap();

        // L = countL > 0, R = TRUE.
        assert!(f.left.to_string().contains("> 0"));
        assert!(f.right.is_true_literal());

        let agg = match &f.plan {
            LogicalPlan::Aggregate(agg) => agg,
            other => panic!("expected Aggregate, got {}", other.op_name()),
        };
        // mi (masked by red), avgc (masked by size), countL (masked by red)
        assert_eq!(agg.aggregates.len(), 3);
        let mi = &agg.aggregates[0];
        assert!(mi.agg.mask.to_string().contains("red"));
        let countl = &agg.aggregates[2];
        assert_eq!(countl.agg.func, AggFunc::CountStar);
        assert!(countl.agg.mask.to_string().contains("red"));
    }

    /// The abstract §III.E example:
    /// `G1 = GroupBy{a}, x:=(SUM(b), TRUE)(Filter c=1(T))`
    /// `G2 = GroupBy{a}, y:=(AVG(b), d=1)(T)`
    /// fuses into one GroupBy with masks `c=1`, `d=1`, plus
    /// `z:=(COUNT(*), c=1)`, and `L = z > 0`.
    #[test]
    fn paper_example_shapes() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let cols = vec![
            ColumnDef::new("a", DataType::Int64, true),
            ColumnDef::new("b", DataType::Int64, true),
            ColumnDef::new("c", DataType::Int64, true),
            ColumnDef::new("d", DataType::Int64, true),
        ];
        let t1 = PlanBuilder::scan(&gen, "t", &cols);
        let (a1, b1, c1) = (
            t1.col("a").unwrap(),
            t1.col("b").unwrap(),
            t1.col("c").unwrap(),
        );
        let g1 = t1
            .filter(col(c1).eq_to(lit(1i64)))
            .aggregate(vec![a1], vec![("x", AggregateExpr::sum(col(b1)))])
            .build();

        let t2 = PlanBuilder::scan(&gen, "t", &cols);
        let (a2, b2, d2) = (
            t2.col("a").unwrap(),
            t2.col("b").unwrap(),
            t2.col("d").unwrap(),
        );
        let g2 = t2
            .aggregate(
                vec![a2],
                vec![(
                    "y",
                    AggregateExpr::avg(col(b2)).with_mask(col(d2).eq_to(lit(1i64))),
                )],
            )
            .build();

        let f = fuse(&g1, &g2, &ctx).unwrap();
        f.plan.validate().unwrap();
        let agg = match &f.plan {
            LogicalPlan::Aggregate(agg) => agg,
            _ => panic!("expected Aggregate"),
        };
        assert_eq!(agg.group_by, vec![a1]);
        assert_eq!(agg.aggregates.len(), 3); // x, y, z
        assert!(f.left.to_string().contains("> 0"));
        assert!(f.right.is_true_literal());
        // y is reachable via the mapping with its own id (it was new).
        let y_id = g2.schema().field(1).id;
        assert!(f.plan.schema().contains(f.mapped_id(y_id)));
    }

    /// Identical aggregates deduplicate through the mapping.
    #[test]
    fn identical_aggregates_deduplicate() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |gen: &IdGen| {
            let t = PlanBuilder::scan(gen, "item", &item_cols());
            let (sk, brand) = (t.col("i_item_sk").unwrap(), t.col("i_brand_id").unwrap());
            t.aggregate(vec![sk], vec![("s", AggregateExpr::sum(col(brand)))])
                .build()
        };
        let g1 = mk(&gen);
        let g2 = mk(&gen);
        let f = fuse(&g1, &g2, &ctx).unwrap();
        assert!(f.trivial());
        let agg = match &f.plan {
            LogicalPlan::Aggregate(agg) => agg,
            _ => panic!(),
        };
        assert_eq!(agg.aggregates.len(), 1);
        let s2 = g2.schema().field(1).id;
        assert_eq!(f.mapped_id(s2), g1.schema().field(1).id);
    }

    /// Different grouping keys do not fuse.
    #[test]
    fn different_groupings_rejected() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t1 = PlanBuilder::scan(&gen, "item", &item_cols());
        let sk1 = t1.col("i_item_sk").unwrap();
        let g1 = t1
            .aggregate(vec![sk1], vec![("n", AggregateExpr::count_star())])
            .build();
        let t2 = PlanBuilder::scan(&gen, "item", &item_cols());
        let brand2 = t2.col("i_brand_id").unwrap();
        let g2 = t2
            .aggregate(vec![brand2], vec![("n", AggregateExpr::count_star())])
            .build();
        assert!(fuse(&g1, &g2, &ctx).is_none());
    }

    /// Scalar aggregates fuse without compensating counts: the masks do
    /// all the work, and both compensating filters stay TRUE.
    #[test]
    fn scalar_aggregates_need_no_compensation() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t1 = PlanBuilder::scan(&gen, "item", &item_cols());
        let b1 = t1.col("i_brand_id").unwrap();
        let g1 = t1
            .filter(col(b1).gt(lit(100i64)))
            .aggregate(vec![], vec![("c", AggregateExpr::count_star())])
            .build();
        let t2 = PlanBuilder::scan(&gen, "item", &item_cols());
        let b2 = t2.col("i_brand_id").unwrap();
        let g2 = t2
            .filter(col(b2).lt(lit(50i64)))
            .aggregate(vec![], vec![("c", AggregateExpr::count_star())])
            .build();

        let f = fuse(&g1, &g2, &ctx).unwrap();
        f.plan.validate().unwrap();
        assert!(f.trivial());
        let agg = match &f.plan {
            LogicalPlan::Aggregate(agg) => agg,
            _ => panic!(),
        };
        assert!(agg.is_scalar());
        assert_eq!(agg.aggregates.len(), 2);
        // Each count carries its side's filter as a mask.
        assert!(agg.aggregates[0].agg.mask.to_string().contains("> 100"));
        assert!(agg.aggregates[1].agg.mask.to_string().contains("< 50"));
    }
}
