//! Hash aggregation with masked aggregates, and partition-wide window
//! aggregates.
//!
//! Masks are first-class here: each aggregate carries its own boolean
//! mask expression (§III.E), so a single GroupBy can aggregate different
//! subsets of its input — the property query fusion relies on to merge
//! two GroupBys into one.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use fusion_common::{FusionError, Result, Schema, Value};
use fusion_expr::{AggFunc, AggregateExpr, HashedKey, WindowExpr};

use crate::context::{BudgetedReservation, ExecContext, IntoContext};
use crate::ops::scan::ScanFragment;
use crate::ops::{drain, row_bytes, BoxedOp, Operator, RowIndex};
use crate::profile::OpSpan;
use crate::{Chunk, Row, CHUNK_SIZE};

/// Accumulator for one aggregate function instance.
#[derive(Debug, Clone)]
pub enum Acc {
    Count(i64),
    SumInt(Option<i64>),
    SumFloat(Option<f64>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    pub fn new(func: AggFunc, int_sum: bool) -> Acc {
        match func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if int_sum {
                    Acc::SumInt(None)
                } else {
                    Acc::SumFloat(None)
                }
            }
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    /// Feed one (mask-accepted) value. `v` is `None` for `COUNT(*)`.
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                // COUNT(*) counts every accepted row; COUNT(x) only
                // non-null values.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            Acc::SumInt(acc) => {
                if let Some(val) = v {
                    if let Some(i) = val.as_i64() {
                        *acc = Some(acc.unwrap_or(0).wrapping_add(i));
                    } else if let Some(f) = val.as_f64() {
                        // Type widened mid-stream: degrade via float.
                        *acc = Some(acc.unwrap_or(0).wrapping_add(f as i64));
                    }
                }
            }
            Acc::SumFloat(acc) => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *acc = Some(acc.unwrap_or(0.0) + f);
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *n += 1;
                    }
                }
            }
            Acc::Min(acc) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        match acc {
                            None => *acc = Some(val.clone()),
                            Some(cur) => {
                                if val < cur {
                                    *acc = Some(val.clone());
                                }
                            }
                        }
                    }
                }
            }
            Acc::Max(acc) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        match acc {
                            None => *acc = Some(val.clone()),
                            Some(cur) => {
                                if val > cur {
                                    *acc = Some(val.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    pub fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(*n),
            Acc::SumInt(acc) => acc.map(Value::Int64).unwrap_or(Value::Null),
            Acc::SumFloat(acc) => acc.map(Value::Float64).unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / *n as f64)
                }
            }
            Acc::Min(acc) | Acc::Max(acc) => acc.clone().unwrap_or(Value::Null),
        }
    }

    /// Fold another accumulator of the same shape into this one — the
    /// merge step of partitioned (morsel-parallel) aggregation. Callers
    /// merge partials in partition-index order, which keeps float sums
    /// bit-identical across runs at a given thread count.
    pub fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::SumInt(a), Acc::SumInt(b)) => {
                if let Some(b) = b {
                    *a = Some(a.unwrap_or(0).wrapping_add(*b));
                }
            }
            (Acc::SumFloat(a), Acc::SumFloat(b)) => {
                if let Some(b) = b {
                    *a = Some(a.unwrap_or(0.0) + b);
                }
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::Min(a), Acc::Min(b)) => {
                if let Some(b) = b {
                    match a {
                        None => *a = Some(b.clone()),
                        Some(cur) => {
                            if b < cur {
                                *a = Some(b.clone());
                            }
                        }
                    }
                }
            }
            (Acc::Max(a), Acc::Max(b)) => {
                if let Some(b) = b {
                    match a {
                        None => *a = Some(b.clone()),
                        Some(cur) => {
                            if b > cur {
                                *a = Some(b.clone());
                            }
                        }
                    }
                }
            }
            _ => unreachable!("merging accumulators of different shapes"),
        }
    }
}

/// Per-group state: one accumulator per aggregate, plus distinct sets for
/// `AGG(DISTINCT x)`. Shared with the fused-pipeline aggregate, which
/// mirrors both accumulation modes exactly.
pub(crate) struct GroupState {
    pub(crate) accs: Vec<Acc>,
    pub(crate) distinct_seen: Vec<Option<HashSet<Value>>>,
}

impl GroupState {
    pub(crate) fn new(aggregates: &[AggregateExpr], int_sums: &[bool]) -> Self {
        GroupState {
            accs: aggregates
                .iter()
                .zip(int_sums)
                .map(|(a, int_sum)| Acc::new(a.func, *int_sum))
                .collect(),
            distinct_seen: aggregates
                .iter()
                .map(|a| if a.distinct { Some(HashSet::new()) } else { None })
                .collect(),
        }
    }

    /// Merge a partial from another partition into this one. Distinct
    /// aggregates union their seen-sets only — their accumulators are
    /// rebuilt from the union at finish time, so a value appearing in
    /// several partitions is never double-counted.
    pub(crate) fn merge(&mut self, other: GroupState) {
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            a.merge(b);
        }
        for (s, o) in self.distinct_seen.iter_mut().zip(other.distinct_seen) {
            if let (Some(s), Some(o)) = (s, o) {
                s.extend(o);
            }
        }
    }
}

/// Hash aggregation. A GroupBy with no grouping columns (scalar
/// aggregate) emits exactly one row even over empty input; a GroupBy with
/// no aggregate functions is a DISTINCT.
pub struct HashAggregateExec {
    input: Option<BoxedOp>,
    group_positions: Vec<usize>,
    aggregates: Vec<AggregateExpr>,
    int_sums: Vec<bool>,
    input_index: RowIndex,
    schema: Schema,
    ctx: Arc<ExecContext>,
    output: Option<std::vec::IntoIter<Row>>,
    span: Option<Arc<OpSpan>>,
}

impl HashAggregateExec {
    pub fn new(
        input: BoxedOp,
        group_positions: Vec<usize>,
        aggregates: Vec<AggregateExpr>,
        schema: Schema,
        ctx: impl IntoContext,
    ) -> Result<Self> {
        let input_schema = input.schema().clone();
        let input_index = RowIndex::new(&input_schema);
        let int_sums = aggregates
            .iter()
            .map(|a| {
                a.func == AggFunc::Sum
                    && a.arg
                        .as_ref()
                        .map(|e| {
                            e.data_type(&input_schema)
                                .map(|t| t == fusion_common::DataType::Int64)
                                .unwrap_or(false)
                        })
                        .unwrap_or(false)
            })
            .collect();
        Ok(HashAggregateExec {
            input: Some(input),
            group_positions,
            aggregates,
            int_sums,
            input_index,
            schema,
            ctx: ctx.into_ctx(),
            output: None,
            span: None,
        })
    }

    fn compute(&mut self) -> Result<Vec<Row>> {
        let mut input = self
            .input
            .take()
            .expect("aggregate input consumed exactly once: compute runs behind output.is_none()");
        let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
        let scalar = self.group_positions.is_empty();

        // Aggregates frequently share masks after fusion (e.g. the three
        // Q09 aggregates of one quantity bucket): evaluate each distinct
        // mask expression once per row.
        let mut distinct_masks: Vec<&fusion_expr::Expr> = Vec::new();
        let mask_slot: Vec<Option<usize>> = self
            .aggregates
            .iter()
            .map(|a| {
                if a.unmasked() {
                    None
                } else {
                    Some(
                        match distinct_masks.iter().position(|m| **m == a.mask) {
                            Some(i) => i,
                            None => {
                                distinct_masks.push(&a.mask);
                                distinct_masks.len() - 1
                            }
                        },
                    )
                }
            })
            .collect();
        let mut mask_values = vec![false; distinct_masks.len()];

        // Reserve hash-table state incrementally (chunk by chunk) so an
        // enforced budget aborts as soon as it is crossed, not after the
        // whole input is consumed.
        let mut reservation = BudgetedReservation::try_new(self.ctx.clone(), 0)?;
        if let Some(span) = &self.span {
            reservation.set_span(span.clone());
        }
        while let Some(chunk) = input.next_chunk()? {
            self.ctx.check()?;
            let mut state_bytes = 0i64;
            for row in chunk {
                for (slot, mask) in distinct_masks.iter().enumerate() {
                    mask_values[slot] = self.input_index.eval_pred(mask, &row)?;
                }
                let key: Vec<Value> = self
                    .group_positions
                    .iter()
                    .map(|&p| row[p].clone())
                    .collect();
                let is_new = !groups.contains_key(&key);
                if is_new {
                    state_bytes += row_bytes(&key) + 64 * self.aggregates.len() as i64;
                }
                let state = groups
                    .entry(key)
                    .or_insert_with(|| GroupState::new(&self.aggregates, &self.int_sums));
                for (i, agg) in self.aggregates.iter().enumerate() {
                    // Mask check (§III.E): skip rows the mask rejects.
                    if let Some(slot) = mask_slot[i] {
                        if !mask_values[slot] {
                            continue;
                        }
                    }
                    let arg_value = match &agg.arg {
                        Some(e) => Some(self.input_index.eval(e, &row)?),
                        None => None,
                    };
                    if let Some(seen) = &mut state.distinct_seen[i] {
                        match &arg_value {
                            Some(v) if !v.is_null() => {
                                if !seen.insert(v.clone()) {
                                    continue; // already counted
                                }
                            }
                            _ => continue,
                        }
                    }
                    state.accs[i].update(arg_value.as_ref());
                }
            }
            reservation.try_grow(state_bytes)?;
        }
        let _reservation = reservation;

        if scalar && groups.is_empty() {
            // Scalar aggregates return one row over empty input.
            let row: Row = self
                .aggregates
                .iter()
                .zip(&self.int_sums)
                .map(|(a, int_sum)| Acc::new(a.func, *int_sum).finish())
                .collect();
            return Ok(vec![row]);
        }

        let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
        keys.sort(); // deterministic output order
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let state = &groups[&key];
            let mut row = key.clone();
            row.extend(state.accs.iter().map(|a| a.finish()));
            out.push(row);
        }
        Ok(out)
    }
}

impl Operator for HashAggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.output.is_none() {
            let rows = self.compute()?;
            self.output = Some(rows.into_iter());
        }
        let it = self
            .output
            .as_mut()
            .expect("aggregate output was initialized above");
        let chunk: Vec<Row> = it.take(CHUNK_SIZE).collect();
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }

    fn attach_span(&mut self, span: Arc<OpSpan>) {
        self.span = Some(span);
    }
}

/// One partition's contribution to a parallel aggregation: its local
/// group table plus the budget reservation covering that table's bytes
/// (held until the merge completes).
struct AggPartial {
    groups: HashMap<HashedKey, GroupState>,
    _reservation: BudgetedReservation,
}

/// Morsel-parallel hash aggregation directly over a table scan: each
/// worker scans whole partitions (via [`ScanFragment::scan_partition`])
/// and builds a local group table; partials are merged in
/// partition-index order, so the result is deterministic regardless of
/// worker scheduling. Distinct aggregates accumulate *only* their
/// seen-sets in partials and are finalized from the merged union.
pub struct ParallelHashAggregateExec {
    fragment: Arc<ScanFragment>,
    group_positions: Vec<usize>,
    aggregates: Vec<AggregateExpr>,
    int_sums: Vec<bool>,
    input_index: RowIndex,
    schema: Schema,
    ctx: Arc<ExecContext>,
    workers: usize,
    output: Option<std::vec::IntoIter<Row>>,
    span: Option<Arc<OpSpan>>,
}

impl ParallelHashAggregateExec {
    pub fn new(
        fragment: Arc<ScanFragment>,
        group_positions: Vec<usize>,
        aggregates: Vec<AggregateExpr>,
        schema: Schema,
        workers: usize,
    ) -> Result<Self> {
        let input_schema = fragment.schema().clone();
        let input_index = RowIndex::new(&input_schema);
        let int_sums = aggregates
            .iter()
            .map(|a| {
                a.func == AggFunc::Sum
                    && a.arg
                        .as_ref()
                        .map(|e| {
                            e.data_type(&input_schema)
                                .map(|t| t == fusion_common::DataType::Int64)
                                .unwrap_or(false)
                        })
                        .unwrap_or(false)
            })
            .collect();
        let ctx = fragment.ctx().clone();
        Ok(ParallelHashAggregateExec {
            fragment,
            group_positions,
            aggregates,
            int_sums,
            input_index,
            schema,
            ctx,
            workers: workers.max(1),
            output: None,
            span: None,
        })
    }

    /// Scan one partition and aggregate it into a local group table.
    fn build_partial(&self, part_idx: usize) -> Result<Option<AggPartial>> {
        let rows = match self.fragment.scan_partition(part_idx)? {
            None => return Ok(None),
            Some(rows) => rows,
        };
        if rows.is_empty() {
            return Ok(None);
        }
        // Worker busy time attributed to the aggregate itself (the scan
        // above records its own time on the scan node's span).
        let build_start = Instant::now();
        let mut distinct_masks: Vec<&fusion_expr::Expr> = Vec::new();
        let mask_slot: Vec<Option<usize>> = self
            .aggregates
            .iter()
            .map(|a| {
                if a.unmasked() {
                    None
                } else {
                    Some(
                        match distinct_masks.iter().position(|m| **m == a.mask) {
                            Some(i) => i,
                            None => {
                                distinct_masks.push(&a.mask);
                                distinct_masks.len() - 1
                            }
                        },
                    )
                }
            })
            .collect();
        let mut mask_values = vec![false; distinct_masks.len()];

        let mut groups: HashMap<HashedKey, GroupState> = HashMap::new();
        let mut state_bytes = 0i64;
        for row in &rows {
            for (slot, mask) in distinct_masks.iter().enumerate() {
                mask_values[slot] = self.input_index.eval_pred(mask, row)?;
            }
            let key = HashedKey::new(
                self.group_positions
                    .iter()
                    .map(|&p| row[p].clone())
                    .collect(),
            );
            if !groups.contains_key(&key) {
                state_bytes += row_bytes(&key.key) + 64 * self.aggregates.len() as i64;
            }
            let state = groups
                .entry(key)
                .or_insert_with(|| GroupState::new(&self.aggregates, &self.int_sums));
            for (i, agg) in self.aggregates.iter().enumerate() {
                if let Some(slot) = mask_slot[i] {
                    if !mask_values[slot] {
                        continue;
                    }
                }
                let arg_value = match &agg.arg {
                    Some(e) => Some(self.input_index.eval(e, row)?),
                    None => None,
                };
                if let Some(seen) = &mut state.distinct_seen[i] {
                    // Distinct: record the value only. The accumulator is
                    // rebuilt from the merged seen-set at finish time —
                    // updating it here would double-count values that
                    // also appear in other partitions.
                    if let Some(v) = &arg_value {
                        if !v.is_null() {
                            seen.insert(v.clone());
                        }
                    }
                    continue;
                }
                state.accs[i].update(arg_value.as_ref());
            }
        }
        let mut reservation = BudgetedReservation::try_new(self.ctx.clone(), state_bytes)?;
        if let Some(span) = &self.span {
            span.add_cpu_nanos(build_start.elapsed().as_nanos() as u64);
            reservation.set_span(span.clone());
        }
        Ok(Some(AggPartial {
            groups,
            _reservation: reservation,
        }))
    }

    fn compute(&self) -> Result<Vec<Row>> {
        let partials = crate::ops::exchange::collect_morsels(
            &self.ctx,
            self.fragment.num_partitions(),
            self.workers,
            |m| self.build_partial(m),
        )?;

        // Merge in partition-index order (collect_morsels sorts).
        let mut groups: HashMap<HashedKey, GroupState> = HashMap::new();
        let mut reservations = Vec::with_capacity(partials.len());
        for (_, partial) in partials {
            reservations.push(partial._reservation);
            for (key, st) in partial.groups {
                match groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(st),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(st);
                    }
                }
            }
        }

        let scalar = self.group_positions.is_empty();
        if scalar && groups.is_empty() {
            let row: Row = self
                .aggregates
                .iter()
                .zip(&self.int_sums)
                .map(|(a, int_sum)| Acc::new(a.func, *int_sum).finish())
                .collect();
            return Ok(vec![row]);
        }

        let mut keys: Vec<HashedKey> = groups.keys().cloned().collect();
        keys.sort_by(|a, b| a.key.cmp(&b.key)); // deterministic output order
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let state = &groups[&key];
            let mut row = key.key.clone();
            for (i, agg) in self.aggregates.iter().enumerate() {
                let v = match &state.distinct_seen[i] {
                    Some(seen) => {
                        // Rebuild the distinct accumulator from the merged
                        // set in sorted order for determinism.
                        let mut acc = Acc::new(agg.func, self.int_sums[i]);
                        let mut vals: Vec<&Value> = seen.iter().collect();
                        vals.sort();
                        for v in vals {
                            acc.update(Some(v));
                        }
                        acc.finish()
                    }
                    None => state.accs[i].finish(),
                };
                row.push(v);
            }
            out.push(row);
        }
        Ok(out)
    }
}

impl Operator for ParallelHashAggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.output.is_none() {
            let rows = self.compute()?;
            self.output = Some(rows.into_iter());
        }
        let it = self
            .output
            .as_mut()
            .expect("aggregate output was initialized above");
        let chunk: Vec<Row> = it.take(CHUNK_SIZE).collect();
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }

    fn attach_span(&mut self, span: Arc<OpSpan>) {
        self.span = Some(span);
    }
}

/// Partition-wide window aggregates: compute `AGG(x)` per partition of
/// `PARTITION BY` keys and append the partition's aggregate to every row.
pub struct WindowExec {
    input: Option<BoxedOp>,
    exprs: Vec<WindowExpr>,
    input_index: RowIndex,
    schema: Schema,
    ctx: Arc<ExecContext>,
    output: Option<std::vec::IntoIter<Row>>,
    span: Option<Arc<OpSpan>>,
}

impl WindowExec {
    pub fn new(
        input: BoxedOp,
        exprs: Vec<WindowExpr>,
        schema: Schema,
        ctx: impl IntoContext,
    ) -> Self {
        let input_index = RowIndex::new(input.schema());
        WindowExec {
            input: Some(input),
            exprs,
            input_index,
            schema,
            ctx: ctx.into_ctx(),
            output: None,
            span: None,
        }
    }

    fn compute(&mut self) -> Result<Vec<Row>> {
        self.ctx.check()?;
        let mut input = self
            .input
            .take()
            .expect("window input consumed exactly once: compute runs behind output.is_none()");
        let rows = drain(input.as_mut())?;
        let bytes: i64 = rows.iter().map(|r| row_bytes(r)).sum();
        let mut reservation = BudgetedReservation::try_new(self.ctx.clone(), bytes)?;
        if let Some(span) = &self.span {
            reservation.set_span(span.clone());
        }
        let _reservation = reservation;

        // Per window expr: partition key -> accumulator.
        let mut states: Vec<HashMap<Vec<Value>, Acc>> =
            self.exprs.iter().map(|_| HashMap::new()).collect();
        let mut keys_per_row: Vec<Vec<Vec<Value>>> = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut row_keys = Vec::with_capacity(self.exprs.len());
            for (i, w) in self.exprs.iter().enumerate() {
                let key: Vec<Value> = w
                    .partition_by
                    .iter()
                    .map(|c| {
                        self.input_index
                            .position(*c)
                            .map(|p| row[p].clone())
                    })
                    .collect::<Result<_>>()?;
                let acc = states[i]
                    .entry(key.clone())
                    .or_insert_with(|| Acc::new(w.func, false));
                let accepted =
                    w.unmasked() || self.input_index.eval_pred(&w.mask, row)?;
                if accepted {
                    let arg_value = match &w.arg {
                        Some(e) => Some(self.input_index.eval(e, row)?),
                        None => None,
                    };
                    acc.update(arg_value.as_ref());
                }
                row_keys.push(key);
            }
            keys_per_row.push(row_keys);
        }

        let mut out = Vec::with_capacity(rows.len());
        for (row, row_keys) in rows.into_iter().zip(keys_per_row) {
            let mut new_row = row;
            for (i, key) in row_keys.iter().enumerate() {
                let v = states[i]
                    .get(key)
                    .map(|a| a.finish())
                    .ok_or_else(|| FusionError::Internal("window partition missing".into()))?;
                new_row.push(v);
            }
            out.push(new_row);
        }
        Ok(out)
    }
}

impl Operator for WindowExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.output.is_none() {
            let rows = self.compute()?;
            self.output = Some(rows.into_iter());
        }
        let it = self
            .output
            .as_mut()
            .expect("window output was initialized above");
        let chunk: Vec<Row> = it.take(CHUNK_SIZE).collect();
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }

    fn attach_span(&mut self, span: Arc<OpSpan>) {
        self.span = Some(span);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::ops::basic::ConstantTableExec;
    use fusion_common::{ColumnId, DataType, Field};
    use fusion_expr::{col, lit, Expr};

    fn source(rows: Vec<Vec<Value>>) -> BoxedOp {
        // columns: g (#1, int), v (#2, int), f (#3, bool-ish int)
        let schema = Schema::new(vec![
            Field::new(ColumnId(1), "g", DataType::Int64, true),
            Field::new(ColumnId(2), "v", DataType::Int64, true),
        ]);
        Box::new(ConstantTableExec::new(rows, schema))
    }

    fn rows_i64(data: &[(i64, i64)]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|(g, v)| vec![Value::Int64(*g), Value::Int64(*v)])
            .collect()
    }

    fn out_schema(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| Field::new(ColumnId(100 + i as u32), format!("o{i}"), DataType::Int64, true))
                .collect(),
        )
    }

    #[test]
    fn grouped_sum_and_count() {
        let input = source(rows_i64(&[(1, 10), (1, 20), (2, 5)]));
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![
                AggregateExpr::sum(col(ColumnId(2))),
                AggregateExpr::count_star(),
            ],
            out_schema(3),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1), Value::Int64(30), Value::Int64(2)],
                vec![Value::Int64(2), Value::Int64(5), Value::Int64(1)],
            ]
        );
    }

    #[test]
    fn masks_partition_the_input() {
        let input = source(rows_i64(&[(1, 10), (1, 20), (1, 30)]));
        // SUM(v) FILTER (v < 25), COUNT(*) FILTER (v >= 25)
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![
                AggregateExpr::sum(col(ColumnId(2))).with_mask(col(ColumnId(2)).lt(lit(25i64))),
                AggregateExpr::count_star().with_mask(col(ColumnId(2)).gt_eq(lit(25i64))),
            ],
            out_schema(3),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int64(1), Value::Int64(30), Value::Int64(1)]]
        );
    }

    #[test]
    fn fully_masked_group_still_emits_row() {
        // This is the subtlety §III.E compensates for with COUNT(*) masks:
        // a group whose rows are all rejected by the mask still produces a
        // row (with NULL/0 aggregates).
        let input = source(rows_i64(&[(1, 10)]));
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![
                AggregateExpr::sum(col(ColumnId(2))).with_mask(Expr::boolean(false)),
                AggregateExpr::count_star().with_mask(Expr::boolean(false)),
            ],
            out_schema(3),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int64(1), Value::Null, Value::Int64(0)]]
        );
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let input = source(vec![]);
        let mut agg = HashAggregateExec::new(
            input,
            vec![],
            vec![
                AggregateExpr::count_star(),
                AggregateExpr::sum(col(ColumnId(2))),
            ],
            out_schema(2),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(rows, vec![vec![Value::Int64(0), Value::Null]]);
    }

    #[test]
    fn distinct_is_group_by_without_aggs() {
        let input = source(rows_i64(&[(1, 0), (1, 0), (2, 0)]));
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![],
            out_schema(1),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(rows, vec![vec![Value::Int64(1)], vec![Value::Int64(2)]]);
    }

    #[test]
    fn distinct_aggregate_dedupes_values() {
        let input = source(rows_i64(&[(1, 10), (1, 10), (1, 20)]));
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![AggregateExpr::count(col(ColumnId(2))).with_distinct(true)],
            out_schema(2),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(rows, vec![vec![Value::Int64(1), Value::Int64(2)]]);
    }

    #[test]
    fn count_ignores_nulls_but_count_star_does_not() {
        let input = source(vec![
            vec![Value::Int64(1), Value::Null],
            vec![Value::Int64(1), Value::Int64(5)],
        ]);
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![
                AggregateExpr::count(col(ColumnId(2))),
                AggregateExpr::count_star(),
            ],
            out_schema(3),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int64(1), Value::Int64(1), Value::Int64(2)]]
        );
    }

    #[test]
    fn group_state_over_hard_budget_aborts() {
        // Three groups of ~64+ bytes of accumulator state each; a 100-byte
        // enforced budget cannot hold them.
        let ctx = ExecContext::builder(ExecMetrics::new())
            .hard_budget(100)
            .build();
        let input = source(rows_i64(&[(1, 10), (2, 20), (3, 30)]));
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![AggregateExpr::sum(col(ColumnId(2)))],
            out_schema(2),
            ctx,
        )
        .unwrap();
        assert!(matches!(
            drain(&mut agg),
            Err(FusionError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn window_broadcasts_partition_aggregate() {
        let input = source(rows_i64(&[(1, 10), (1, 20), (2, 30)]));
        let w = WindowExpr::new(AggFunc::Avg, Some(col(ColumnId(2))), vec![ColumnId(1)]);
        let mut win = WindowExec::new(
            input,
            vec![w],
            out_schema(3),
            ExecMetrics::new(),
        );
        let rows = drain(&mut win).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][2], Value::Float64(15.0));
        assert_eq!(rows[1][2], Value::Float64(15.0));
        assert_eq!(rows[2][2], Value::Float64(30.0));
    }

    #[test]
    fn window_preserves_row_multiplicity_and_order() {
        let input = source(rows_i64(&[(2, 1), (1, 2), (2, 3)]));
        let w = WindowExpr::new(AggFunc::CountStar, None, vec![ColumnId(1)]);
        let mut win = WindowExec::new(input, vec![w], out_schema(3), ExecMetrics::new());
        let rows = drain(&mut win).unwrap();
        assert_eq!(rows.len(), 3);
        // Row order is preserved (streaming pass-through semantics).
        assert_eq!(rows[0][0], Value::Int64(2));
        assert_eq!(rows[0][2], Value::Int64(2)); // two rows in partition g=2
        assert_eq!(rows[1][2], Value::Int64(1));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod edge_tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::ops::basic::ConstantTableExec;
    use crate::ops::{drain, BoxedOp};
    use fusion_common::{ColumnId, DataType, Field, Value};
    use fusion_expr::col;

    fn source(rows: Vec<Vec<Value>>) -> BoxedOp {
        let schema = Schema::new(vec![
            Field::new(ColumnId(1), "g", DataType::Int64, true),
            Field::new(ColumnId(2), "v", DataType::Float64, true),
        ]);
        Box::new(ConstantTableExec::new(rows, schema))
    }

    fn out_schema(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| {
                    Field::new(ColumnId(100 + i as u32), format!("o{i}"), DataType::Float64, true)
                })
                .collect(),
        )
    }

    #[test]
    fn null_group_keys_form_a_group() {
        let input = source(vec![
            vec![Value::Null, Value::Float64(1.0)],
            vec![Value::Null, Value::Float64(2.0)],
            vec![Value::Int64(1), Value::Float64(3.0)],
        ]);
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![AggregateExpr::sum(col(ColumnId(2)))],
            out_schema(2),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(rows.len(), 2);
        // NULL group sorts first and sums 3.0.
        assert_eq!(rows[0], vec![Value::Null, Value::Float64(3.0)]);
    }

    #[test]
    fn min_max_ignore_nulls_and_handle_all_null_groups() {
        let input = source(vec![
            vec![Value::Int64(1), Value::Null],
            vec![Value::Int64(1), Value::Float64(5.0)],
            vec![Value::Int64(2), Value::Null],
        ]);
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![
                AggregateExpr::min(col(ColumnId(2))),
                AggregateExpr::max(col(ColumnId(2))),
            ],
            out_schema(3),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1), Value::Float64(5.0), Value::Float64(5.0)],
                vec![Value::Int64(2), Value::Null, Value::Null],
            ]
        );
    }

    #[test]
    fn avg_over_only_nulls_is_null() {
        let input = source(vec![vec![Value::Int64(1), Value::Null]]);
        let mut agg = HashAggregateExec::new(
            input,
            vec![],
            vec![AggregateExpr::avg(col(ColumnId(2)))],
            out_schema(1),
            ExecMetrics::new(),
        )
        .unwrap();
        assert_eq!(drain(&mut agg).unwrap(), vec![vec![Value::Null]]);
    }

    #[test]
    fn window_over_empty_input_emits_nothing() {
        let input = source(vec![]);
        let w = WindowExpr::new(AggFunc::Sum, Some(col(ColumnId(2))), vec![ColumnId(1)]);
        let mut win = WindowExec::new(input, vec![w], out_schema(3), ExecMetrics::new());
        assert!(drain(&mut win).unwrap().is_empty());
    }

    #[test]
    fn window_null_partition_keys_group_together() {
        let input = source(vec![
            vec![Value::Null, Value::Float64(1.0)],
            vec![Value::Null, Value::Float64(3.0)],
        ]);
        let w = WindowExpr::new(AggFunc::Avg, Some(col(ColumnId(2))), vec![ColumnId(1)]);
        let mut win = WindowExec::new(input, vec![w], out_schema(3), ExecMetrics::new());
        let rows = drain(&mut win).unwrap();
        assert_eq!(rows[0][2], Value::Float64(2.0));
        assert_eq!(rows[1][2], Value::Float64(2.0));
    }

    #[test]
    fn shared_masks_are_evaluated_consistently() {
        // Two aggregates with the same mask and one with another: results
        // must match the per-aggregate semantics exactly.
        let mask = col(ColumnId(2)).gt(fusion_expr::lit(2.0));
        let input = source(vec![
            vec![Value::Int64(1), Value::Float64(1.0)],
            vec![Value::Int64(1), Value::Float64(3.0)],
            vec![Value::Int64(1), Value::Float64(5.0)],
        ]);
        let mut agg = HashAggregateExec::new(
            input,
            vec![0],
            vec![
                AggregateExpr::count_star().with_mask(mask.clone()),
                AggregateExpr::sum(col(ColumnId(2))).with_mask(mask),
                AggregateExpr::count_star()
                    .with_mask(col(ColumnId(2)).lt(fusion_expr::lit(2.0))),
            ],
            out_schema(4),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut agg).unwrap();
        assert_eq!(
            rows,
            vec![vec![
                Value::Int64(1),
                Value::Int64(2),
                Value::Float64(8.0),
                Value::Int64(1)
            ]]
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod masked_window_tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::ops::basic::ConstantTableExec;
    use crate::ops::{drain, BoxedOp};
    use fusion_common::{ColumnId, DataType, Field, Value};
    use fusion_expr::{col, lit};

    #[test]
    fn masked_window_accumulates_only_matching_rows() {
        let schema = Schema::new(vec![
            Field::new(ColumnId(1), "g", DataType::Int64, true),
            Field::new(ColumnId(2), "v", DataType::Int64, true),
        ]);
        let rows = vec![
            vec![Value::Int64(1), Value::Int64(10)],
            vec![Value::Int64(1), Value::Int64(100)], // masked out
            vec![Value::Int64(2), Value::Int64(200)], // masked out
        ];
        let input: BoxedOp = Box::new(ConstantTableExec::new(rows, schema));
        let w = WindowExpr::new(AggFunc::Sum, Some(col(ColumnId(2))), vec![ColumnId(1)])
            .with_mask(col(ColumnId(2)).lt(lit(50i64)));
        let out_schema = Schema::new(vec![
            Field::new(ColumnId(1), "g", DataType::Int64, true),
            Field::new(ColumnId(2), "v", DataType::Int64, true),
            Field::new(ColumnId(3), "w", DataType::Int64, true),
        ]);
        let mut win = WindowExec::new(input, vec![w], out_schema, ExecMetrics::new());
        let out = drain(&mut win).unwrap();
        // Every row still gets its partition's (masked) value; partition 2
        // has no accepted rows, so its sum is NULL.
        assert_eq!(out[0][2], Value::Int64(10));
        assert_eq!(out[1][2], Value::Int64(10));
        assert_eq!(out[2][2], Value::Null);
    }
}
