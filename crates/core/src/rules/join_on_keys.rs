//! The `JoinOnKeys` rule (§IV.B).
//!
//! When two keyed subplans of a join fuse, and the join condition equates
//! their keys, each left row matches at most one right row — so the join
//! merely *extends* rows with the other side's columns. The fused plan
//! already holds both sides' columns per key, so the join collapses to a
//! filter over the fused plan.
//!
//! Athena lacks general key propagation, so (as in the paper) the rule is
//! implemented for the cases where keys are guaranteed:
//!
//! * **Keyed GroupBys** — the grouping columns are a key of each side.
//!   Works for DISTINCTs too (GroupBys with no aggregates), which is what
//!   finishes the Q95 rewrite chain.
//! * **Scalar aggregates under a cross product** — both sides are
//!   single-row relations (scalar aggregates, possibly wrapped in
//!   `EnforceSingleRow`/`Project`), the Q09/Q28/Q88 pattern.
//!
//! Key-equality conjuncts are left in the conjunct pool; after the rewrite
//! they degenerate to `k = k`, which is exactly the
//! `cl IS NOT NULL` compensation of the paper (SQL equality rejects NULL).

use fusion_plan::{Aggregate, Filter, LogicalPlan, Project, ProjExpr};

use super::graph::JoinGraph;
use super::Rule;
use crate::fuse::{fuse, FuseContext, Fused};

pub struct JoinOnKeys;

impl Rule for JoinOnKeys {
    fn name(&self) -> &'static str {
        "JoinOnKeys"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &FuseContext) -> Option<LogicalPlan> {
        let graph = JoinGraph::from_plan(plan)?;
        let n = graph.inputs.len();
        if n < 2 {
            return None;
        }
        // Quadratic pairwise attempts (§IV.E).
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let replacement = try_keyed_groupbys(&graph, i, j, ctx)
                    .or_else(|| try_scalar_singletons(&graph, i, j, ctx));
                if let Some(replacement) = replacement {
                    let mut g = graph.clone();
                    g.inputs[i] = replacement;
                    g.inputs.remove(j);
                    return Some(g.rebuild());
                }
            }
        }
        None
    }
}

/// Keyed-GroupBy variant: both inputs are non-scalar GroupBys, their keys
/// are pairwise equated by the join.
fn try_keyed_groupbys(
    graph: &JoinGraph,
    i: usize,
    j: usize,
    ctx: &FuseContext,
) -> Option<LogicalPlan> {
    let g1 = as_groupby(&graph.inputs[i])?;
    let g2 = as_groupby(&graph.inputs[j])?;
    if g1.group_by.is_empty() || g2.group_by.is_empty() {
        return None;
    }
    // Statically discharge the rule's key precondition via the property
    // lattice instead of trusting the operator shape alone: the grouping
    // columns must be provable distinct keys of each side's output.
    if !crate::analysis::plan_has_key(&graph.inputs[i], &g1.group_by)
        || !crate::analysis::plan_has_key(&graph.inputs[j], &g2.group_by)
    {
        return None;
    }
    let fused = fuse(&graph.inputs[i], &graph.inputs[j], ctx)?;
    // Every right key must be equated with its mapped twin.
    for k2 in &g2.group_by {
        let mk = fused.mapped_id(*k2);
        if !graph.columns_equated(*k2, mk) {
            return None;
        }
    }
    Some(build_replacement(
        &fused,
        &graph.inputs[j].schema(),
    ))
}

/// Scalar variant: both inputs are single-row relations; the (implicit)
/// cross product pairs the two single rows, so the fused single-row plan
/// replaces both.
fn try_scalar_singletons(
    graph: &JoinGraph,
    i: usize,
    j: usize,
    ctx: &FuseContext,
) -> Option<LogicalPlan> {
    if !is_single_row(&graph.inputs[i]) || !is_single_row(&graph.inputs[j]) {
        return None;
    }
    // The property lattice must agree that both sides are single-row
    // before the join is eliminated (its derivation is independent of the
    // syntactic matcher above).
    if !crate::analysis::plan_is_single_row(&graph.inputs[i])
        || !crate::analysis::plan_is_single_row(&graph.inputs[j])
    {
        return None;
    }
    let fused = fuse(&graph.inputs[i], &graph.inputs[j], ctx)?;
    // Single-row fusion must be exact (scalar aggregates guarantee this:
    // the compensations land in the masks, not in L/R).
    if !fused.trivial() {
        return None;
    }
    Some(build_replacement(
        &fused,
        &graph.inputs[j].schema(),
    ))
}

fn as_groupby(plan: &LogicalPlan) -> Option<&Aggregate> {
    match plan {
        LogicalPlan::Aggregate(a) => Some(a),
        _ => None,
    }
}

/// A relation statically known to produce exactly one row.
fn is_single_row(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Aggregate(a) => a.is_scalar() && !a.aggregates.is_empty(),
        LogicalPlan::EnforceSingleRow(_) => true,
        LogicalPlan::Project(p) => is_single_row(&p.input),
        _ => false,
    }
}

/// Filter by the compensations, then restore the removed input's output
/// identities on top of the fused plan (everything else passes through so
/// the remaining conjuncts keep resolving).
fn build_replacement(fused: &Fused, removed_schema: &fusion_common::Schema) -> LogicalPlan {
    let comp = crate::fuse::simp(fused.left.clone().and(fused.right.clone()));
    let filtered = if comp.is_true_literal() {
        fused.plan.clone()
    } else {
        LogicalPlan::Filter(Filter {
            input: Box::new(fused.plan.clone()),
            predicate: comp,
        })
    };
    let mut exprs: Vec<ProjExpr> = filtered
        .schema()
        .fields()
        .iter()
        .map(ProjExpr::passthrough)
        .collect();
    for field in removed_schema.fields() {
        if exprs.iter().any(|pe| pe.id == field.id) {
            continue;
        }
        let src = fused.mapped_id(field.id);
        exprs.push(ProjExpr::new(
            field.id,
            field.name.clone(),
            fusion_expr::col(src),
        ));
    }
    LogicalPlan::Project(Project {
        input: Box::new(filtered),
        exprs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen, Value};
    use fusion_exec::table::TableColumn;
    use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
    use fusion_expr::{col, lit, AggregateExpr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{JoinType, PlanBuilder};

    fn sales_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("store", DataType::Int64, true),
            ColumnDef::new("qty", DataType::Int64, true),
            ColumnDef::new("profit", DataType::Float64, true),
        ]
    }

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "sales",
            vec![
                TableColumn {
                    name: "store".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "qty".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "profit".into(),
                    data_type: DataType::Float64,
                    nullable: true,
                },
            ],
        );
        let rows: Vec<(Option<i64>, i64, f64)> = vec![
            (Some(1), 5, 1.5),
            (Some(1), 25, -0.5),
            (Some(2), 7, 3.0),
            (Some(3), 30, 2.0),
            (None, 9, 1.0),
        ];
        for (s, q, p) in rows {
            b.add_row(vec![
                s.map(Value::Int64).unwrap_or(Value::Null),
                Value::Int64(q),
                Value::Float64(p),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register(b.build());
        c
    }

    /// Self-join of two differently-filtered GroupBys on their key.
    #[test]
    fn keyed_groupbys_collapse_to_single_aggregate() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());

        let a = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let (s1, q1) = (a.col("store").unwrap(), a.col("qty").unwrap());
        let left = a
            .filter(col(q1).lt(lit(20i64)))
            .aggregate(vec![s1], vec![("small", AggregateExpr::count_star())]);

        let b = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let (s2, q2) = (b.col("store").unwrap(), b.col("qty").unwrap());
        let right = b
            .filter(col(q2).gt_eq(lit(20i64)))
            .aggregate(vec![s2], vec![("big", AggregateExpr::count_star())])
            .build();

        let plan = left
            .join(right, JoinType::Inner, col(s1).eq_to(col(s2)))
            .build();
        plan.validate().unwrap();

        let rewritten =
            apply_everywhere(&JoinOnKeys, &plan, &ctx).expect("rule should fire");
        rewritten.validate().unwrap();
        assert_eq!(rewritten.scanned_tables().len(), 1);

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        // Store 1 is the only one with both a small and a big sale.
        assert_eq!(base.rows.len(), 1);
    }

    /// The Q09 pattern: scalar aggregates over overlapping subsets of the
    /// same table, cross-joined; all collapse into one multi-masked scan.
    #[test]
    fn scalar_aggregates_merge_across_cross_joins() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());

        let mk = |lo: i64, hi: i64| {
            let t = PlanBuilder::scan(&gen, "sales", &sales_cols());
            let (q, p) = (t.col("qty").unwrap(), t.col("profit").unwrap());
            t.filter(col(q).gt_eq(lit(lo)).and(col(q).lt_eq(lit(hi))))
                .aggregate(
                    vec![],
                    vec![
                        ("cnt", AggregateExpr::count_star()),
                        ("avg_p", AggregateExpr::avg(col(p))),
                    ],
                )
                .enforce_single_row()
                .build()
        };
        let b1 = mk(1, 20);
        let b2 = mk(21, 40);
        let b3 = mk(41, 60);
        let plan = PlanBuilder::from_plan(&gen, b1)
            .cross_join(b2)
            .cross_join(b3)
            .build();
        plan.validate().unwrap();
        assert_eq!(plan.scanned_tables().len(), 3);

        // Apply to fixpoint (pairwise merging).
        let mut current = plan.clone();
        while let Some(next) = apply_everywhere(&JoinOnKeys, &current, &ctx) {
            current = next;
        }
        current.validate().unwrap();
        assert_eq!(current.scanned_tables().len(), 1, "{}", current.display());

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&current, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        assert_eq!(base.rows.len(), 1);
        assert_eq!(base.rows[0].len(), 6);
    }

    /// DISTINCT dedup: two identical distinct subplans joined on their key
    /// collapse (the tail of the Q95 chain).
    #[test]
    fn duplicate_distincts_collapse() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let probe = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let pk = probe.col("store").unwrap();

        let d1 = {
            let t = PlanBuilder::scan(&gen, "sales", &sales_cols());
            let s = t.col("store").unwrap();
            (t.distinct_on(vec![s]).build(), s)
        };
        let d2 = {
            let t = PlanBuilder::scan(&gen, "sales", &sales_cols());
            let s = t.col("store").unwrap();
            (t.distinct_on(vec![s]).build(), s)
        };
        let plan = probe
            .join(d1.0, JoinType::Inner, col(pk).eq_to(col(d1.1)))
            .join(d2.0, JoinType::Inner, col(pk).eq_to(col(d2.1)))
            .build();
        plan.validate().unwrap();
        assert_eq!(plan.scanned_tables().len(), 3);

        let rewritten =
            apply_everywhere(&JoinOnKeys, &plan, &ctx).expect("rule should fire");
        rewritten.validate().unwrap();
        assert_eq!(rewritten.scanned_tables().len(), 2);

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        // NULL store rows are dropped by the join in both plans.
        assert_eq!(base.rows.len(), 4);
    }

    #[test]
    fn does_not_fire_on_unkeyed_join() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let (s1, p1) = (a.col("store").unwrap(), a.col("profit").unwrap());
        let left = a.aggregate(vec![s1], vec![("x", AggregateExpr::sum(col(p1)))]);
        let b = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let (s2, p2) = (b.col("store").unwrap(), b.col("profit").unwrap());
        let right = b
            .aggregate(vec![s2], vec![("y", AggregateExpr::sum(col(p2)))])
            .build();
        let y = right.schema().field(1).id;
        // Join on an aggregate value, not the keys.
        let x = left.col("x").unwrap();
        let plan = left
            .join(right, JoinType::Inner, col(x).eq_to(col(y)))
            .build();
        assert!(apply_everywhere(&JoinOnKeys, &plan, &ctx).is_none());
    }
}
