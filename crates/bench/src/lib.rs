//! Shared harness utilities for the paper-figure regeneration binary and
//! the Criterion benchmarks.

use std::time::Duration;

use fusion_engine::{QueryResult, Session};
use fusion_tpcds::{generate_catalog, BenchQuery, TpcdsConfig};

/// A baseline/fused session pair over identical (deterministic) data.
pub struct Harness {
    pub fused: Session,
    pub baseline: Session,
    pub config: TpcdsConfig,
}

impl Harness {
    /// Build one session over freshly generated (deterministic) data,
    /// applying `configure` before use.
    pub fn session(scale: f64, configure: impl FnOnce(&mut Session)) -> Session {
        let config = TpcdsConfig::with_scale(scale);
        let mut s = Session::new();
        for t in generate_catalog(&config).into_tables() {
            s.register_table(t);
        }
        configure(&mut s);
        s
    }

    pub fn new(scale: f64) -> Self {
        let config = TpcdsConfig::with_scale(scale);
        let mut fused = Session::new();
        for t in generate_catalog(&config).into_tables() {
            fused.register_table(t);
        }
        let mut baseline = Session::baseline();
        for t in generate_catalog(&config).into_tables() {
            baseline.register_table(t);
        }
        Harness {
            fused,
            baseline,
            config,
        }
    }

    /// Run a query on both sessions `runs` times, keeping the median
    /// latency, and verify result equivalence once.
    pub fn measure(&self, q: &BenchQuery, runs: usize) -> Measurement {
        let rb = self.baseline.sql(&q.sql).expect("baseline run");
        let rf = self.fused.sql(&q.sql).expect("fused run");
        assert_eq!(
            rf.sorted_rows(),
            rb.sorted_rows(),
            "{}: fused and baseline results must match",
            q.id
        );
        let base_latency = median_latency(&self.baseline, q, runs, rb.latency);
        let fused_latency = median_latency(&self.fused, q, runs, rf.latency);
        Measurement {
            id: q.id,
            applicable: q.applicable,
            plan_changed: rf.report.fusion_applied,
            base_latency,
            fused_latency,
            base_bytes: rb.metrics.bytes_scanned,
            fused_bytes: rf.metrics.bytes_scanned,
            base_peak_state: rb.metrics.peak_state_bytes,
            fused_peak_state: rf.metrics.peak_state_bytes,
            base_result: rb,
            fused_result: rf,
        }
    }
}

fn median_latency(
    session: &Session,
    q: &BenchQuery,
    runs: usize,
    first: Duration,
) -> Duration {
    let mut samples = vec![first];
    for _ in 1..runs.max(1) {
        samples.push(session.sql(&q.sql).expect("rerun").latency);
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// One query's baseline-vs-fused measurement.
pub struct Measurement {
    pub id: &'static str,
    pub applicable: bool,
    pub plan_changed: bool,
    pub base_latency: Duration,
    pub fused_latency: Duration,
    pub base_bytes: u64,
    pub fused_bytes: u64,
    pub base_peak_state: u64,
    pub fused_peak_state: u64,
    pub base_result: QueryResult,
    pub fused_result: QueryResult,
}

impl Measurement {
    /// Latency improvement as the paper plots it: `baseline / fused`.
    pub fn speedup(&self) -> f64 {
        self.base_latency.as_secs_f64() / self.fused_latency.as_secs_f64().max(1e-9)
    }

    /// Fraction of baseline data read (Figure 2's y-axis).
    pub fn bytes_fraction(&self) -> f64 {
        self.fused_bytes as f64 / (self.base_bytes as f64).max(1.0)
    }
}
