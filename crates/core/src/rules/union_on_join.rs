//! The `UnionAllOnJoin` rule (§IV.C).
//!
//! Pattern: a `UnionAll` whose branches are (projections over) joins that
//! differ on one side but share the other:
//! `UnionAll(P1 ⋉_C1 Z1, P2 ⋉_C2 Z2)` with `Fuse(Z1, Z2)` successful and
//! the join conditions matching modulo the mapping. The union is pushed
//! below the join: branches are tagged, the left-hand sides of the join
//! equalities are projected as explicit columns (`UA1`/`UA2` in the
//! paper), and the join predicate is rebuilt with a tag dispatch
//! `(tag=1 AND L) OR (tag=2 AND R)` selecting each branch's compensating
//! filter over the fused right side.
//!
//! Both semi joins (the paper's exposition) and inner joins (needed to
//! finish the Q23 chain by fusing `date_dim`) are handled; the rule
//! applies recursively as each shared subquery is peeled off.

use std::collections::HashSet;

use fusion_common::{ColumnId, Field};
use fusion_expr::{conjoin, split_conjuncts, BinaryOp, Expr};
use fusion_plan::{Filter, Join, JoinType, LogicalPlan, Project, ProjExpr, UnionAll};

use super::Rule;
use crate::fuse::{fuse, simp, FuseContext};

pub struct UnionAllOnJoin;

impl Rule for UnionAllOnJoin {
    fn name(&self) -> &'static str {
        "UnionAllOnJoin"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &FuseContext) -> Option<LogicalPlan> {
        let union = match plan {
            LogicalPlan::UnionAll(u) if u.inputs.len() >= 2 => u,
            _ => return None,
        };
        let n = union.inputs.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(new_branch) = try_pair(union, i, j, ctx) {
                    if n == 2 {
                        // The whole union is consumed: restore its output
                        // identities over the new branch.
                        let exprs = union
                            .fields
                            .iter()
                            .zip(new_branch.schema().fields())
                            .map(|(out, src)| {
                                ProjExpr::new(out.id, out.name.clone(), Expr::Column(src.id))
                            })
                            .collect();
                        return Some(LogicalPlan::Project(Project {
                            input: Box::new(new_branch),
                            exprs,
                        }));
                    }
                    let mut inputs = union.inputs.clone();
                    inputs[i] = new_branch;
                    inputs.remove(j);
                    return Some(LogicalPlan::UnionAll(UnionAll {
                        inputs,
                        fields: union.fields.clone(),
                    }));
                }
            }
        }
        None
    }
}

/// A branch decomposed as `Project_π(pre-filters(P ⋈ Z))`.
struct BranchParts {
    proj: Vec<ProjExpr>,
    join_type: JoinType,
    p_side: LogicalPlan,
    z_side: LogicalPlan,
    /// Equality pairs `(lhs over P, rhs column of Z)`.
    pairs: Vec<(Expr, ColumnId)>,
    /// Conjuncts local to the P side.
    p_local: Vec<Expr>,
}

fn peel(branch: &LogicalPlan) -> Option<BranchParts> {
    let (proj, mut node): (Vec<ProjExpr>, &LogicalPlan) = match branch {
        LogicalPlan::Project(p) => (p.exprs.clone(), p.input.as_ref()),
        other => (
            other
                .schema()
                .fields()
                .iter()
                .map(ProjExpr::passthrough)
                .collect(),
            other,
        ),
    };
    let mut pre_filters: Vec<Expr> = Vec::new();
    let join = loop {
        match node {
            LogicalPlan::Filter(f) => {
                pre_filters.extend(split_conjuncts(&f.predicate));
                node = f.input.as_ref();
            }
            LogicalPlan::Join(j)
                if matches!(j.join_type, JoinType::Semi | JoinType::Inner | JoinType::Cross) =>
            {
                break j;
            }
            _ => return None,
        }
    };

    let p_schema = join.left.schema();
    let z_schema = join.right.schema();
    let p_ids: HashSet<ColumnId> = p_schema.ids().into_iter().collect();
    let z_ids: HashSet<ColumnId> = z_schema.ids().into_iter().collect();

    let mut pairs = Vec::new();
    let mut p_local = Vec::new();
    let mut z_local = Vec::new();
    let mut all = split_conjuncts(&join.condition);
    all.retain(|c| !c.is_true_literal());
    all.extend(pre_filters);
    for c in all {
        let cols = c.columns();
        let in_p = cols.iter().all(|id| p_ids.contains(id));
        let in_z = cols.iter().all(|id| z_ids.contains(id));
        if in_p && !cols.is_empty() {
            p_local.push(c);
            continue;
        }
        if in_z {
            z_local.push(c);
            continue;
        }
        // Must be an equality `lhs(P) = col(Z)` in either operand order.
        let (l, r) = match &c {
            Expr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } => (left.as_ref().clone(), right.as_ref().clone()),
            _ => return None,
        };
        let l_cols = l.columns();
        let r_cols = r.columns();
        let l_in_p = l_cols.iter().all(|id| p_ids.contains(id));
        let r_in_p = r_cols.iter().all(|id| p_ids.contains(id));
        if l_in_p {
            match r {
                Expr::Column(rc) if z_ids.contains(&rc) => pairs.push((l, rc)),
                _ => return None,
            }
        } else if r_in_p {
            match l {
                Expr::Column(lc) if z_ids.contains(&lc) => pairs.push((r, lc)),
                _ => return None,
            }
        } else {
            return None;
        }
    }

    // Push Z-local conjuncts into the Z side so they take part in fusion.
    let z_side = if z_local.is_empty() {
        join.right.as_ref().clone()
    } else {
        LogicalPlan::Filter(Filter {
            input: Box::new(join.right.as_ref().clone()),
            predicate: conjoin(z_local),
        })
    };
    // A cross join with equality pre-filters is an inner join.
    let join_type = if join.join_type == JoinType::Cross {
        JoinType::Inner
    } else {
        join.join_type
    };
    Some(BranchParts {
        proj,
        join_type,
        p_side: join.left.as_ref().clone(),
        z_side,
        pairs,
        p_local,
    })
}


fn try_pair(
    union: &UnionAll,
    i: usize,
    j: usize,
    ctx: &FuseContext,
) -> Option<LogicalPlan> {
    let b1 = peel(&union.inputs[i])?;
    let b2 = peel(&union.inputs[j])?;
    if b1.join_type != b2.join_type || b1.pairs.len() != b2.pairs.len() || b1.pairs.is_empty() {
        return None;
    }

    // Slot expressions must be P-side only (semi joins guarantee this;
    // for inner joins it is a documented v1 restriction).
    let p1_ids: HashSet<ColumnId> = b1.p_side.schema().ids().into_iter().collect();
    let p2_ids: HashSet<ColumnId> = b2.p_side.schema().ids().into_iter().collect();
    if !b1
        .proj
        .iter()
        .all(|pe| pe.expr.columns().iter().all(|c| p1_ids.contains(c)))
        || !b2
            .proj
            .iter()
            .all(|pe| pe.expr.columns().iter().all(|c| p2_ids.contains(c)))
    {
        return None;
    }

    // Fuse the shared sides.
    let fused = fuse(&b1.z_side, &b2.z_side, ctx)?;

    // Match the equality pairs modulo the mapping: for every pair of
    // branch 1 there must be exactly one pair of branch 2 whose right side
    // maps onto it.
    let mut matched: Vec<(Expr, Expr, ColumnId)> = Vec::new(); // (l1, l2, r1)
    let mut used = vec![false; b2.pairs.len()];
    for (l1, r1) in &b1.pairs {
        let pos = b2
            .pairs
            .iter()
            .enumerate()
            .position(|(k, (_, r2))| !used[k] && fused.mapped_id(*r2) == *r1)?;
        used[pos] = true;
        matched.push((l1.clone(), b2.pairs[pos].0.clone(), *r1));
    }

    // Build the pushed-down union's branches.
    let nslots = union.fields.len();
    let build_branch = |parts: &BranchParts, tag: i64, lhs: Vec<Expr>| -> LogicalPlan {
        let input = if parts.p_local.is_empty() {
            parts.p_side.clone()
        } else {
            LogicalPlan::Filter(Filter {
                input: Box::new(parts.p_side.clone()),
                predicate: conjoin(parts.p_local.clone()),
            })
        };
        let mut exprs: Vec<ProjExpr> = parts
            .proj
            .iter()
            .map(|pe| ProjExpr::new(ctx.gen.fresh(), pe.name.clone(), pe.expr.clone()))
            .collect();
        // Internal names carry their fresh id so stacked applications of
        // this rule (branches that already contain `$b…`/`$tag…` columns
        // from an earlier fusion) never emit duplicate internal names,
        // which strict Project validation rejects. The `$tag` prefix is
        // what the analysis lattice keys its domain tracking on.
        for (m, l) in lhs.into_iter().enumerate() {
            let id = ctx.gen.fresh();
            exprs.push(ProjExpr::new(id, format!("$b{m}_{}", id.0), l));
        }
        let tag_id = ctx.gen.fresh();
        exprs.push(ProjExpr::new(
            tag_id,
            format!("$tag{}", tag_id.0),
            fusion_expr::lit(tag),
        ));
        LogicalPlan::Project(Project {
            input: Box::new(input),
            exprs,
        })
    };
    let branch1 = build_branch(&b1, 1, matched.iter().map(|(l1, _, _)| l1.clone()).collect());
    let branch2 = build_branch(&b2, 2, matched.iter().map(|(_, l2, _)| l2.clone()).collect());

    // Union output fields: slots + $b columns + $tag, typed from branch 1.
    let b1_schema = branch1.schema();
    let fields: Vec<Field> = b1_schema
        .fields()
        .iter()
        .map(|f| Field::new(ctx.gen.fresh(), f.name.clone(), f.data_type, true))
        .collect();
    let inner_union = LogicalPlan::UnionAll(UnionAll {
        inputs: vec![branch1, branch2],
        fields: fields.clone(),
    });
    if inner_union.validate().is_err() {
        return None;
    }

    // Rebuild the join condition: $b_m = r_m, plus the tag dispatch over
    // the compensating filters when the fusion was not exact.
    let tag_col = fields.last().expect("tag field").id;
    let mut conds: Vec<Expr> = matched
        .iter()
        .enumerate()
        .map(|(m, (_, _, r1))| {
            let b_col = fields[nslots + m].id;
            fusion_expr::col(b_col).eq_to(fusion_expr::col(*r1))
        })
        .collect();
    if !fused.trivial() {
        let dispatch = fusion_expr::col(tag_col)
            .eq_to(fusion_expr::lit(1i64))
            .and(fused.left.clone())
            .or(fusion_expr::col(tag_col)
                .eq_to(fusion_expr::lit(2i64))
                .and(fused.right.clone()));
        conds.push(simp(dispatch));
    }

    let joined = LogicalPlan::Join(Join {
        left: Box::new(inner_union),
        right: Box::new(fused.plan),
        join_type: b1.join_type,
        condition: conjoin(conds),
    });

    // Keep only the slot columns, positionally.
    let out_schema = joined.schema();
    let exprs: Vec<ProjExpr> = (0..nslots)
        .map(|s| ProjExpr::passthrough(out_schema.field(s)))
        .collect();
    let result = LogicalPlan::Project(Project {
        input: Box::new(joined),
        exprs,
    });
    if let Err(e) = result.validate() {
        if std::env::var("FUSION_ANALYZE_DEBUG").is_ok() {
            eprintln!("union_on_join validate rejection: {e}");
        }
        return None;
    }
    // Semantic discharge: the tag dispatch built above must cover every
    // branch of the inner union exactly once (the analyzer derives the
    // tag domain from the union's `$tag` projections).
    let violations = crate::analysis::analyze_plan(&result);
    if !violations.is_empty() {
        if std::env::var("FUSION_ANALYZE_DEBUG").is_ok() {
            eprintln!(
                "union_on_join analyzer rejection: {}",
                crate::analysis::render_violations(&violations)
            );
        }
        return None;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen, Value};
    use fusion_exec::table::TableColumn;
    use fusion_exec::{execute_plan, Catalog, ExecMetrics, TableBuilder};
    use fusion_expr::{col, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn fact_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("qty", DataType::Int64, true),
            ColumnDef::new("cust", DataType::Int64, true),
            ColumnDef::new("date_sk", DataType::Int64, true),
        ]
    }

    fn dim_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("d_sk", DataType::Int64, false),
            ColumnDef::new("d_year", DataType::Int64, true),
        ]
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for fact in ["catalog_sales", "web_sales"] {
            let mut b = TableBuilder::new(
                fact,
                vec![
                    TableColumn {
                        name: "qty".into(),
                        data_type: DataType::Int64,
                        nullable: true,
                    },
                    TableColumn {
                        name: "cust".into(),
                        data_type: DataType::Int64,
                        nullable: true,
                    },
                    TableColumn {
                        name: "date_sk".into(),
                        data_type: DataType::Int64,
                        nullable: true,
                    },
                ],
            );
            let base = if fact == "catalog_sales" { 0 } else { 100 };
            for k in 0..20i64 {
                b.add_row(vec![
                    Value::Int64(base + k),
                    Value::Int64(k % 7),
                    Value::Int64(k % 5),
                ])
                .unwrap();
            }
            c.register(b.build());
        }
        let mut b = TableBuilder::new(
            "best_customer",
            vec![TableColumn {
                name: "bc".into(),
                data_type: DataType::Int64,
                nullable: true,
            }],
        );
        for k in [1i64, 3, 5] {
            b.add_row(vec![Value::Int64(k)]).unwrap();
        }
        c.register(b.build());
        let mut b = TableBuilder::new(
            "date_dim",
            vec![
                TableColumn {
                    name: "d_sk".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "d_year".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
            ],
        );
        for k in 0..5i64 {
            b.add_row(vec![Value::Int64(k), Value::Int64(1999 + (k % 2))])
                .unwrap();
        }
        c.register(b.build());
        c
    }

    fn bc_cols() -> Vec<ColumnDef> {
        vec![ColumnDef::new("bc", DataType::Int64, true)]
    }

    /// The paper's simple example: two semi joins against the same
    /// subquery; the union is pushed below the semi join.
    #[test]
    fn semi_join_union_pushes_union_below() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |fact: &str| {
            let f = PlanBuilder::scan(&gen, fact, &fact_cols());
            let (q, cu) = (f.col("qty").unwrap(), f.col("cust").unwrap());
            let z = PlanBuilder::scan(&gen, "best_customer", &bc_cols());
            let zk = z.col("bc").unwrap();
            f.join(z.build(), JoinType::Semi, col(cu).eq_to(col(zk)))
                .project(vec![("sales", col(q))])
                .build()
        };
        let b1 = mk("catalog_sales");
        let b2 = mk("web_sales");
        let plan = PlanBuilder::from_plan(&gen, b1)
            .union_all(vec![b2])
            .unwrap()
            .build();
        plan.validate().unwrap();
        // Baseline scans best_customer twice.
        assert_eq!(
            plan.scanned_tables()
                .iter()
                .filter(|t| *t == "best_customer")
                .count(),
            2
        );

        let rewritten =
            apply_everywhere(&UnionAllOnJoin, &plan, &ctx).expect("rule should fire");
        rewritten.validate().unwrap();
        assert_eq!(
            rewritten
                .scanned_tables()
                .iter()
                .filter(|t| *t == "best_customer")
                .count(),
            1
        );

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&rewritten, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        assert!(!base.rows.is_empty());
    }

    /// Q23 shape: branches also share an inner-joined dimension with a
    /// dimension-side filter. Repeated application fuses the semi-join
    /// subquery first, then the dimension join.
    #[test]
    fn q23_chain_fuses_subquery_then_dimension() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |fact: &str| {
            let f = PlanBuilder::scan(&gen, fact, &fact_cols());
            let (q, cu, ds) = (
                f.col("qty").unwrap(),
                f.col("cust").unwrap(),
                f.col("date_sk").unwrap(),
            );
            let d = PlanBuilder::scan(&gen, "date_dim", &dim_cols());
            let (dk, dy) = (d.col("d_sk").unwrap(), d.col("d_year").unwrap());
            let z = PlanBuilder::scan(&gen, "best_customer", &bc_cols());
            let zk = z.col("bc").unwrap();
            f.cross_join(d.build())
                .filter(
                    col(ds)
                        .eq_to(col(dk))
                        .and(col(dy).eq_to(lit(1999i64))),
                )
                .join(z.build(), JoinType::Semi, col(cu).eq_to(col(zk)))
                .project(vec![("sales", col(q))])
                .build()
        };
        let b1 = mk("catalog_sales");
        let b2 = mk("web_sales");
        let plan = PlanBuilder::from_plan(&gen, b1)
            .union_all(vec![b2])
            .unwrap()
            .build();
        plan.validate().unwrap();

        // Apply to fixpoint.
        let mut current = plan.clone();
        let mut fired = 0;
        while let Some(next) = apply_everywhere(&UnionAllOnJoin, &current, &ctx) {
            current = next;
            fired += 1;
            assert!(fired < 10, "must converge");
        }
        assert!(fired >= 1, "expected the chain to fire");
        current.validate().unwrap();
        let tables = current.scanned_tables();
        assert_eq!(tables.iter().filter(|t| *t == "best_customer").count(), 1);
        assert_eq!(tables.iter().filter(|t| *t == "date_dim").count(), 1);

        let catalog = catalog();
        let base = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        let opt = execute_plan(&current, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(base.sorted_rows(), opt.sorted_rows());
        assert!(!base.rows.is_empty());
    }

    /// Branches whose shared sides differ (different subqueries) decline.
    #[test]
    fn unrelated_subqueries_decline() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let mk = |fact: &str, sub: &str| {
            let f = PlanBuilder::scan(&gen, fact, &fact_cols());
            let (q, cu) = (f.col("qty").unwrap(), f.col("cust").unwrap());
            let z = PlanBuilder::scan(&gen, sub, &bc_cols());
            let zk = z.col("bc").unwrap();
            f.join(z.build(), JoinType::Semi, col(cu).eq_to(col(zk)))
                .project(vec![("sales", col(q))])
                .build()
        };
        let b1 = mk("catalog_sales", "best_customer");
        let b2 = mk("web_sales", "other_customers");
        let plan = PlanBuilder::from_plan(&gen, b1)
            .union_all(vec![b2])
            .unwrap()
            .build();
        assert!(apply_everywhere(&UnionAllOnJoin, &plan, &ctx).is_none());
    }
}


#[cfg(test)]
mod nary_tests {
    use super::*;
    use crate::fuse::FuseContext;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen};
    use fusion_expr::col;
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    /// A 3-branch UnionAll where two branches share a subquery: the rule
    /// must fuse the pair and keep the third branch intact.
    #[test]
    fn pairs_fuse_within_larger_unions() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let fact_cols = || {
            vec![
                ColumnDef::new("qty", DataType::Int64, true),
                ColumnDef::new("cust", DataType::Int64, true),
            ]
        };
        let bc_cols = || vec![ColumnDef::new("bc", DataType::Int64, true)];
        let mk = |fact: &str, sub: &str| {
            let f = PlanBuilder::scan(&gen, fact, &fact_cols());
            let (q, cu) = (f.col("qty").unwrap(), f.col("cust").unwrap());
            let z = PlanBuilder::scan(&gen, sub, &bc_cols());
            let zk = z.col("bc").unwrap();
            f.join(z.build(), JoinType::Semi, col(cu).eq_to(col(zk)))
                .project(vec![("sales", col(q))])
                .build()
        };
        // Branches 1 and 3 share `best_customer`; branch 2 uses another
        // subquery and must survive untouched.
        let b1 = mk("catalog_sales", "best_customer");
        let b2 = mk("store_sales", "other_list");
        let b3 = mk("web_sales", "best_customer");
        let plan = PlanBuilder::from_plan(&gen, b1)
            .union_all(vec![b2, b3])
            .unwrap()
            .build();
        assert_eq!(
            plan.scanned_tables()
                .iter()
                .filter(|t| *t == "best_customer")
                .count(),
            2
        );

        let rewritten =
            apply_everywhere(&UnionAllOnJoin, &plan, &ctx).expect("pair should fuse");
        rewritten.validate().unwrap();
        let tables = rewritten.scanned_tables();
        assert_eq!(tables.iter().filter(|t| *t == "best_customer").count(), 1);
        assert_eq!(tables.iter().filter(|t| *t == "other_list").count(), 1);
        // Still a UnionAll (2 branches now).
        let mut union_sizes = vec![];
        rewritten.visit(&mut |p| {
            if let LogicalPlan::UnionAll(u) = p {
                union_sizes.push(u.inputs.len());
            }
        });
        assert!(union_sizes.contains(&2));
    }
}
