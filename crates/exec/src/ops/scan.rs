//! Table scan with partition pruning and byte metering.

use std::sync::Arc;

use fusion_common::{Result, Schema, Value};
use fusion_expr::{BinaryOp, Expr};

use crate::context::{ExecContext, IntoContext};
use crate::ops::{Operator, RowIndex};
use crate::table::Table;
use crate::{Chunk, CHUNK_SIZE};

/// Scans the selected columns of a table, partition by partition.
///
/// Pushed-down predicates serve two purposes: conjuncts over the partition
/// column prune whole partitions *before* their bytes are metered
/// (modeling Athena skipping S3 objects), and every conjunct is re-applied
/// row-by-row for exactness.
pub struct ScanExec {
    table: Arc<Table>,
    /// Base-table ordinals to read, parallel to `schema` fields.
    column_indices: Vec<usize>,
    schema: Schema,
    filters: Vec<Expr>,
    index: RowIndex,
    ctx: Arc<ExecContext>,
    /// (op, literal) conjuncts over the partition column, for pruning.
    prune_predicates: Vec<(BinaryOp, Value)>,
    next_partition: usize,
    /// Row offset within the current partition.
    offset: usize,
    done_metering: Vec<bool>,
}

impl ScanExec {
    pub fn new(
        table: Arc<Table>,
        column_indices: Vec<usize>,
        schema: Schema,
        filters: Vec<Expr>,
        ctx: impl IntoContext,
    ) -> Self {
        let index = RowIndex::new(&schema);
        let prune_predicates = match table.partition_column {
            Some(pc) => extract_prune_predicates(&filters, &schema, &column_indices, pc),
            None => vec![],
        };
        let n = table.partitions.len();
        ScanExec {
            table,
            column_indices,
            schema,
            filters,
            index,
            ctx: ctx.into_ctx(),
            prune_predicates,
            next_partition: 0,
            offset: 0,
            done_metering: vec![false; n],
        }
    }

    fn partition_pruned(&self, part: usize) -> bool {
        if self.prune_predicates.is_empty() {
            return false;
        }
        let p = &self.table.partitions[part];
        let (min, max) = match (&p.part_min, &p.part_max) {
            (Some(a), Some(b)) => (a, b),
            _ => return false,
        };
        self.prune_predicates
            .iter()
            .any(|(op, lit)| !Table::partition_may_match(min, max, *op, lit))
    }
}

/// Conjuncts of the pushed filters of form `part_col <op> literal`
/// (either operand order), usable for partition pruning.
fn extract_prune_predicates(
    filters: &[Expr],
    schema: &Schema,
    column_indices: &[usize],
    partition_col: usize,
) -> Vec<(BinaryOp, Value)> {
    // Which instance column id corresponds to the partition ordinal?
    let part_field = schema
        .fields()
        .iter()
        .zip(column_indices)
        .find(|(_, &ord)| ord == partition_col)
        .map(|(f, _)| f.id);
    let part_id = match part_field {
        Some(id) => id,
        None => return vec![],
    };
    let mut out = Vec::new();
    for f in filters {
        for c in fusion_expr::split_conjuncts(f) {
            if let Expr::Binary { op, left, right } = &c {
                if !op.is_comparison() {
                    continue;
                }
                match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(id), Expr::Literal(v)) if *id == part_id && !v.is_null() => {
                        out.push((*op, v.clone()));
                    }
                    (Expr::Literal(v), Expr::Column(id)) if *id == part_id && !v.is_null() => {
                        if let Some(flipped) = op.commuted() {
                            out.push((flipped, v.clone()));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

impl Operator for ScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        self.ctx.check()?;
        loop {
            if self.next_partition >= self.table.partitions.len() {
                return Ok(None);
            }
            let part_idx = self.next_partition;
            if self.offset == 0 && self.partition_pruned(part_idx) {
                self.ctx.metrics().add_partitions(0, 1);
                self.next_partition += 1;
                continue;
            }
            if self.offset == 0 && !self.done_metering[part_idx] {
                // First touch of this partition: apply the fault policy
                // (with retry/backoff for transient failures), then meter
                // the bytes the scan actually reads.
                self.ctx
                    .faulted_read(&self.table.name, part_idx, || Ok(()))?;
                let part = &self.table.partitions[part_idx];
                let bytes: u64 = self
                    .column_indices
                    .iter()
                    .map(|&c| part.column_bytes[c])
                    .sum();
                let metrics = self.ctx.metrics();
                metrics.add_bytes_scanned(bytes);
                metrics.add_rows_scanned(part.num_rows as u64);
                metrics.add_partitions(1, 0);
                self.done_metering[part_idx] = true;
            }
            let part = &self.table.partitions[part_idx];

            let end = (self.offset + CHUNK_SIZE).min(part.num_rows);
            let mut chunk: Chunk = Vec::with_capacity(end - self.offset);
            'rows: for r in self.offset..end {
                let row: Vec<Value> = self
                    .column_indices
                    .iter()
                    .map(|&c| part.columns[c][r].clone())
                    .collect();
                for f in &self.filters {
                    if !self.index.eval_pred(f, &row)? {
                        continue 'rows;
                    }
                }
                chunk.push(row);
            }
            self.offset = end;
            if self.offset >= part.num_rows {
                self.next_partition += 1;
                self.offset = 0;
            }
            if !chunk.is_empty() {
                return Ok(Some(chunk));
            }
            // All rows filtered out: continue to the next slice/partition.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPolicy, RetryPolicy};
    use crate::metrics::ExecMetrics;
    use crate::ops::drain;
    use crate::table::{TableBuilder, TableColumn};
    use fusion_common::{ColumnId, DataType, Field, FusionError};
    use fusion_expr::{col, lit};

    fn table() -> Table {
        let mut b = TableBuilder::new(
            "t",
            vec![
                TableColumn {
                    name: "sk".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "v".into(),
                    data_type: DataType::Utf8,
                    nullable: true,
                },
            ],
        )
        .partition_by("sk", 10)
        .unwrap();
        for i in 0..100i64 {
            b.add_row(vec![Value::Int64(i), Value::Utf8(format!("r{i}"))])
                .unwrap();
        }
        b.build()
    }

    fn schema_for(ids: &[u32]) -> Schema {
        Schema::new(vec![
            Field::new(ColumnId(ids[0]), "sk", DataType::Int64, false),
            Field::new(ColumnId(ids[1]), "v", DataType::Utf8, true),
        ])
    }

    #[test]
    fn full_scan_reads_everything() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![], m.clone());
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(m.rows_scanned(), 100);
        assert_eq!(m.partitions_read(), 10);
        assert_eq!(m.partitions_pruned(), 0);
    }

    #[test]
    fn partition_pruning_skips_bytes() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // sk >= 90 keeps only the last partition.
        let filter = col(ColumnId(1)).gt_eq(lit(90i64));
        let mut scan = ScanExec::new(
            t.clone(),
            vec![0, 1],
            schema_for(&[1, 2]),
            vec![filter],
            m.clone(),
        );
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(m.partitions_read(), 1);
        assert_eq!(m.partitions_pruned(), 9);
        // Bytes metered = only that partition's two columns.
        let expected: u64 = t.partitions.last().unwrap().column_bytes.iter().sum();
        assert_eq!(m.bytes_scanned(), expected);
    }

    #[test]
    fn column_pruning_meters_fewer_bytes() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        let schema = Schema::new(vec![Field::new(ColumnId(1), "sk", DataType::Int64, false)]);
        let mut scan = ScanExec::new(t.clone(), vec![0], schema, vec![], m.clone());
        drain(&mut scan).unwrap();
        assert_eq!(m.bytes_scanned(), 100 * 8);
    }

    #[test]
    fn row_level_filters_apply_after_pruning() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // sk >= 90 AND sk < 95: one partition read, 5 rows out.
        let f1 = col(ColumnId(1)).gt_eq(lit(90i64));
        let f2 = col(ColumnId(1)).lt(lit(95i64));
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![f1, f2], m);
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn transient_faults_are_retried_to_completion() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // 30% per-attempt failure rate: with 3 retries the chance any of
        // the 10 partitions fails 4 times in a row is < 1% per partition,
        // and the schedule is deterministic anyway — seed 4 recovers.
        let ctx = ExecContext::builder(m.clone())
            .fault_policy(FaultPolicy::transient(4, 0.3))
            .retry_policy(RetryPolicy::default())
            .build();
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![], ctx);
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 100, "all rows survive under retries");
        let snap = m.snapshot();
        assert!(snap.faults_injected > 0, "seed 3 must inject at least once");
        assert_eq!(snap.retries, snap.faults_injected);
        // Metering must not double-count retried partitions.
        assert_eq!(snap.rows_scanned, 100);
        assert_eq!(snap.partitions_read, 10);
    }

    #[test]
    fn poisoned_partition_fails_the_scan_fatally() {
        let t = Arc::new(table());
        let ctx = ExecContext::builder(ExecMetrics::new())
            .fault_policy(FaultPolicy::default().with_poison("t", 4))
            .build();
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![], ctx);
        match drain(&mut scan) {
            Err(FusionError::DataCorruption(msg)) => assert!(msg.contains("partition 4")),
            other => panic!("expected DataCorruption, got {other:?}"),
        }
    }

    #[test]
    fn pruned_partitions_are_never_faulted() {
        let t = Arc::new(table());
        let m = ExecMetrics::new();
        // Poison partition 0, but prune it away: the scan must succeed.
        let ctx = ExecContext::builder(m.clone())
            .fault_policy(FaultPolicy::default().with_poison("t", 0))
            .build();
        let filter = col(ColumnId(1)).gt_eq(lit(90i64));
        let mut scan = ScanExec::new(t, vec![0, 1], schema_for(&[1, 2]), vec![filter], ctx);
        let rows = drain(&mut scan).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(m.faults_injected(), 0);
    }
}
