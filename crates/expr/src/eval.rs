//! Row-based expression evaluation with SQL three-valued logic.

use std::borrow::Cow;
use std::cmp::Ordering;

use fusion_common::{ColumnId, DataType, FusionError, Result, Value};

use crate::expr::{BinaryOp, Expr, ScalarFunc};

/// Resolve a column reference to a value for the current row.
pub trait Resolver {
    fn value(&self, id: ColumnId) -> Result<Value>;

    /// Borrowing resolution: resolvers backed by in-memory rows override
    /// this to hand out `Cow::Borrowed` and skip the per-access clone the
    /// owning [`Resolver::value`] path pays.
    fn value_ref(&self, id: ColumnId) -> Result<Cow<'_, Value>> {
        self.value(id).map(Cow::Owned)
    }
}

impl<F> Resolver for F
where
    F: Fn(ColumnId) -> Result<Value>,
{
    fn value(&self, id: ColumnId) -> Result<Value> {
        self(id)
    }
}

/// Evaluate `expr` against a row.
pub fn eval(expr: &Expr, row: &dyn Resolver) -> Result<Value> {
    match expr {
        Expr::Column(id) => row.value(*id),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
        Expr::Not(e) => match eval(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Boolean(b) => Ok(Value::Boolean(!b)),
            v => Err(FusionError::Type(format!("NOT applied to {v}"))),
        },
        Expr::Negate(e) => match eval(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Int64(i) => Ok(Value::Int64(-i)),
            Value::Float64(f) => Ok(Value::Float64(-f)),
            v => Err(FusionError::Type(format!("negation applied to {v}"))),
        },
        Expr::IsNull(e) => Ok(Value::Boolean(eval(e, row)?.is_null())),
        Expr::IsNotNull(e) => Ok(Value::Boolean(!eval(e, row)?.is_null())),
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, value) in branches {
                if eval(cond, row)?.as_bool() == Some(true) {
                    return eval(value, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, row),
                None => Ok(Value::Null),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row)?;
                match v.sql_cmp(&iv) {
                    Some(Ordering::Equal) => {
                        return Ok(Value::Boolean(!negated));
                    }
                    None => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        Expr::Cast { expr, to } => cast(eval(expr, row)?, *to),
        Expr::ScalarFunction { func, args } => match func {
            ScalarFunc::Coalesce => {
                for a in args {
                    let v = eval(a, row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            ScalarFunc::Abs => {
                let v = args
                    .first()
                    .map(|a| eval(a, row))
                    .transpose()?
                    .unwrap_or(Value::Null);
                Ok(match v {
                    Value::Int64(i) => Value::Int64(i.abs()),
                    Value::Float64(f) => Value::Float64(f.abs()),
                    Value::Null => Value::Null,
                    other => {
                        return Err(FusionError::Type(format!("ABS applied to {other}")))
                    }
                })
            }
        },
    }
}

/// Convenience: evaluate a boolean predicate; returns `false` for NULL
/// (filter semantics: keep only rows where the predicate is TRUE).
pub fn eval_predicate(expr: &Expr, row: &dyn Resolver) -> Result<bool> {
    Ok(eval_cow(expr, row)?.as_bool() == Some(true))
}

/// Borrowing evaluation: the predicate hot path (columns, literals,
/// comparisons, AND/OR/NOT, null tests) resolves operands through
/// [`Resolver::value_ref`] and never clones a `Value` it only inspects.
/// Nodes that construct new values fall through to [`eval`].
pub fn eval_cow<'a>(expr: &'a Expr, row: &'a dyn Resolver) -> Result<Cow<'a, Value>> {
    match expr {
        Expr::Column(id) => row.value_ref(*id),
        Expr::Literal(v) => Ok(Cow::Borrowed(v)),
        Expr::Binary { op, left, right } if *op == BinaryOp::And => {
            let l = eval_cow(left, row)?;
            if l.as_bool() == Some(false) {
                return Ok(Cow::Owned(Value::Boolean(false)));
            }
            let r = eval_cow(right, row)?;
            Ok(Cow::Owned(match (l.as_bool(), r.as_bool()) {
                (_, Some(false)) => Value::Boolean(false),
                (Some(true), Some(true)) => Value::Boolean(true),
                _ => Value::Null,
            }))
        }
        Expr::Binary { op, left, right } if *op == BinaryOp::Or => {
            let l = eval_cow(left, row)?;
            if l.as_bool() == Some(true) {
                return Ok(Cow::Owned(Value::Boolean(true)));
            }
            let r = eval_cow(right, row)?;
            Ok(Cow::Owned(match (l.as_bool(), r.as_bool()) {
                (_, Some(true)) => Value::Boolean(true),
                (Some(false), Some(false)) => Value::Boolean(false),
                _ => Value::Null,
            }))
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = eval_cow(left, row)?;
            let r = eval_cow(right, row)?;
            if l.is_null() || r.is_null() {
                return Ok(Cow::Owned(Value::Null));
            }
            let ord = l.sql_cmp(&r).ok_or_else(|| {
                FusionError::Type(format!("cannot compare {l} with {r}"))
            })?;
            Ok(Cow::Owned(Value::Boolean(compare(*op, ord))))
        }
        Expr::Not(e) => match eval_cow(e, row)?.as_ref() {
            Value::Null => Ok(Cow::Owned(Value::Null)),
            Value::Boolean(b) => Ok(Cow::Owned(Value::Boolean(!b))),
            v => Err(FusionError::Type(format!("NOT applied to {v}"))),
        },
        Expr::IsNull(e) => Ok(Cow::Owned(Value::Boolean(eval_cow(e, row)?.is_null()))),
        Expr::IsNotNull(e) => Ok(Cow::Owned(Value::Boolean(!eval_cow(e, row)?.is_null()))),
        _ => eval(expr, row).map(Cow::Owned),
    }
}

pub(crate) fn compare(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("compare called with non-comparison op"),
    }
}

fn eval_binary(op: BinaryOp, left: &Expr, right: &Expr, row: &dyn Resolver) -> Result<Value> {
    // AND/OR need three-valued short-circuit semantics.
    if op == BinaryOp::And {
        let l = eval(left, row)?;
        if l.as_bool() == Some(false) {
            return Ok(Value::Boolean(false));
        }
        let r = eval(right, row)?;
        return Ok(match (l.as_bool(), r.as_bool()) {
            (_, Some(false)) => Value::Boolean(false),
            (Some(true), Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        });
    }
    if op == BinaryOp::Or {
        let l = eval(left, row)?;
        if l.as_bool() == Some(true) {
            return Ok(Value::Boolean(true));
        }
        let r = eval(right, row)?;
        return Ok(match (l.as_bool(), r.as_bool()) {
            (_, Some(true)) => Value::Boolean(true),
            (Some(false), Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        });
    }

    let l = eval(left, row)?;
    let r = eval(right, row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_cmp(&r).ok_or_else(|| {
            FusionError::Type(format!("cannot compare {l} with {r}"))
        })?;
        return Ok(Value::Boolean(compare(op, ord)));
    }
    arith(op, &l, &r)
}

pub(crate) fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral except division.
    if let (Value::Int64(a), Value::Int64(b)) = (l, r) {
        return Ok(match op {
            BinaryOp::Plus => Value::Int64(a.wrapping_add(*b)),
            BinaryOp::Minus => Value::Int64(a.wrapping_sub(*b)),
            BinaryOp::Multiply => Value::Int64(a.wrapping_mul(*b)),
            BinaryOp::Divide => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float64(*a as f64 / *b as f64)
                }
            }
            BinaryOp::Modulo => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int64(a.wrapping_rem(*b))
                }
            }
            _ => return Err(FusionError::Type(format!("bad arithmetic op {op}"))),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(FusionError::Type(format!(
                "cannot apply {op} to {l} and {r}"
            )))
        }
    };
    Ok(match op {
        BinaryOp::Plus => Value::Float64(a + b),
        BinaryOp::Minus => Value::Float64(a - b),
        BinaryOp::Multiply => Value::Float64(a * b),
        BinaryOp::Divide => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float64(a / b)
            }
        }
        BinaryOp::Modulo => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float64(a % b)
            }
        }
        _ => return Err(FusionError::Type(format!("bad arithmetic op {op}"))),
    })
}

/// Cast a value to a target type.
pub fn cast(v: Value, to: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let out = match (v.clone(), to) {
        (Value::Int64(i), DataType::Int64) => Value::Int64(i),
        (Value::Int64(i), DataType::Float64) => Value::Float64(i as f64),
        (Value::Float64(f), DataType::Float64) => Value::Float64(f),
        (Value::Float64(f), DataType::Int64) => Value::Int64(f as i64),
        (Value::Boolean(b), DataType::Boolean) => Value::Boolean(b),
        (Value::Utf8(s), DataType::Utf8) => Value::Utf8(s),
        (Value::Date(d), DataType::Date) => Value::Date(d),
        (Value::Date(d), DataType::Int64) => Value::Int64(d as i64),
        (Value::Int64(i), DataType::Date) => Value::Date(i as i32),
        (Value::Utf8(s), DataType::Int64) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int64)
            .map_err(|_| FusionError::Type(format!("cannot cast '{s}' to BIGINT")))?,
        (Value::Utf8(s), DataType::Float64) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float64)
            .map_err(|_| FusionError::Type(format!("cannot cast '{s}' to DOUBLE")))?,
        (Value::Int64(i), DataType::Utf8) => Value::Utf8(i.to_string()),
        (Value::Float64(f), DataType::Utf8) => Value::Utf8(f.to_string()),
        (v, to) => {
            return Err(FusionError::Type(format!("cannot cast {v} to {to}")));
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use std::collections::HashMap;

    struct Row(HashMap<ColumnId, Value>);
    impl Resolver for Row {
        fn value(&self, id: ColumnId) -> Result<Value> {
            self.0
                .get(&id)
                .cloned()
                .ok_or_else(|| FusionError::Execution(format!("no column {id}")))
        }
    }

    fn row(pairs: &[(u32, Value)]) -> Row {
        Row(pairs
            .iter()
            .map(|(i, v)| (ColumnId(*i), v.clone()))
            .collect())
    }

    #[test]
    fn three_valued_and_or() {
        let r = row(&[(1, Value::Null), (2, Value::Boolean(false))]);
        // NULL AND FALSE = FALSE
        let e = col(ColumnId(1)).and(col(ColumnId(2)));
        assert_eq!(eval(&e, &r).unwrap(), Value::Boolean(false));
        // NULL OR FALSE = NULL
        let e = col(ColumnId(1)).or(col(ColumnId(2)));
        assert_eq!(eval(&e, &r).unwrap(), Value::Null);
        // NULL OR TRUE = TRUE
        let e = col(ColumnId(1)).or(lit(true));
        assert_eq!(eval(&e, &r).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn null_propagates_through_comparisons_and_arith() {
        let r = row(&[(1, Value::Null)]);
        assert_eq!(
            eval(&col(ColumnId(1)).gt(lit(1i64)), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&col(ColumnId(1)).add(lit(1i64)), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&col(ColumnId(1)).is_null(), &r).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn in_list_with_null_semantics() {
        let r = row(&[(1, Value::Int64(3))]);
        let e = Expr::InList {
            expr: Box::new(col(ColumnId(1))),
            list: vec![lit(1i64), lit(3i64)],
            negated: false,
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Boolean(true));
        // 3 NOT IN (1, NULL) => NULL (unknown)
        let e = Expr::InList {
            expr: Box::new(col(ColumnId(1))),
            list: vec![lit(1i64), Expr::Literal(Value::Null)],
            negated: true,
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Null);
    }

    #[test]
    fn case_falls_through_to_else() {
        let r = row(&[(1, Value::Int64(5))]);
        let e = Expr::Case {
            branches: vec![
                (col(ColumnId(1)).gt(lit(10i64)), lit("big")),
                (col(ColumnId(1)).gt(lit(3i64)), lit("mid")),
            ],
            else_expr: Some(Box::new(lit("small"))),
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Utf8("mid".into()));
    }

    #[test]
    fn division_by_zero_is_null() {
        let r = row(&[]);
        assert_eq!(eval(&lit(1i64).div(lit(0i64)), &r).unwrap(), Value::Null);
        assert_eq!(eval(&lit(1.0).div(lit(0.0)), &r).unwrap(), Value::Null);
    }

    #[test]
    fn integer_arithmetic_stays_integral() {
        let r = row(&[]);
        assert_eq!(
            eval(&lit(2i64).add(lit(3i64)), &r).unwrap(),
            Value::Int64(5)
        );
        assert_eq!(
            eval(&lit(7i64).div(lit(2i64)), &r).unwrap(),
            Value::Float64(3.5)
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            cast(Value::Utf8("42".into()), DataType::Int64).unwrap(),
            Value::Int64(42)
        );
        assert_eq!(
            cast(Value::Int64(3), DataType::Float64).unwrap(),
            Value::Float64(3.0)
        );
        assert!(cast(Value::Boolean(true), DataType::Int64).is_err());
        assert_eq!(cast(Value::Null, DataType::Int64).unwrap(), Value::Null);
    }

    #[test]
    fn eval_predicate_treats_null_as_false() {
        let r = row(&[(1, Value::Null)]);
        assert!(!eval_predicate(&col(ColumnId(1)).gt(lit(1i64)), &r).unwrap());
    }

    /// A resolver that hands out borrows and counts owning clones; the
    /// borrowing hot path must never fall back to `value`.
    struct Borrowing<'a> {
        values: &'a [(ColumnId, Value)],
        clones: std::cell::Cell<usize>,
    }
    impl Resolver for Borrowing<'_> {
        fn value(&self, id: ColumnId) -> Result<Value> {
            self.clones.set(self.clones.get() + 1);
            self.value_ref(id).map(|c| c.into_owned())
        }
        fn value_ref(&self, id: ColumnId) -> Result<std::borrow::Cow<'_, Value>> {
            self.values
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, v)| std::borrow::Cow::Borrowed(v))
                .ok_or_else(|| FusionError::Execution(format!("no column {id}")))
        }
    }

    #[test]
    fn eval_cow_borrows_through_predicates() {
        let values = [
            (ColumnId(1), Value::Utf8("north".into())),
            (ColumnId(2), Value::Int64(7)),
        ];
        let r = Borrowing {
            values: &values,
            clones: std::cell::Cell::new(0),
        };
        let pred = col(ColumnId(1))
            .eq_to(lit("north"))
            .and(col(ColumnId(2)).gt(lit(3i64)))
            .and(col(ColumnId(2)).is_not_null());
        assert_eq!(eval_cow(&pred, &r).unwrap().as_ref(), &Value::Boolean(true));
        assert_eq!(r.clones.get(), 0, "comparison path must not clone values");
        // The same expression through the owning path matches.
        assert_eq!(eval(&pred, &r).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn eval_cow_matches_eval_on_complex_nodes() {
        let values = [(ColumnId(1), Value::Int64(5))];
        let r = Borrowing {
            values: &values,
            clones: std::cell::Cell::new(0),
        };
        // Arithmetic inside a comparison falls back to `eval` for the
        // arith node but still compares without cloning the results.
        let pred = col(ColumnId(1)).add(lit(1i64)).gt(lit(5i64));
        assert_eq!(eval_cow(&pred, &r).unwrap().as_ref(), &Value::Boolean(true));
        assert_eq!(eval(&pred, &r).unwrap(), Value::Boolean(true));
    }
}

#[cfg(test)]
mod scalar_func_tests {
    use super::*;
    use crate::expr::{col, lit, Expr, ScalarFunc};
    use std::collections::HashMap;

    struct Row(HashMap<ColumnId, Value>);
    impl Resolver for Row {
        fn value(&self, id: ColumnId) -> Result<Value> {
            self.0
                .get(&id)
                .cloned()
                .ok_or_else(|| FusionError::Execution(format!("no column {id}")))
        }
    }

    #[test]
    fn coalesce_returns_first_non_null() {
        let r = Row([(ColumnId(1), Value::Null), (ColumnId(2), Value::Int64(7))]
            .into_iter()
            .collect());
        let e = Expr::ScalarFunction {
            func: ScalarFunc::Coalesce,
            args: vec![col(ColumnId(1)), col(ColumnId(2)), lit(0i64)],
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Int64(7));
        let all_null = Expr::ScalarFunction {
            func: ScalarFunc::Coalesce,
            args: vec![col(ColumnId(1))],
        };
        assert_eq!(eval(&all_null, &r).unwrap(), Value::Null);
    }

    #[test]
    fn abs_handles_ints_floats_and_null() {
        let r = Row([(ColumnId(1), Value::Int64(-5))].into_iter().collect());
        let e = Expr::ScalarFunction {
            func: ScalarFunc::Abs,
            args: vec![col(ColumnId(1))],
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Int64(5));
        let e = Expr::ScalarFunction {
            func: ScalarFunc::Abs,
            args: vec![lit(-2.5)],
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Float64(2.5));
        let e = Expr::ScalarFunction {
            func: ScalarFunc::Abs,
            args: vec![Expr::Literal(Value::Null)],
        };
        assert_eq!(eval(&e, &r).unwrap(), Value::Null);
    }
}
