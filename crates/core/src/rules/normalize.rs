//! Normalization rules: expression simplification, filter merging,
//! trivial-operator removal.
//!
//! These run before and after the fusion phase. Because fused results are
//! plain relational plans, this pass cleans up whatever the fusion rules
//! produce (e.g. `mask AND TRUE`, `C OR C`, `Filter TRUE`) with no
//! fusion-specific code — the composability property the paper claims
//! over Blitz/Resin.

use fusion_expr::{simplify, simplify_filter};
use fusion_plan::{Aggregate, Filter, LogicalPlan, Project, Scan, Sort, Window};

use super::Rule;
use crate::fuse::FuseContext;

/// Simplify every expression in the plan.
pub struct SimplifyExpressions;

impl Rule for SimplifyExpressions {
    fn name(&self) -> &'static str {
        "SimplifyExpressions"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        let new = simplify_node(plan);
        (new != *plan).then_some(new)
    }
}

fn simplify_node(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        // Filter predicates, join conditions, masks and scan filters sit in
        // null-rejecting positions, so the stronger contradiction-folding
        // variant applies; projection/sort/argument expressions must keep
        // exact Kleene semantics and get the strict one.
        LogicalPlan::Filter(f) => LogicalPlan::Filter(Filter {
            input: f.input.clone(),
            predicate: simplify_filter(&f.predicate),
        }),
        LogicalPlan::Project(p) => LogicalPlan::Project(Project {
            input: p.input.clone(),
            exprs: p
                .exprs
                .iter()
                .map(|pe| fusion_plan::ProjExpr::new(pe.id, pe.name.clone(), simplify(&pe.expr)))
                .collect(),
        }),
        LogicalPlan::Join(j) => LogicalPlan::Join(fusion_plan::Join {
            left: j.left.clone(),
            right: j.right.clone(),
            join_type: j.join_type,
            condition: simplify_filter(&j.condition),
        }),
        LogicalPlan::Aggregate(a) => LogicalPlan::Aggregate(Aggregate {
            input: a.input.clone(),
            group_by: a.group_by.clone(),
            aggregates: a
                .aggregates
                .iter()
                .map(|assign| {
                    let mut agg = assign.agg.clone();
                    agg.mask = simplify_filter(&agg.mask);
                    agg.arg = agg.arg.as_ref().map(simplify);
                    fusion_plan::AggAssign::new(assign.id, assign.name.clone(), agg)
                })
                .collect(),
        }),
        LogicalPlan::Window(w) => LogicalPlan::Window(Window {
            input: w.input.clone(),
            exprs: w
                .exprs
                .iter()
                .map(|assign| {
                    let mut win = assign.window.clone();
                    win.arg = win.arg.as_ref().map(simplify);
                    fusion_plan::WindowAssign {
                        id: assign.id,
                        name: assign.name.clone(),
                        window: win,
                    }
                })
                .collect(),
        }),
        LogicalPlan::Sort(s) => LogicalPlan::Sort(Sort {
            input: s.input.clone(),
            keys: s
                .keys
                .iter()
                .map(|k| fusion_plan::SortKey {
                    expr: simplify(&k.expr),
                    asc: k.asc,
                    nulls_first: k.nulls_first,
                })
                .collect(),
        }),
        LogicalPlan::MarkDistinct(m) => LogicalPlan::MarkDistinct(fusion_plan::MarkDistinct {
            input: m.input.clone(),
            columns: m.columns.clone(),
            mark_id: m.mark_id,
            mark_name: m.mark_name.clone(),
            mask: simplify_filter(&m.mask),
        }),
        LogicalPlan::Scan(s) => LogicalPlan::Scan(Scan {
            table: s.table.clone(),
            fields: s.fields.clone(),
            column_indices: s.column_indices.clone(),
            filters: s.filters.iter().map(simplify_filter).collect(),
        }),
        other => other.clone(),
    }
}

/// Merge stacked filters and drop trivial ones.
pub struct MergeFilters;

impl Rule for MergeFilters {
    fn name(&self) -> &'static str {
        "MergeFilters"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        let f = match plan {
            LogicalPlan::Filter(f) => f,
            _ => return None,
        };
        if f.predicate.is_true_literal() {
            return Some(f.input.as_ref().clone());
        }
        if let LogicalPlan::Filter(inner) = f.input.as_ref() {
            return Some(LogicalPlan::Filter(Filter {
                input: inner.input.clone(),
                predicate: simplify_filter(&f.predicate.clone().and(inner.predicate.clone())),
            }));
        }
        None
    }
}

/// Remove projections that are exact identities of their input.
pub struct RemoveTrivialProjections;

impl Rule for RemoveTrivialProjections {
    fn name(&self) -> &'static str {
        "RemoveTrivialProjections"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        let p = match plan {
            LogicalPlan::Project(p) => p,
            _ => return None,
        };
        let input_schema = p.input.schema();
        if p.exprs.len() != input_schema.len() {
            return None;
        }
        let identity = p
            .exprs
            .iter()
            .zip(input_schema.fields())
            .all(|(pe, f)| pe.id == f.id && pe.expr == fusion_expr::col(f.id));
        identity.then(|| p.input.as_ref().clone())
    }
}

/// Collapse `Project(Project(x))` by inlining the inner assignments.
pub struct MergeProjections;

impl Rule for MergeProjections {
    fn name(&self) -> &'static str {
        "MergeProjections"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        let outer = match plan {
            LogicalPlan::Project(p) => p,
            _ => return None,
        };
        let inner = match outer.input.as_ref() {
            LogicalPlan::Project(p) => p,
            _ => return None,
        };
        let inner_map: std::collections::HashMap<_, _> = inner
            .exprs
            .iter()
            .map(|pe| (pe.id, pe.expr.clone()))
            .collect();
        let exprs = outer
            .exprs
            .iter()
            .map(|pe| {
                fusion_plan::ProjExpr::new(pe.id, pe.name.clone(), pe.expr.substitute(&inner_map))
            })
            .collect();
        Some(LogicalPlan::Project(Project {
            input: inner.input.clone(),
            exprs,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit, Expr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("a", DataType::Int64, false),
            ColumnDef::new("b", DataType::Int64, true),
        ]
    }

    #[test]
    fn filters_merge_and_trivial_drop() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t = PlanBuilder::scan(&gen, "t", &cols());
        let a = t.col("a").unwrap();
        let plan = t
            .filter(col(a).gt(lit(0i64)))
            .filter(col(a).lt(lit(10i64)))
            .filter(Expr::boolean(true))
            .build();
        let mut current = plan;
        while let Some(next) = apply_everywhere(&MergeFilters, &current, &ctx) {
            current = next;
        }
        // One filter remains, with the conjunction.
        assert_eq!(current.node_count(), 2);
        if let LogicalPlan::Filter(f) = &current {
            assert!(f.predicate.to_string().contains("AND"));
        } else {
            panic!("expected Filter");
        }
    }

    #[test]
    fn identity_projection_removed() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t = PlanBuilder::scan(&gen, "t", &cols());
        let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
        let scan = t.plan().clone();
        let plan = LogicalPlan::Project(Project {
            input: Box::new(scan.clone()),
            exprs: scan
                .schema()
                .fields()
                .iter()
                .map(fusion_plan::ProjExpr::passthrough)
                .collect(),
        });
        let _ = (a, b);
        let out = apply_everywhere(&RemoveTrivialProjections, &plan, &ctx).unwrap();
        assert_eq!(out, scan);
    }

    #[test]
    fn projections_merge_with_inlining() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t = PlanBuilder::scan(&gen, "t", &cols());
        let a = t.col("a").unwrap();
        let p1 = t.project(vec![("x", col(a).add(lit(1i64)))]);
        let x = p1.col("x").unwrap();
        let plan = p1.project(vec![("y", col(x).mul(lit(2i64)))]).build();
        let merged = apply_everywhere(&MergeProjections, &plan, &ctx).unwrap();
        assert_eq!(merged.node_count(), 2);
        if let LogicalPlan::Project(p) = &merged {
            assert_eq!(p.exprs[0].expr, col(a).add(lit(1i64)).mul(lit(2i64)));
        } else {
            panic!("expected Project");
        }
    }

    #[test]
    fn simplification_rewrites_masks() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t = PlanBuilder::scan(&gen, "t", &cols());
        let (a, b) = (t.col("a").unwrap(), t.col("b").unwrap());
        let plan = t
            .aggregate(
                vec![a],
                vec![(
                    "s",
                    fusion_expr::AggregateExpr::sum(col(b))
                        .with_mask(col(b).gt(lit(0i64)).and(Expr::boolean(true))),
                )],
            )
            .build();
        let out = apply_everywhere(&SimplifyExpressions, &plan, &ctx).unwrap();
        if let LogicalPlan::Aggregate(agg) = &out {
            assert_eq!(agg.aggregates[0].agg.mask, col(b).gt(lit(0i64)));
        } else {
            panic!("expected Aggregate");
        }
    }
}
