//! Fusing joins (§III.D).

use fusion_expr::{equiv_mod, Expr};
use fusion_plan::{Join, JoinType, LogicalPlan};

use super::{simp, FuseContext, Fused};

/// `Fuse(JL1 ⨝_C1 JR1, JL2 ⨝_C2 JR2)`: pairwise fuse the two sides,
/// union the (non-overlapping) mappings, and require the join conditions
/// to be equivalent modulo the mapping. The compensating filters are the
/// conjunctions of the per-side filters — valid because for inner joins a
/// side-local filter commutes with the join.
///
/// For non-inner variants the compensations must be trivial: filtering an
/// outer join's padded rows (or a semi join's projected-away right side)
/// with a side-local residual is not equivalent to filtering the input.
///
/// Different join *orders* do not fuse — as the paper notes, CTE-derived
/// duplicates and canonicalized join trees make this a minor limitation
/// in practice; n-ary matching is future work there and here.
pub fn fuse_joins(j1: &Join, j2: &Join, ctx: &FuseContext) -> Option<Fused> {
    if j1.join_type != j2.join_type {
        return None;
    }
    let fl = super::fuse(&j1.left, &j2.left, ctx)?;
    let fr = super::fuse(&j1.right, &j2.right, ctx)?;

    match j1.join_type {
        JoinType::Inner | JoinType::Cross => {}
        JoinType::Left => {
            // Right-side compensation would mis-handle padded rows.
            if !fr.trivial() {
                return None;
            }
        }
        JoinType::Semi => {
            // The right side is projected away, so its compensations
            // could never be applied downstream.
            if !fr.trivial() {
                return None;
            }
        }
    }

    let mut mapping = fl.mapping.clone();
    mapping.extend(fr.mapping.iter().map(|(k, v)| (*k, *v)));
    if !equiv_mod(&j1.condition, &j2.condition, &mapping) {
        return None;
    }

    let left = simp(fl.left.and(fr.left));
    let right = simp(fl.right.and(fr.right));
    // Cross joins must carry the canonical literal TRUE: keeping
    // `j1.condition` verbatim would let a residual like `TRUE AND TRUE`
    // through, which strict per-rewrite validation rejects before the
    // cleanup phase gets a chance to normalize it.
    let condition = if j1.join_type == JoinType::Cross {
        Expr::boolean(true)
    } else {
        j1.condition.clone()
    };
    Some(Fused {
        plan: LogicalPlan::Join(Join {
            left: Box::new(fl.plan),
            right: Box::new(fr.plan),
            join_type: j1.join_type,
            condition,
        }),
        mapping,
        left,
        right,
    })
}

#[cfg(test)]
mod tests {
    use crate::fuse::{fuse, FuseContext};
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit, Expr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{JoinType, LogicalPlan, PlanBuilder};

    fn sales_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("ss_item_sk", DataType::Int64, true),
            ColumnDef::new("ss_store_sk", DataType::Int64, true),
            ColumnDef::new("ss_addr_sk", DataType::Int64, true),
            ColumnDef::new("ss_quantity", DataType::Int64, true),
        ]
    }

    fn item_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("i_item_sk", DataType::Int64, false),
            ColumnDef::new("i_size", DataType::Utf8, true),
        ]
    }

    type FilterBuilder<'a> = &'a dyn Fn(&PlanBuilder, &PlanBuilder) -> Expr;

    fn join_fragment(gen: &IdGen, extra_filter: Option<FilterBuilder>) -> LogicalPlan {
        let s = PlanBuilder::scan(gen, "store_sales", &sales_cols());
        let i = PlanBuilder::scan(gen, "item", &item_cols());
        let cond = col(s.col("ss_item_sk").unwrap()).eq_to(col(i.col("i_item_sk").unwrap()));
        let filter = extra_filter.map(|f| f(&s, &i));
        let mut b = s.join(i.build(), JoinType::Inner, cond);
        if let Some(f) = filter {
            b = b.filter(f);
        }
        b.build()
    }

    /// The §III.D example: two joins of the same tables on the same key,
    /// with different residual filters above — the fused join carries the
    /// disjunction, and L/R restore each side.
    #[test]
    fn same_shape_joins_fuse_with_filter_disjunction() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let p1 = join_fragment(&gen, Some(&|s, i| {
            col(s.col("ss_addr_sk").unwrap())
                .gt(lit(20i64))
                .and(Expr::InList {
                    expr: Box::new(col(i.col("i_size").unwrap())),
                    list: vec![lit("m"), lit("l")],
                    negated: false,
                })
        }));
        let p2 = join_fragment(&gen, Some(&|_, i| {
            col(i.col("i_size").unwrap()).eq_to(lit("l"))
        }));

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        assert!(!f.left.is_true_literal());
        assert!(f.left.to_string().contains("> 20"));
        assert!(f.right.to_string().contains("'l'"));
    }

    #[test]
    fn identical_joins_fuse_trivially() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let p1 = join_fragment(&gen, None);
        let p2 = join_fragment(&gen, None);
        let f = fuse(&p1, &p2, &ctx).unwrap();
        assert!(f.trivial());
        // Every right-side output column maps into the fused plan.
        let schema = f.plan.schema();
        for id in p2.schema().ids() {
            assert!(schema.contains(f.mapped_id(id)));
        }
    }

    #[test]
    fn different_join_conditions_do_not_fuse() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let s1 = PlanBuilder::scan(&gen, "store_sales", &sales_cols());
        let i1 = PlanBuilder::scan(&gen, "item", &item_cols());
        let cond1 =
            col(s1.col("ss_item_sk").unwrap()).eq_to(col(i1.col("i_item_sk").unwrap()));
        let p1 = s1.join(i1.build(), JoinType::Inner, cond1).build();

        let s2 = PlanBuilder::scan(&gen, "store_sales", &sales_cols());
        let i2 = PlanBuilder::scan(&gen, "item", &item_cols());
        // Joins on a different column.
        let cond2 =
            col(s2.col("ss_store_sk").unwrap()).eq_to(col(i2.col("i_item_sk").unwrap()));
        let p2 = s2.join(i2.build(), JoinType::Inner, cond2).build();

        assert!(fuse(&p1, &p2, &ctx).is_none());
    }

    #[test]
    fn different_join_types_do_not_fuse() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let s1 = PlanBuilder::scan(&gen, "store_sales", &sales_cols());
        let i1 = PlanBuilder::scan(&gen, "item", &item_cols());
        let cond1 =
            col(s1.col("ss_item_sk").unwrap()).eq_to(col(i1.col("i_item_sk").unwrap()));
        let p1 = s1.join(i1.build(), JoinType::Inner, cond1).build();

        let s2 = PlanBuilder::scan(&gen, "store_sales", &sales_cols());
        let i2 = PlanBuilder::scan(&gen, "item", &item_cols());
        let cond2 =
            col(s2.col("ss_item_sk").unwrap()).eq_to(col(i2.col("i_item_sk").unwrap()));
        let p2 = s2.join(i2.build(), JoinType::Left, cond2).build();

        assert!(fuse(&p1, &p2, &ctx).is_none());
    }

    #[test]
    fn semi_join_with_nontrivial_right_compensation_rejected() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        // Two semi joins whose right sides differ by a filter: the fused
        // right would need a compensation that a semi join cannot apply.
        let make = |pred: Option<Expr>| {
            let s = PlanBuilder::scan(&gen, "store_sales", &sales_cols());
            let i = PlanBuilder::scan(&gen, "item", &item_cols());
            let right = match pred {
                Some(p) => {
                    let size = i.col("i_size").unwrap();
                    let _ = size;
                    i.filter(p).build()
                }
                None => i.build(),
            };
            let k = right.schema().field_by_name("i_item_sk").unwrap().id;
            let cond = col(s.col("ss_item_sk").unwrap()).eq_to(col(k));
            s.join(right, JoinType::Semi, cond).build()
        };
        let i_probe = PlanBuilder::scan(&gen, "item", &item_cols());
        let size_col = i_probe.col("i_size").unwrap();
        let _ = size_col;
        let p1 = make(None);
        // Build p2's filter against its own scan instance.
        let s2 = PlanBuilder::scan(&gen, "store_sales", &sales_cols());
        let i2 = PlanBuilder::scan(&gen, "item", &item_cols());
        let i2_size = i2.col("i_size").unwrap();
        let i2f = i2.filter(col(i2_size).eq_to(lit("l")));
        let k2 = i2f.col("i_item_sk").unwrap();
        let cond2 = col(s2.col("ss_item_sk").unwrap()).eq_to(col(k2));
        let p2 = s2.join(i2f.build(), JoinType::Semi, cond2).build();

        assert!(fuse(&p1, &p2, &ctx).is_none());
    }
}
