//! Streaming executor for the athena-fusion engine.
//!
//! The executor mirrors the architectural property the paper's rewrites
//! exploit: plans are **trees of streaming operators with no
//! materialization points**. A common subexpression that appears twice in
//! a plan really is evaluated twice (and its base tables scanned twice) —
//! which is exactly why the fusion rewrites pay off, and why the
//! bytes-scanned meter in [`metrics::ExecMetrics`] reproduces the paper's
//! Figure 2 metric faithfully.
//!
//! * [`table::Table`] — columnar, optionally date-partitioned in-memory
//!   tables; scans prune partitions with pushed-down predicates and meter
//!   the bytes of every column they actually read.
//! * [`ops`] — pull-based operators (`next_chunk`), one per logical
//!   operator, including the Athena-specific `MarkDistinct`.
//! * [`physical`] — compiles a `LogicalPlan` against a [`table::Catalog`]
//!   and runs it to completion.

pub mod context;
pub mod fault;
pub mod metrics;
pub mod ops;
pub mod physical;
pub mod pipeline;
pub mod profile;
pub mod table;

pub use context::{BudgetedReservation, CancelToken, ExecContext, IntoContext};
pub use fault::{FaultPolicy, RetryPolicy, ReuseFaultRates, ReuseFaultSite};
pub use metrics::{ExecMetrics, MetricsSnapshot};
pub use ops::agg::ParallelHashAggregateExec;
pub use ops::exchange::GatherExec;
pub use ops::scan::{ColumnarMorsel, ScanExec, ScanFragment};
pub use pipeline::FusedPipeline;
pub use physical::{
    collect, compile, compile_ctx, compile_profiled, execute_plan, execute_plan_ctx,
    execute_plan_profiled, QueryOutput,
};
pub use profile::{OpProfile, OpSpan, PartitionProfile, QueryProfile};
pub use table::{Catalog, Table, TableBuilder};

use fusion_common::Value;

/// A materialized row.
pub type Row = Vec<Value>;

/// A unit of streaming: a small batch of rows.
pub type Chunk = Vec<Row>;

/// Target chunk size for streaming operators.
pub const CHUNK_SIZE: usize = 4096;
