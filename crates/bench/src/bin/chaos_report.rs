// One-shot chaos driver: aborting on a setup or I/O failure is the
// desired behavior, so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Batch chaos report: blast-radius isolation under a seed matrix.
//!
//! Runs the TPC-DS chaos batch (an identical pair plus a distinct
//! control query) across a matrix of fault-schedule seeds × optimizer
//! modes (fused / baseline) × worker counts (1 / 4), with every reuse
//! fault point armed at a flaky rate plus mild transient scan faults.
//! Each cell runs the batch twice (cold, then warm against a possibly
//! corrupted cache) and checks the isolation contract:
//!
//! - the batch call itself always returns (never hangs, never `Err`
//!   outside opt-in fail-fast mode);
//! - every surviving slot's rows are bit-identical to an independent
//!   unfused, fault-free run of that query;
//! - every failed slot carries a typed [`BatchQueryError`] whose index
//!   matches its position;
//! - the `batch_query_failures` counter matches the failed-slot count.
//!
//! Writes `CHAOS_report.json` (per-cell outcomes plus aggregate fault
//! counters) and exits nonzero on any violation, printing exact repro
//! instructions for the failing seed.
//!
//! ```sh
//! cargo run -p fusion-bench --release --bin chaos_report
//! CHAOS_SEEDS=16 TPCDS_SCALE=0.1 cargo run -p fusion-bench --release --bin chaos_report
//! ```
//!
//! To reproduce a single failing cell, re-run with the printed
//! `CHAOS_SEED_BASE` and `CHAOS_SEEDS=1`, or drive the equivalent
//! proptest case via `PROPTEST_SEED` on `cargo test -p fusion-engine
//! --test chaos`.

use std::fmt::Write as _;

use fusion_bench::Harness;
use fusion_engine::{BatchStage, Session};
use fusion_exec::{FaultPolicy, ReuseFaultRates};
use fusion_tpcds::all_queries;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<T>().ok())
        .unwrap_or(default)
}

fn sql_of(id: &str) -> String {
    all_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("no corpus query named {id}"))
        .sql
}

/// Seed-derived fault schedule: each site draws off / flaky / certain
/// from a splitmix64-style mix so seeds cover the grid deterministically.
fn schedule(seed: u64) -> (f64, ReuseFaultRates) {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let pick = |salt: u64| [0.0, 0.3, 1.0][(mix(seed ^ salt) % 3) as usize];
    let scan = [0.0, 0.05, 0.15][(mix(seed ^ 0x5ca9) % 3) as usize];
    (
        scan,
        ReuseFaultRates {
            shared_exec: pick(0x1111),
            splice: pick(0x2222),
            cache_admit: pick(0x3333),
            cache_lookup: pick(0x4444),
            cache_corrupt: pick(0x5555),
        },
    )
}

struct Cell {
    seed: u64,
    fused: bool,
    workers: usize,
    poisoned: bool,
    survived: usize,
    failed: usize,
    detached: u64,
    poison_evictions: u64,
    breaker_trips: u64,
    violations: Vec<String>,
}

fn run_cell(
    seed: u64,
    fused: bool,
    workers: usize,
    scale: f64,
    refs: &[&str],
    expected: &[Vec<Vec<fusion_common::Value>>],
) -> Cell {
    let (scan_rate, rates) = schedule(seed);
    let mut s = chaos_session(scale, fused, workers);
    let mut policy = FaultPolicy::transient(seed, scan_rate).with_reuse_faults(rates);
    // A third of the matrix poisons a partition of `item`: the control
    // query (C42) must then fail with a typed error in its own slot
    // while the INTRO pair — which never reads `item` — still survives.
    let poisoned = seed.is_multiple_of(3);
    if poisoned {
        policy = policy.with_poison("item", 0);
    }
    s.set_fault_policy(policy);

    let mut cell = Cell {
        seed,
        fused,
        workers,
        poisoned,
        survived: 0,
        failed: 0,
        detached: 0,
        poison_evictions: 0,
        breaker_trips: 0,
        violations: Vec::new(),
    };

    for round in 0..2 {
        let batch = match s.run_batch(refs) {
            Ok(b) => b,
            Err(e) => {
                cell.violations
                    .push(format!("round {round}: batch-level error leaked: {e}"));
                return cell;
            }
        };
        if batch.results.len() != refs.len() {
            cell.violations.push(format!(
                "round {round}: {} slots for {} queries",
                batch.results.len(),
                refs.len()
            ));
            return cell;
        }
        for (i, slot) in batch.results.iter().enumerate() {
            match slot {
                Ok(r) => {
                    cell.survived += 1;
                    if r.sorted_rows() != expected[i] {
                        cell.violations.push(format!(
                            "round {round} query {i}: rows diverged from independent run"
                        ));
                    }
                }
                Err(e) => {
                    cell.failed += 1;
                    if e.query != i {
                        cell.violations.push(format!(
                            "round {round} query {i}: error indexed as query {}",
                            e.query
                        ));
                    }
                    if e.stage != BatchStage::Execute {
                        cell.violations.push(format!(
                            "round {round} query {i}: plannable query failed at {:?}",
                            e.stage
                        ));
                    }
                }
            }
        }
        if poisoned {
            if batch.results[2].is_ok() {
                cell.violations.push(format!(
                    "round {round}: poisoned control query returned rows instead of failing"
                ));
            }
            for i in [0usize, 1] {
                if batch.results[i].is_err() {
                    cell.violations.push(format!(
                        "round {round}: poison on `item` leaked into query {i} \
                         (reads only customer/store_sales)"
                    ));
                }
            }
        }
        let failures = batch.failures().count() as u64;
        if batch.metrics.batch_query_failures != failures {
            cell.violations.push(format!(
                "round {round}: batch_query_failures={} but {} failed slots",
                batch.metrics.batch_query_failures, failures
            ));
        }
        cell.detached += batch.metrics.consumers_detached;
        cell.poison_evictions += batch.metrics.cache_poison_evictions;
        cell.breaker_trips += batch.metrics.circuit_breaker_trips;
    }
    cell
}

fn chaos_session(scale: f64, fused: bool, workers: usize) -> Session {
    if fused {
        Harness::session(scale, |s| s.set_parallelism(workers))
    } else {
        // Harness::session always builds a fused session; mirror it for
        // the baseline optimizer by hand.
        let cfg = fusion_tpcds::TpcdsConfig::with_scale(scale);
        let mut s = Session::baseline();
        for table in fusion_tpcds::generate_catalog(&cfg).into_tables() {
            s.register_table(table);
        }
        s.set_parallelism(workers);
        s
    }
}

fn main() {
    let scale: f64 = env_or("TPCDS_SCALE", 0.05);
    let seeds: u64 = env_or("CHAOS_SEEDS", 8);
    let seed_base: u64 = env_or("CHAOS_SEED_BASE", 0xC4A0);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CHAOS_report.json".into());

    let sqls = [sql_of("INTRO"), sql_of("INTRO"), sql_of("C42")];
    let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();

    eprintln!(
        "# chaos_report: scale {scale}, {seeds} seeds from base {seed_base:#x}, \
         fused+baseline x 1/4 workers, 2 rounds per cell"
    );

    // Ground truth once per worker count: independent unfused fault-free
    // runs (worker count can legally reorder ties, so compare per-config).
    let mut cells: Vec<Cell> = Vec::new();
    for &workers in &[1usize, 4] {
        let mut reference = chaos_session(scale, false, workers);
        reference.set_reuse_enabled(false);
        let expected: Vec<_> = refs.iter().map(|q| {
            reference
                .sql(q)
                .unwrap_or_else(|e| panic!("reference run failed: {e}"))
                .sorted_rows()
        }).collect();
        for &fused in &[true, false] {
            for i in 0..seeds {
                cells.push(run_cell(
                    seed_base.wrapping_add(i),
                    fused,
                    workers,
                    scale,
                    &refs,
                    &expected,
                ));
            }
        }
    }

    let total_violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"scale\": {scale},").unwrap();
    writeln!(json, "  \"seeds\": {seeds},").unwrap();
    writeln!(json, "  \"seed_base\": {seed_base},").unwrap();
    writeln!(json, "  \"queries\": [\"INTRO\", \"INTRO\", \"C42\"],").unwrap();
    writeln!(json, "  \"rounds_per_cell\": 2,").unwrap();
    writeln!(json, "  \"violations\": {total_violations},").unwrap();
    writeln!(json, "  \"cells\": [").unwrap();
    for (ci, c) in cells.iter().enumerate() {
        let (scan_rate, rates) = schedule(c.seed);
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"seed\": {},", c.seed).unwrap();
        writeln!(json, "      \"fused\": {},", c.fused).unwrap();
        writeln!(json, "      \"workers\": {},", c.workers).unwrap();
        writeln!(json, "      \"poisoned_partition\": {},", c.poisoned).unwrap();
        writeln!(json, "      \"scan_fault_rate\": {scan_rate},").unwrap();
        writeln!(
            json,
            "      \"reuse_fault_rates\": {{\"shared_exec\": {}, \"splice\": {}, \
             \"cache_admit\": {}, \"cache_lookup\": {}, \"cache_corrupt\": {}}},",
            rates.shared_exec, rates.splice, rates.cache_admit, rates.cache_lookup,
            rates.cache_corrupt
        )
        .unwrap();
        writeln!(json, "      \"slots_survived\": {},", c.survived).unwrap();
        writeln!(json, "      \"slots_failed_typed\": {},", c.failed).unwrap();
        writeln!(json, "      \"consumers_detached\": {},", c.detached).unwrap();
        writeln!(json, "      \"cache_poison_evictions\": {},", c.poison_evictions).unwrap();
        writeln!(json, "      \"circuit_breaker_trips\": {},", c.breaker_trips).unwrap();
        writeln!(
            json,
            "      \"violations\": [{}]",
            c.violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", ")
        )
        .unwrap();
        writeln!(json, "    }}{}", if ci + 1 < cells.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write CHAOS_report.json");
    eprintln!("# wrote {out_path} ({} cells)", cells.len());

    let survived: usize = cells.iter().map(|c| c.survived).sum();
    let failed: usize = cells.iter().map(|c| c.failed).sum();
    eprintln!(
        "# slots: {survived} survived bit-identical, {failed} failed with typed errors; \
         detached {} consumers, evicted {} poisoned entries, tripped {} breakers",
        cells.iter().map(|c| c.detached).sum::<u64>(),
        cells.iter().map(|c| c.poison_evictions).sum::<u64>(),
        cells.iter().map(|c| c.breaker_trips).sum::<u64>(),
    );

    if total_violations == 0 {
        eprintln!("# isolation contract held on every cell");
    } else {
        eprintln!("# ISOLATION VIOLATIONS:");
        for c in cells.iter().filter(|c| !c.violations.is_empty()) {
            for v in &c.violations {
                eprintln!(
                    "#   seed {} fused={} workers={}: {v}",
                    c.seed, c.fused, c.workers
                );
            }
            eprintln!(
                "#   repro: CHAOS_SEED_BASE={} CHAOS_SEEDS=1 TPCDS_SCALE={scale} \
                 cargo run -p fusion-bench --release --bin chaos_report",
                c.seed
            );
        }
        std::process::exit(1);
    }
}
