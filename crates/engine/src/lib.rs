//! End-to-end engine facade.
//!
//! A [`Session`] owns a table catalog, a column-id generator and an
//! optimizer configuration, and runs the full pipeline:
//!
//! ```text
//! SQL ──parse──▶ AST ──plan──▶ LogicalPlan ──optimize──▶ LogicalPlan ──execute──▶ rows + metrics
//! ```
//!
//! The session can be configured with fusion on (default) or off (the
//! paper's baseline), which is all the benchmark harness needs to
//! reproduce the Section V experiments.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fusion_common::{DataType, Field, FusionError, IdGen, Result, Schema, Value};
use fusion_core::{Optimizer, OptimizerConfig, OptimizerReport};
use fusion_exec::metrics::MetricsSnapshot;
use fusion_exec::profile::{annotation, OpProfile};
use fusion_exec::{
    execute_plan_profiled, CancelToken, Catalog, ExecContext, ExecMetrics, FaultPolicy,
    QueryProfile, RetryPolicy, Table,
};
use fusion_plan::LogicalPlan;
use fusion_reuse::{ReuseConfig, ReuseManager, WorkloadOutcome, WorkloadReport};
use fusion_sql::{plan_query, SchemaProvider, Statement, TableSchema};

pub mod admission;
pub use admission::{Admitted, AdmissionConfig, AdmissionQueue, TenantId};

/// A configured engine instance.
pub struct Session {
    catalog: Catalog,
    gen: IdGen,
    config: OptimizerConfig,
    /// Simulated working-memory budget (bytes); crossing it during
    /// execution counts spills in the metrics (the §V.C effect).
    memory_budget: Option<u64>,
    /// Enforced working-memory budget (bytes); crossing it aborts the
    /// query with [`FusionError::ResourceExhausted`] instead of counting
    /// a simulated spill.
    enforced_budget: Option<usize>,
    /// Per-execution-attempt wall-clock limit.
    timeout: Option<Duration>,
    fault_policy: FaultPolicy,
    retry_policy: RetryPolicy,
    cancel: CancelToken,
    /// Worker threads for morsel-parallel operators (1 = sequential).
    parallelism: usize,
    /// Whether scan→filter→project(→aggregate) chains compile to
    /// push-based fused pipelines instead of batch-at-a-time operators.
    pipelines: bool,
    /// Profile of the last query this session executed, for the bench
    /// harness ([`Session::last_profile`]).
    last_profile: Mutex<Option<QueryProfile>>,
    /// Workload-level reuse: plan fingerprinting, cross-query fusion and
    /// the shared-subplan cache ([`Session::run_batch`]).
    reuse: ReuseManager,
    /// Whether batches exploit cross-query reuse and single queries
    /// consult the shared-subplan cache.
    reuse_enabled: bool,
    /// Opt-in all-or-nothing batches: the first per-query failure aborts
    /// the whole batch instead of landing in that query's slot.
    batch_fail_fast: bool,
    /// Admission queue for deferred batch execution
    /// ([`Session::enqueue`] / [`Session::run_queued`]): a one-tenant
    /// view of the same [`admission::AdmissionQueue`] the multi-tenant
    /// service dispatches windows from.
    queue: admission::AdmissionQueue<String>,
}

/// Default session parallelism: the `FUSION_PARALLELISM` environment
/// variable when set to a positive integer, else 1 (sequential). Lets CI
/// run the whole suite with the parallel operators engaged.
fn env_parallelism() -> usize {
    std::env::var("FUSION_PARALLELISM")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Default pipeline mode: on unless the `FUSION_PIPELINES` environment
/// variable is set to `0`, `false`, or `off`. Lets CI run the whole
/// suite on the batch-at-a-time path to prove both paths agree.
fn env_pipelines() -> bool {
    !matches!(
        std::env::var("FUSION_PIPELINES")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str(),
        "0" | "false" | "off"
    )
}

/// Everything a query run produces.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
    pub metrics: MetricsSnapshot,
    pub latency: Duration,
    /// The plan before optimization (after SQL planning).
    pub initial_plan: LogicalPlan,
    /// The plan that actually ran.
    pub optimized_plan: LogicalPlan,
    pub report: OptimizerReport,
    /// Per-operator execution profile of the plan that ran. `None` only
    /// for `EXPLAIN` (without `ANALYZE`), which does not execute.
    pub profile: Option<QueryProfile>,
}

impl QueryResult {
    /// Result rows in canonical (sorted) order for comparisons.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Whether the fused plan failed and the rows came from the unfused
    /// baseline instead (the reason is in `report.fallback`).
    pub fn degraded(&self) -> bool {
        self.report.fallback.is_some()
    }

    /// Whether this query consumed a shared subplan (cross-query fusion
    /// or a shared-subplan cache hit).
    pub fn reused(&self) -> bool {
        !self.report.reuse.is_empty()
    }
}

/// Which pipeline stage a batched query failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStage {
    /// SQL parsing / logical planning.
    Plan,
    /// Optimization or execution (after any fallback attempt).
    Execute,
}

/// A typed per-slot failure in a batch: the query at `query` failed while
/// every other query in the batch kept running (see
/// [`Session::run_batch`]).
#[derive(Debug, Clone)]
pub struct BatchQueryError {
    /// Index of the failed query, in submission order.
    pub query: usize,
    /// Where in the pipeline it failed.
    pub stage: BatchStage,
    /// The underlying error, with its stable `FUSION_*` code intact.
    pub error: FusionError,
}

impl std::fmt::Display for BatchQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.stage {
            BatchStage::Plan => "planning",
            BatchStage::Execute => "execution",
        };
        write!(f, "query {} failed during {stage}: {}", self.query, self.error)
    }
}

/// Everything a batch run produces ([`Session::run_batch`]).
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One slot per submitted query, in submission order. Each query is
    /// its own fault domain: a slot holds either the query's result or
    /// the typed error that took *that query* down — never the batch.
    ///
    /// The `metrics` embedded in each successful result are that query's
    /// **deltas** of the shared batch sink (counters accumulated between
    /// the query starting and finishing, with `peak_state_bytes` carrying
    /// the batch high-water mark). Work done once for the whole batch —
    /// shared subplan executions, cache admissions — happens before the
    /// first query runs and is attributed only to the batch-level
    /// [`BatchResult::metrics`], which is the authoritative total.
    pub results: Vec<std::result::Result<QueryResult, BatchQueryError>>,
    /// Batch-wide metrics, snapshotted only after every query finished
    /// (completion-only semantics).
    pub metrics: MetricsSnapshot,
    /// Per-group reuse accounting: which subplans were shared, by which
    /// queries, whether fusion or the cache served them.
    pub report: WorkloadReport,
}

impl BatchResult {
    /// The result of query `i`, if it succeeded.
    pub fn query(&self, i: usize) -> Option<&QueryResult> {
        self.results.get(i).and_then(|r| r.as_ref().ok())
    }

    /// The error of query `i`, if it failed.
    pub fn error(&self, i: usize) -> Option<&BatchQueryError> {
        self.results.get(i).and_then(|r| r.as_ref().err())
    }

    /// Successful queries with their submission indices, in order.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &QueryResult)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| Some((i, r.as_ref().ok()?)))
    }

    /// The failed slots, in submission order.
    pub fn failures(&self) -> impl Iterator<Item = &BatchQueryError> {
        self.results.iter().filter_map(|r| r.as_ref().err())
    }

    /// Whether every query in the batch succeeded.
    pub fn all_succeeded(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }
}

impl Session {
    pub fn new() -> Self {
        Session {
            catalog: Catalog::new(),
            gen: IdGen::new(),
            config: OptimizerConfig::default(),
            memory_budget: None,
            enforced_budget: None,
            timeout: None,
            fault_policy: FaultPolicy::default(),
            retry_policy: RetryPolicy::default(),
            cancel: CancelToken::new(),
            parallelism: env_parallelism(),
            pipelines: env_pipelines(),
            last_profile: Mutex::new(None),
            reuse: ReuseManager::default(),
            reuse_enabled: true,
            batch_fail_fast: false,
            queue: admission::AdmissionQueue::new(admission::AdmissionConfig::unbounded()),
        }
    }

    /// A session with the paper's baseline configuration (fusion off).
    pub fn baseline() -> Self {
        let mut s = Session::new();
        s.config = OptimizerConfig::baseline();
        s
    }

    /// Simulate a working-memory budget: executions whose materialized
    /// operator state crosses it record spills in the result metrics.
    pub fn set_memory_budget(&mut self, bytes: Option<u64>) {
        self.memory_budget = bytes;
    }

    /// *Enforce* a working-memory budget: an execution whose materialized
    /// operator state would cross it aborts with
    /// [`FusionError::ResourceExhausted`]. Independent of the simulated
    /// (spill-counting) budget above.
    pub fn set_enforced_memory_budget(&mut self, bytes: Option<usize>) {
        self.enforced_budget = bytes;
    }

    /// Wall-clock limit per execution attempt; an attempt running past it
    /// fails with [`FusionError::DeadlineExceeded`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Fault schedule applied to every table scan this session runs.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = policy;
    }

    /// Retry/backoff behavior for transient scan failures.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The token that cancels queries run by this session. Cancellation is
    /// sticky: once cancelled, every later query fails immediately.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Number of worker threads granted to morsel-parallel operators
    /// (scans of partitioned tables, partitioned aggregate and join
    /// builds). `1` (the default) keeps execution fully sequential.
    /// Initialized from the `FUSION_PARALLELISM` environment variable
    /// when set, so a whole test suite can be forced parallel.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Enable or disable push-based fused pipelines for this session's
    /// queries. On by default; initialized from the `FUSION_PIPELINES`
    /// environment variable (`0`/`false`/`off` disables), so a whole test
    /// suite can be forced onto the batch-at-a-time path. Both paths are
    /// bit-identical by contract — this knob exists for benchmarking and
    /// for proving that contract in CI.
    pub fn set_pipelines_enabled(&mut self, enabled: bool) {
        self.pipelines = enabled;
    }

    pub fn pipelines_enabled(&self) -> bool {
        self.pipelines
    }

    fn fresh_metrics(&self) -> Arc<ExecMetrics> {
        match self.memory_budget {
            Some(b) => ExecMetrics::with_budget(b),
            None => ExecMetrics::new(),
        }
    }

    fn exec_context(&self, metrics: &Arc<ExecMetrics>) -> Arc<ExecContext> {
        let mut b = ExecContext::builder(metrics.clone())
            .cancel_token(self.cancel.clone())
            .fault_policy(self.fault_policy.clone())
            .retry_policy(self.retry_policy.clone())
            .parallelism(self.parallelism)
            .pipelines(self.pipelines);
        if let Some(t) = self.timeout {
            b = b.timeout(t);
        }
        if let Some(bytes) = self.enforced_budget {
            b = b.hard_budget(bytes);
        }
        b.build()
    }

    pub fn with_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    pub fn set_config(&mut self, config: OptimizerConfig) {
        self.config = config;
    }

    pub fn set_fusion_enabled(&mut self, enabled: bool) {
        self.config.enable_fusion = enabled;
    }

    pub fn fusion_enabled(&self) -> bool {
        self.config.enable_fusion
    }

    pub fn register_table(&mut self, table: Table) {
        self.catalog.register(table);
    }

    /// Append rows to an existing table as one new partition. Bumps the
    /// table's catalog version — like re-registration — but records
    /// append lineage, so cached shared-subplan results over maintainable
    /// shapes are *refreshed in place* over just these rows at their next
    /// lookup instead of being evicted. Returns the new table version.
    pub fn append_table(&mut self, name: &str, rows: Vec<Vec<Value>>) -> Result<u64> {
        let table = self.catalog.get(name)?;
        let partition = table.partition_from_rows(rows)?;
        self.catalog.append(name, vec![partition])
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn id_gen(&self) -> &IdGen {
        &self.gen
    }

    /// Parse and plan a SQL query (no optimization, no execution).
    pub fn plan_sql(&self, sql: &str) -> Result<LogicalPlan> {
        let ast = fusion_sql::parse(sql)?;
        plan_query(&ast, &CatalogProvider(&self.catalog), &self.gen)
    }

    /// Optimize a plan with this session's configuration.
    pub fn optimize(&self, plan: &LogicalPlan) -> (LogicalPlan, OptimizerReport) {
        let optimizer = Optimizer::new(self.gen.clone(), self.config.clone());
        optimizer.optimize(plan)
    }

    /// Full pipeline: parse, plan, optimize, execute.
    ///
    /// `EXPLAIN <query>` returns the optimized plan and the optimizer
    /// trace as rows (one line per row, single `plan` column) without
    /// executing. `EXPLAIN ANALYZE <query>` executes the query and
    /// annotates every operator with its profile (rows, batches,
    /// timings, peak state).
    pub fn sql(&self, sql: &str) -> Result<QueryResult> {
        match fusion_sql::parse_statement(sql)? {
            Statement::Query(ast) => {
                let initial_plan = plan_query(&ast, &CatalogProvider(&self.catalog), &self.gen)?;
                self.run_plan(initial_plan)
            }
            Statement::Explain { analyze, query } => {
                let initial_plan = plan_query(&query, &CatalogProvider(&self.catalog), &self.gen)?;
                if analyze {
                    self.explain_analyze_plan(initial_plan)
                } else {
                    self.explain_plan(initial_plan)
                }
            }
        }
    }

    /// `EXPLAIN`: optimize only, render the plan plus the optimizer
    /// trace. No execution happens, so `profile` is `None`.
    fn explain_plan(&self, initial_plan: LogicalPlan) -> Result<QueryResult> {
        let start = Instant::now();
        let (optimized_plan, report) = self.optimize(&initial_plan);
        let mut text = optimized_plan.display();
        push_trace_sections(&mut text, &report, None);
        Ok(QueryResult {
            schema: self.plan_text_schema(),
            rows: text_rows(&text),
            metrics: self.fresh_metrics().snapshot(),
            latency: start.elapsed(),
            initial_plan,
            optimized_plan,
            report,
            profile: None,
        })
    }

    /// `EXPLAIN ANALYZE`: run the query, then render the plan that
    /// actually ran with each operator annotated from its profile.
    fn explain_analyze_plan(&self, initial_plan: LogicalPlan) -> Result<QueryResult> {
        let result = self.run_plan(initial_plan)?;
        let mut text = match &result.profile {
            Some(profile) => {
                // `op_id` is allocated in the same pre-order walk
                // `display_annotated` numbers nodes with, so the flat
                // profile indexes directly by annotation position.
                let flat = flatten_profile(&profile.root);
                result.optimized_plan.display_annotated(|idx, _| {
                    flat.iter()
                        .find(|p| p.op_id == idx as u64)
                        .map(|p| annotation(p, true))
                })
            }
            None => result.optimized_plan.display(),
        };
        push_trace_sections(&mut text, &result.report, Some(&result.metrics));
        Ok(QueryResult {
            schema: self.plan_text_schema(),
            rows: text_rows(&text),
            ..result
        })
    }

    /// Single-column schema for EXPLAIN output rows.
    fn plan_text_schema(&self) -> Schema {
        Schema::new(vec![Field::new(
            self.gen.fresh(),
            "plan",
            DataType::Utf8,
            false,
        )])
    }

    /// Profile of the most recent query this session executed, as
    /// captured by [`fusion_exec::execute_plan_profiled`]. `None` until
    /// the first successful execution. The bench harness serializes this
    /// via [`QueryProfile::to_json`].
    pub fn last_profile(&self) -> Option<QueryProfile> {
        self.last_profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn store_profile(&self, profile: &QueryProfile) {
        *self
            .last_profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(profile.clone());
    }

    /// Optimize and execute an already-built logical plan.
    ///
    /// Degrades gracefully: if the optimized plan fails post-optimization
    /// validation or dies during execution with an error that
    /// [`FusionError::allows_fallback`], and fusion was enabled, the query
    /// is re-optimized with fusion off and re-executed as the baseline
    /// plan. The fallback is recorded in `report.fallback` and counted in
    /// the metrics, which accumulate across both attempts (the failed
    /// fused work was really performed).
    pub fn run_plan(&self, initial_plan: LogicalPlan) -> Result<QueryResult> {
        let metrics = self.fresh_metrics();
        let (exec_plan, reuse_notes) = if self.reuse_enabled {
            self.reuse
                .apply_cache(&initial_plan, &self.catalog, &self.fault_policy, &metrics)
        } else {
            (initial_plan.clone(), Vec::new())
        };
        self.run_plan_inner(initial_plan, exec_plan, metrics, reuse_notes)
    }

    /// Shared tail of [`Session::run_plan`] and [`Session::run_batch_plans`]:
    /// optimize `exec_plan` (the possibly reuse-rewritten form of
    /// `initial_plan`), execute it, and fall back to the unfused baseline
    /// of the *original* plan on recoverable failure — so a bad splice or
    /// a bad fusion can never be the final word on a query.
    fn run_plan_inner(
        &self,
        initial_plan: LogicalPlan,
        exec_plan: LogicalPlan,
        metrics: Arc<ExecMetrics>,
        reuse_notes: Vec<String>,
    ) -> Result<QueryResult> {
        let reused = !reuse_notes.is_empty();
        let (optimized_plan, mut report) = self.optimize(&exec_plan);
        report.reuse = reuse_notes;
        let start = Instant::now();
        let attempt = match &report.validation_error {
            Some(msg) => Err(FusionError::Internal(format!(
                "optimized plan failed validation: {msg}"
            ))),
            None => {
                execute_plan_profiled(&optimized_plan, &self.catalog, &self.exec_context(&metrics))
            }
        };
        let failure = match attempt {
            Ok((out, profile)) => {
                self.store_profile(&profile);
                return Ok(QueryResult {
                    schema: out.schema,
                    rows: out.rows,
                    metrics: metrics.snapshot(),
                    latency: start.elapsed(),
                    initial_plan,
                    optimized_plan,
                    report,
                    profile: Some(profile),
                });
            }
            Err(e) if (self.config.enable_fusion || reused) && e.allows_fallback() => e,
            Err(e) => return Err(e),
        };

        metrics.add_fallback();
        report.fallback = Some(format!("{}: {failure}", failure.code()));
        let mut cfg = self.config.clone();
        cfg.enable_fusion = false;
        let (base_plan, base_report) = Optimizer::new(self.gen.clone(), cfg).optimize(&initial_plan);
        if let Some(msg) = &base_report.validation_error {
            return Err(FusionError::Internal(format!(
                "baseline plan failed validation during fallback: {msg}"
            )));
        }
        let (out, profile) =
            execute_plan_profiled(&base_plan, &self.catalog, &self.exec_context(&metrics))?;
        self.store_profile(&profile);
        Ok(QueryResult {
            schema: out.schema,
            rows: out.rows,
            metrics: metrics.snapshot(),
            latency: start.elapsed(),
            initial_plan,
            optimized_plan: base_plan,
            report,
            profile: Some(profile),
        })
    }

    /// Run a batch of concurrent queries with workload-level reuse: parse
    /// and plan each query, detect subplans shared across the batch
    /// (exact fingerprint matches and `Fuse`-able near-matches), execute
    /// each shared subplan **once**, and rewrite every consumer to read
    /// the materialized rows through its compensating filter and column
    /// mapping. Results are bit-identical to running each query alone.
    ///
    /// Each query is its own fault domain: a query that fails — bad SQL,
    /// an injected fault, a blown deadline or budget — lands as a typed
    /// [`BatchQueryError`] in its slot of [`BatchResult::results`] while
    /// every other query completes. The pre-isolation all-or-nothing
    /// behavior is opt-in via [`Session::set_batch_fail_fast`].
    ///
    /// Shared executions surface as `shared_subplans_executed` in the
    /// batch metrics; cached servings as `reuse_cache_hits`; per-query
    /// failures as `batch_query_failures`.
    pub fn run_batch(&self, sqls: &[&str]) -> Result<BatchResult> {
        let mut slots = Vec::with_capacity(sqls.len());
        for (i, sql) in sqls.iter().enumerate() {
            match self.plan_sql(sql) {
                Ok(plan) => slots.push(Ok(plan)),
                Err(error) => {
                    if self.batch_fail_fast {
                        return Err(error);
                    }
                    slots.push(Err(BatchQueryError {
                        query: i,
                        stage: BatchStage::Plan,
                        error,
                    }));
                }
            }
        }
        self.run_batch_slots(slots)
    }

    /// [`Session::run_batch`] over already-planned queries.
    pub fn run_batch_plans(&self, plans: Vec<LogicalPlan>) -> Result<BatchResult> {
        self.run_batch_slots(plans.into_iter().map(Ok).collect())
    }

    /// Shared tail of the batch paths: run the plannable slots with
    /// workload reuse, confining every failure to its own slot.
    fn run_batch_slots(
        &self,
        slots: Vec<std::result::Result<LogicalPlan, BatchQueryError>>,
    ) -> Result<BatchResult> {
        let metrics = self.fresh_metrics();
        metrics.add_queries_batched(slots.len() as u64);
        for slot in &slots {
            if slot.is_err() {
                metrics.add_batch_query_failure();
            }
        }
        let plans: Vec<LogicalPlan> = slots.iter().filter_map(|s| s.as_ref().ok().cloned()).collect();
        let outcome = if self.reuse_enabled {
            let ctx = self.exec_context(&metrics);
            let optimize = |p: &LogicalPlan| self.optimize(p).0;
            self.reuse.plan_batch(
                &plans,
                &self.catalog,
                &ctx,
                &self.gen,
                &metrics,
                Some(&optimize),
            )
        } else {
            WorkloadOutcome {
                plans: plans.clone(),
                notes: vec![Vec::new(); plans.len()],
                rejections: Vec::new(),
                report: WorkloadReport::default(),
            }
        };
        // Uncertified reuse rewrites already reverted to cold execution
        // (the batch stays correct); under FUSION_ANALYZE=strict a
        // certificate rejection is a hard error on the whole batch, the
        // same contract strict mode applies to analyzer violations.
        if fusion_core::analysis::strict_from_env() && !outcome.rejections.is_empty() {
            return Err(FusionError::Internal(format!(
                "FUSION_ANALYZE=strict: {} reuse rewrite(s) failed certification: {}",
                outcome.rejections.len(),
                outcome.rejections.join("; "),
            )));
        }
        let mut rewritten = outcome.plans.into_iter().zip(outcome.notes);
        let mut results = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            let initial = match slot {
                Ok(plan) => plan,
                Err(e) => {
                    results.push(Err(e));
                    continue;
                }
            };
            let Some((exec, notes)) = rewritten.next() else {
                // plan_workload returns one plan per input by contract;
                // running the original unshared keeps the query correct
                // even if that contract is ever broken.
                results.push(Err(BatchQueryError {
                    query: i,
                    stage: BatchStage::Execute,
                    error: FusionError::Internal(
                        "workload optimizer dropped a batch slot".into(),
                    ),
                }));
                continue;
            };
            // Per-query metrics are deltas of the shared sink, so a
            // failing or skipped query never smears its counters into a
            // neighbor's result.
            let before = metrics.snapshot();
            match self.run_plan_inner(initial, exec, Arc::clone(&metrics), notes) {
                Ok(mut r) => {
                    r.metrics = r.metrics.delta_since(&before);
                    results.push(Ok(r));
                }
                Err(error) => {
                    metrics.add_batch_query_failure();
                    if self.batch_fail_fast {
                        return Err(error);
                    }
                    results.push(Err(BatchQueryError {
                        query: i,
                        stage: BatchStage::Execute,
                        error,
                    }));
                }
            }
        }
        Ok(BatchResult {
            results,
            metrics: metrics.snapshot(),
            report: outcome.report,
        })
    }

    /// Restore the pre-isolation all-or-nothing batch contract: the first
    /// planning or execution failure aborts the whole batch with `Err`
    /// instead of landing in that query's slot.
    pub fn set_batch_fail_fast(&mut self, enabled: bool) {
        self.batch_fail_fast = enabled;
    }

    pub fn batch_fail_fast(&self) -> bool {
        self.batch_fail_fast
    }

    /// Queue a query for deferred batch execution. Queued queries run
    /// together — and share work — when [`Session::run_queued`] drains
    /// the queue. Thin one-tenant wrapper over the same
    /// [`admission::AdmissionQueue`] the multi-tenant service uses; the
    /// session queue is unbounded and never closed, so admission cannot
    /// fail here.
    pub fn enqueue(&self, sql: impl Into<String>) {
        let admitted = self.queue.admit(admission::TenantId::local(), sql.into());
        debug_assert!(admitted.is_ok(), "unbounded session queue rejected a query");
    }

    /// Number of queries waiting in the admission queue.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Drain the admission queue and run everything in it as one batch.
    /// The queue is emptied even if planning fails partway (a malformed
    /// query does not wedge the queue).
    pub fn run_queued(&self) -> Result<BatchResult> {
        let sqls: Vec<String> = self
            .queue
            .drain_all()
            .into_iter()
            .map(|e| e.payload)
            .collect();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        self.run_batch(&refs)
    }

    /// Enable or disable workload reuse (cross-query fusion in batches
    /// and shared-subplan cache consultation for single queries).
    /// Independent of [`Session::set_fusion_enabled`], which governs
    /// intra-query fusion.
    pub fn set_reuse_enabled(&mut self, enabled: bool) {
        self.reuse_enabled = enabled;
    }

    pub fn reuse_enabled(&self) -> bool {
        self.reuse_enabled
    }

    /// Replace the reuse configuration (drops the current cache).
    pub fn set_reuse_config(&mut self, cfg: ReuseConfig) {
        self.reuse = ReuseManager::new(cfg);
    }

    /// Live entries in the shared-subplan cache.
    pub fn reuse_cache_len(&self) -> usize {
        self.reuse.cache_len()
    }

    /// Dependency stamps of every live cache entry (tests/diagnostics).
    pub fn reuse_cache_entry_deps(&self) -> Vec<Vec<(String, u64)>> {
        self.reuse.cache_entry_deps()
    }

    /// Drop all cached shared-subplan results and observation counts.
    pub fn clear_reuse_cache(&self) {
        self.reuse.clear_cache();
    }

    /// Render the optimized plan for a SQL query (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let plan = self.plan_sql(sql)?;
        let (optimized, _) = self.optimize(&plan);
        Ok(optimized.display())
    }

    /// Run `EXPLAIN ANALYZE <sql>` and return the rendered text directly
    /// (convenience over [`Session::sql`] with an `EXPLAIN ANALYZE`
    /// prefix).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let initial_plan = self.plan_sql(sql)?;
        let result = self.explain_analyze_plan(initial_plan)?;
        Ok(result
            .rows
            .iter()
            .filter_map(|r| match r.first() {
                Some(Value::Utf8(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join("\n"))
    }
}

/// Append the optimizer-trace, workload-reuse and fallback sections to
/// EXPLAIN output. `metrics` is the execution snapshot for `EXPLAIN
/// ANALYZE` (plain `EXPLAIN` does not execute and passes `None`); any
/// nonzero fault-domain counter is rendered under `-- workload reuse --`.
fn push_trace_sections(text: &mut String, report: &OptimizerReport, metrics: Option<&MetricsSnapshot>) {
    let trace = report.trace.render();
    if !trace.is_empty() {
        text.push_str("-- optimizer trace --\n");
        text.push_str(&trace);
    }
    let faults = metrics.filter(|m| {
        m.batch_query_failures
            + m.shared_group_failures
            + m.consumers_detached
            + m.cache_poison_evictions
            + m.circuit_breaker_trips
            > 0
    });
    let warm = metrics.filter(|m| m.reuse_cache_refreshes + m.subsumption_hits > 0);
    let certs = metrics.filter(|m| {
        m.reuse_certificates_issued + m.reuse_certificates_rejected > 0
    });
    if !report.reuse.is_empty() || faults.is_some() || warm.is_some() || certs.is_some() {
        text.push_str("-- workload reuse --\n");
        for note in &report.reuse {
            text.push_str(note);
            text.push('\n');
        }
        if let Some(m) = warm {
            text.push_str(&format!(
                "incremental reuse: reuse_cache_refreshes={} subsumption_hits={}\n",
                m.reuse_cache_refreshes, m.subsumption_hits,
            ));
        }
        if let Some(m) = certs {
            text.push_str(&format!(
                "reuse prover: certificates_issued={} certificates_rejected={}\n",
                m.reuse_certificates_issued, m.reuse_certificates_rejected,
            ));
        }
        if let Some(m) = faults {
            text.push_str(&format!(
                "fault domains: batch_query_failures={} shared_group_failures={} \
                 consumers_detached={} cache_poison_evictions={} circuit_breaker_trips={}\n",
                m.batch_query_failures,
                m.shared_group_failures,
                m.consumers_detached,
                m.cache_poison_evictions,
                m.circuit_breaker_trips,
            ));
        }
    }
    if let Some(m) = metrics.filter(|m| m.pipelines_compiled > 0) {
        text.push_str("-- pipelines --\n");
        text.push_str(&format!(
            "pipelines_compiled={} batches_elided={} rows_evaluated_vectorized={}\n",
            m.pipelines_compiled, m.batches_elided, m.rows_evaluated_vectorized,
        ));
    }
    if let Some(fallback) = &report.fallback {
        text.push_str("-- fallback --\n");
        text.push_str(fallback);
        text.push('\n');
    }
}

/// One `Value::Utf8` row per line of rendered EXPLAIN text.
fn text_rows(text: &str) -> Vec<Vec<Value>> {
    text.lines().map(|l| vec![Value::Utf8(l.into())]).collect()
}

/// Flatten a profile tree pre-order (the same order `op_id` was
/// allocated in during compilation).
fn flatten_profile(root: &OpProfile) -> Vec<&OpProfile> {
    fn walk<'a>(p: &'a OpProfile, out: &mut Vec<&'a OpProfile>) {
        out.push(p);
        for c in &p.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// Adapts the executor catalog to the SQL planner's schema interface.
struct CatalogProvider<'a>(&'a Catalog);

impl SchemaProvider for CatalogProvider<'_> {
    fn table_schema(&self, name: &str) -> Option<TableSchema> {
        let table = self.0.get(name).ok()?;
        Some(TableSchema {
            columns: table
                .columns
                .iter()
                .map(|c| (c.name.clone(), c.data_type, c.nullable))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_common::DataType;
    use fusion_exec::table::TableColumn;
    use fusion_exec::TableBuilder;

    fn session() -> Session {
        let mut s = Session::new();
        let mut b = TableBuilder::new(
            "orders",
            vec![
                TableColumn {
                    name: "o_id".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "o_cust".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
                TableColumn {
                    name: "o_total".into(),
                    data_type: DataType::Float64,
                    nullable: true,
                },
            ],
        );
        for i in 0..20i64 {
            b.add_row(vec![
                Value::Int64(i),
                Value::Int64(i % 4),
                Value::Float64((i % 7) as f64 * 10.0),
            ])
            .unwrap();
        }
        s.register_table(b.build());
        s
    }

    /// Like [`session`] but with `orders` partitioned on `o_id` into
    /// blocks of five rows (4 partitions over 20 rows).
    fn partitioned_session() -> Session {
        let mut s = Session::new();
        let mut b = TableBuilder::new(
            "orders",
            vec![
                TableColumn {
                    name: "o_id".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "o_total".into(),
                    data_type: DataType::Float64,
                    nullable: true,
                },
            ],
        )
        .partition_by("o_id", 5)
        .unwrap();
        for i in 0..20i64 {
            b.add_row(vec![Value::Int64(i), Value::Float64((i % 7) as f64 * 10.0)])
                .unwrap();
        }
        s.register_table(b.build());
        s
    }

    #[test]
    fn basic_sql_round_trip() {
        let s = session();
        let r = s
            .sql("SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust ORDER BY o_cust")
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.schema.field(0).name, "o_cust");
        assert!(r.metrics.bytes_scanned > 0);
    }

    #[test]
    fn cte_union_query_fuses() {
        let s = session();
        let sql = "WITH cte AS (SELECT o_id, o_cust, o_total FROM orders) \
                   SELECT o_id FROM cte WHERE o_cust = 1 \
                   UNION ALL SELECT o_id FROM cte WHERE o_total > 30";
        let r = s.sql(sql).unwrap();
        assert!(r.report.fusion_applied, "fusion should fire on the CTE union");
        assert_eq!(r.optimized_plan.scanned_tables().len(), 1);

        // Baseline produces identical results while scanning twice.
        let mut base = session();
        base.set_fusion_enabled(false);
        let rb = base.sql(sql).unwrap();
        assert_eq!(rb.initial_plan.scanned_tables().len(), 2);
        assert_eq!(r.sorted_rows(), rb.sorted_rows());
        assert!(r.metrics.bytes_scanned < rb.metrics.bytes_scanned);
    }

    #[test]
    fn explain_renders_plan() {
        let s = session();
        let text = s.explain("SELECT o_id FROM orders WHERE o_id > 5").unwrap();
        assert!(text.contains("Scan: orders"));
    }

    #[test]
    fn explain_statement_returns_plan_rows_without_executing() {
        let s = session();
        let r = s.sql("EXPLAIN SELECT o_id FROM orders WHERE o_id > 5").unwrap();
        assert_eq!(r.schema.fields().len(), 1);
        assert_eq!(r.schema.field(0).name, "plan");
        assert!(r.profile.is_none(), "EXPLAIN must not execute");
        assert!(s.last_profile().is_none());
        let text = explain_text(&r);
        assert!(text.contains("Scan: orders"), "plan body present: {text}");
        assert!(
            text.contains("-- optimizer trace --"),
            "trace section present: {text}"
        );
    }

    #[test]
    fn explain_analyze_annotates_operators_with_profile() {
        let s = session();
        let sql = "WITH cte AS (SELECT o_id, o_cust, o_total FROM orders) \
                   SELECT o_id FROM cte WHERE o_cust = 1 \
                   UNION ALL SELECT o_id FROM cte WHERE o_total > 30";
        let r = s.sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let profile = r.profile.as_ref().expect("EXPLAIN ANALYZE executes");
        let text = explain_text(&r);
        assert!(text.contains("[id=0"), "root operator annotated: {text}");
        assert!(text.contains("rows_out="), "row counts rendered: {text}");
        assert!(text.contains("wall_ms="), "timings rendered: {text}");
        assert!(
            text.contains("[fuse] Fuse("),
            "fuse attempts traced: {text}"
        );
        // The scan feeding the fused plan really counted its rows. Its
        // rows_out is post-pushdown (the fused disjunctive filter runs
        // inside the scan), so just require it to be nonzero and no
        // larger than the table.
        let counts = profile.row_counts();
        let scan = counts
            .iter()
            .find(|(_, label, _, _)| label.starts_with("Scan"))
            .expect("profile includes the scan");
        assert!(scan.3 > 0 && scan.3 <= 20, "scan row count sane: {scan:?}");
    }

    #[test]
    fn last_profile_round_trips_through_json() {
        use fusion_exec::QueryProfile;
        let s = session();
        s.sql("SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust")
            .unwrap();
        let profile = s.last_profile().expect("execution stored a profile");
        let json = profile.to_json();
        let parsed = QueryProfile::from_json(&json).unwrap();
        assert_eq!(parsed, profile, "profile JSON round-trips");
    }

    #[test]
    fn explain_analyze_reports_fallback_cause() {
        use fusion_exec::FaultPolicy;
        let sql = "WITH cte AS (SELECT o_id, o_total FROM orders) \
                   SELECT o_id FROM cte WHERE o_id < 5 \
                   UNION ALL SELECT o_id FROM cte WHERE o_id >= 15";
        let mut s = partitioned_session();
        s.set_fault_policy(FaultPolicy::default().with_poison("orders", 2));
        let r = s.sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        assert!(r.degraded());
        let text = explain_text(&r);
        assert!(
            text.contains("-- fallback --") && text.contains("FUSION_DATA_CORRUPTION"),
            "fallback section carries the stable code: {text}"
        );
        // The profile describes the baseline plan that actually ran.
        assert!(r.profile.is_some());
    }

    /// Reassemble EXPLAIN output rows into one string.
    fn explain_text(r: &QueryResult) -> String {
        r.rows
            .iter()
            .filter_map(|row| match row.first() {
                Some(Value::Utf8(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The degradation scenario the fault model is built for: the fused
    /// plan scans *more* partitions than either baseline branch (the
    /// shared scan's pushed filter is a disjunction, which cannot prune),
    /// so a poisoned middle partition kills only the fused attempt. The
    /// session falls back to the baseline plan, whose per-branch filters
    /// prune the poison away, and still returns correct rows.
    #[test]
    fn poisoned_partition_degrades_to_baseline() {
        use fusion_exec::FaultPolicy;
        let sql = "WITH cte AS (SELECT o_id, o_total FROM orders) \
                   SELECT o_id FROM cte WHERE o_id < 5 \
                   UNION ALL SELECT o_id FROM cte WHERE o_id >= 15";
        let expected = partitioned_session().sql(sql).unwrap();
        assert!(!expected.degraded());
        assert_eq!(expected.rows.len(), 10);

        let mut s = partitioned_session();
        // Partition 2 holds o_id 10..15 — touched by neither branch.
        s.set_fault_policy(FaultPolicy::default().with_poison("orders", 2));
        let r = s.sql(sql).unwrap();
        assert!(r.degraded(), "fused plan must fall back: {:?}", r.report);
        let reason = r.report.fallback.as_ref().unwrap();
        assert!(
            reason.contains("FUSION_DATA_CORRUPTION"),
            "fallback reason carries the stable code: {reason}"
        );
        assert_eq!(r.metrics.fallbacks, 1);
        assert_eq!(r.sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn cancelled_session_fails_without_fallback() {
        use fusion_common::FusionError;
        let s = session();
        s.cancel_token().cancel();
        match s.sql("SELECT o_id FROM orders") {
            Err(FusionError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn run_batch_shares_identical_subplans() {
        let s = session();
        let sql = "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust";
        let single = s.sql(sql).unwrap();
        let batch = s.run_batch(&[sql, sql]).unwrap();
        assert_eq!(batch.results.len(), 2);
        assert!(batch.all_succeeded());
        for (_, r) in batch.successes() {
            assert_eq!(r.sorted_rows(), single.sorted_rows());
            assert!(r.reused(), "reuse notes: {:?}", r.report.reuse);
        }
        assert_eq!(batch.metrics.queries_batched, 2);
        assert_eq!(batch.metrics.shared_subplans_executed, 1);
        assert_eq!(batch.report.shared_executions(), 1);
        assert_eq!(batch.report.consumers_spliced(), 2);
    }

    #[test]
    fn admission_queue_drains_as_one_batch() {
        let s = session();
        let sql = "SELECT o_id FROM orders WHERE o_total > 30";
        s.enqueue(sql);
        s.enqueue(sql);
        assert_eq!(s.queued_len(), 2);
        let batch = s.run_queued().unwrap();
        assert_eq!(s.queued_len(), 0);
        assert_eq!(batch.results.len(), 2);
        assert_eq!(batch.metrics.queries_batched, 2);
        assert_eq!(
            batch.query(0).unwrap().sorted_rows(),
            batch.query(1).unwrap().sorted_rows()
        );
    }

    #[test]
    fn reuse_cache_serves_single_query_after_batch() {
        let s = session();
        let sql = "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust";
        let batch = s.run_batch(&[sql, sql]).unwrap();
        assert!(batch.metrics.shared_subplans_executed >= 1);
        assert!(s.reuse_cache_len() >= 1, "batch admitted the shared result");
        // A later single query hits the warm cache: no bytes scanned.
        let r = s.sql(sql).unwrap();
        assert_eq!(r.sorted_rows(), batch.query(0).unwrap().sorted_rows());
        assert!(r.reused(), "reuse notes: {:?}", r.report.reuse);
        assert_eq!(r.metrics.reuse_cache_hits, 1);
        assert_eq!(r.metrics.bytes_scanned, 0, "served from cache, no scan");
    }

    #[test]
    fn correlated_subquery_decorrelates_and_windows() {
        let s = session();
        let sql = "SELECT o_id FROM orders o1 \
                   WHERE o1.o_total > (SELECT AVG(o2.o_total) FROM orders o2 \
                                       WHERE o2.o_cust = o1.o_cust)";
        let r = s.sql(sql).unwrap();
        // GroupByJoinToWindow should eliminate the second scan.
        assert!(r.report.fusion_applied);
        assert_eq!(r.optimized_plan.scanned_tables().len(), 1);

        let mut base = session();
        base.set_fusion_enabled(false);
        let rb = base.sql(sql).unwrap();
        assert_eq!(r.sorted_rows(), rb.sorted_rows());
        assert!(!r.rows.is_empty());
    }
}
