//! Simple streaming operators: Filter, Project, Limit, UnionAll,
//! ConstantTable, EnforceSingleRow.
//!
//! Every operator that pulls from an input carries an [`ExecContext`] and
//! calls [`ExecContext::check`] at chunk boundaries, so cancellation and
//! deadlines are observed even in pipelines whose leaves are cheap
//! (`ConstantTableExec`, the only context-free operator here, is a
//! one-shot literal).

use std::sync::Arc;

use fusion_common::{FusionError, Result, Schema, Value};
use fusion_expr::Expr;

use crate::context::{ExecContext, IntoContext};
use crate::ops::{drain, BoxedOp, Operator, RowIndex};
use crate::{Chunk, Row};

/// Keep rows where the predicate is TRUE.
pub struct FilterExec {
    input: BoxedOp,
    predicate: Expr,
    index: RowIndex,
    schema: Schema,
    ctx: Arc<ExecContext>,
}

impl FilterExec {
    pub fn new(input: BoxedOp, predicate: Expr, ctx: impl IntoContext) -> Self {
        let schema = input.schema().clone();
        let index = RowIndex::new(&schema);
        FilterExec {
            input,
            predicate,
            index,
            schema,
            ctx: ctx.into_ctx(),
        }
    }
}

impl Operator for FilterExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        while let Some(chunk) = self.input.next_chunk()? {
            self.ctx.check()?;
            let mut out = Vec::with_capacity(chunk.len());
            for row in chunk {
                if self.index.eval_pred(&self.predicate, &row)? {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// A compiled projection expression: bare column references become direct
/// positional copies (CTE expansion produces long pass-through
/// projections, so this fast path matters).
enum CompiledExpr {
    /// Bare column reference. The *last* projection reading a given input
    /// position (`take: true`) moves the value out of the input row
    /// instead of cloning it; earlier readers of the same position clone.
    Position { pos: usize, take: bool },
    Eval(Expr),
}

/// Evaluate projection expressions per row. Bare column references reuse
/// the input row's buffers (values are moved, not cloned), and a
/// projection that is exactly the identity passes chunks through
/// untouched.
pub struct ProjectExec {
    input: BoxedOp,
    exprs: Vec<CompiledExpr>,
    /// True when the projection is position 0..n over an n-wide input —
    /// chunks are forwarded as-is.
    identity: bool,
    index: RowIndex,
    schema: Schema,
    ctx: Arc<ExecContext>,
}

impl ProjectExec {
    pub fn new(
        input: BoxedOp,
        exprs: Vec<Expr>,
        schema: Schema,
        ctx: impl IntoContext,
    ) -> Self {
        let index = RowIndex::new(input.schema());
        let input_width = input.schema().fields().len();
        let mut exprs: Vec<CompiledExpr> = exprs
            .into_iter()
            .map(|e| match &e {
                Expr::Column(id) => match index.position(*id) {
                    Ok(pos) => CompiledExpr::Position { pos, take: false },
                    Err(_) => CompiledExpr::Eval(e),
                },
                _ => CompiledExpr::Eval(e),
            })
            .collect();
        // Mark the last reader of each input position: it may move the
        // value out of the input row instead of cloning it.
        let mut taken = vec![false; input_width];
        for e in exprs.iter_mut().rev() {
            if let CompiledExpr::Position { pos, take } = e {
                if !taken[*pos] {
                    taken[*pos] = true;
                    *take = true;
                }
            }
        }
        let identity = exprs.len() == input_width
            && exprs
                .iter()
                .enumerate()
                .all(|(i, e)| matches!(e, CompiledExpr::Position { pos, .. } if *pos == i));
        ProjectExec {
            input,
            exprs,
            identity,
            index,
            schema,
            ctx: ctx.into_ctx(),
        }
    }
}

impl Operator for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        match self.input.next_chunk()? {
            None => Ok(None),
            Some(chunk) => {
                self.ctx.check()?;
                if self.identity {
                    // Pure pass-through: no per-row work at all.
                    return Ok(Some(chunk));
                }
                let mut out = Vec::with_capacity(chunk.len());
                for mut row in chunk {
                    // Computed expressions first, while the row is intact;
                    // then bare columns, the last reader of each position
                    // moving the value out instead of cloning.
                    let mut evaluated = Vec::new();
                    for e in &self.exprs {
                        if let CompiledExpr::Eval(expr) = e {
                            evaluated.push(self.index.eval(expr, &row)?);
                        }
                    }
                    let mut evaluated = evaluated.into_iter();
                    let mut new_row = Vec::with_capacity(self.exprs.len());
                    for e in &self.exprs {
                        new_row.push(match e {
                            CompiledExpr::Position { pos, take: true } => {
                                std::mem::replace(&mut row[*pos], Value::Null)
                            }
                            CompiledExpr::Position { pos, take: false } => row[*pos].clone(),
                            CompiledExpr::Eval(_) => evaluated
                                .next()
                                .unwrap_or(Value::Null),
                        });
                    }
                    out.push(new_row);
                }
                Ok(Some(out))
            }
        }
    }
}

/// Stop after `fetch` rows.
pub struct LimitExec {
    input: BoxedOp,
    remaining: usize,
    schema: Schema,
    ctx: Arc<ExecContext>,
}

impl LimitExec {
    pub fn new(input: BoxedOp, fetch: usize, ctx: impl IntoContext) -> Self {
        let schema = input.schema().clone();
        LimitExec {
            input,
            remaining: fetch,
            schema,
            ctx: ctx.into_ctx(),
        }
    }
}

impl Operator for LimitExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.ctx.check()?;
        match self.input.next_chunk()? {
            None => Ok(None),
            Some(mut chunk) => {
                if chunk.len() > self.remaining {
                    chunk.truncate(self.remaining);
                }
                self.remaining -= chunk.len();
                Ok(Some(chunk))
            }
        }
    }
}

/// Concatenate the inputs, in order.
pub struct UnionAllExec {
    inputs: Vec<BoxedOp>,
    current: usize,
    schema: Schema,
    ctx: Arc<ExecContext>,
}

impl UnionAllExec {
    pub fn new(inputs: Vec<BoxedOp>, schema: Schema, ctx: impl IntoContext) -> Self {
        UnionAllExec {
            inputs,
            current: 0,
            schema,
            ctx: ctx.into_ctx(),
        }
    }
}

impl Operator for UnionAllExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        while self.current < self.inputs.len() {
            self.ctx.check()?;
            if let Some(chunk) = self.inputs[self.current].next_chunk()? {
                return Ok(Some(chunk));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

/// Emit an inline constant relation once.
pub struct ConstantTableExec {
    rows: Option<Vec<Row>>,
    schema: Schema,
}

impl ConstantTableExec {
    pub fn new(rows: Vec<Row>, schema: Schema) -> Self {
        ConstantTableExec {
            rows: Some(rows),
            schema,
        }
    }
}

impl Operator for ConstantTableExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        match self.rows.take() {
            Some(rows) if !rows.is_empty() => Ok(Some(rows)),
            _ => Ok(None),
        }
    }
}

/// Enforce scalar-subquery cardinality: exactly one row passes through;
/// zero rows produce a single all-NULL row (SQL scalar subquery
/// semantics); more than one row fails the query.
pub struct EnforceSingleRowExec {
    input: BoxedOp,
    schema: Schema,
    done: bool,
    ctx: Arc<ExecContext>,
}

impl EnforceSingleRowExec {
    pub fn new(input: BoxedOp, ctx: impl IntoContext) -> Self {
        let schema = input.schema().clone();
        EnforceSingleRowExec {
            input,
            schema,
            done: false,
            ctx: ctx.into_ctx(),
        }
    }
}

impl Operator for EnforceSingleRowExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        self.ctx.check()?;
        let rows = drain(self.input.as_mut())?;
        match rows.len() {
            0 => Ok(Some(vec![vec![Value::Null; self.schema.len()]])),
            1 => Ok(Some(rows)),
            n => Err(FusionError::SingleRowViolation(n)),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use fusion_common::{ColumnId, DataType, Field};
    use fusion_expr::{col, lit};

    fn one_col_schema(id: u32) -> Schema {
        Schema::new(vec![Field::new(ColumnId(id), "x", DataType::Int64, false)])
    }

    fn source(id: u32, values: &[i64]) -> BoxedOp {
        Box::new(ConstantTableExec::new(
            values.iter().map(|v| vec![Value::Int64(*v)]).collect(),
            one_col_schema(id),
        ))
    }

    #[test]
    fn filter_keeps_true_rows() {
        let mut f = FilterExec::new(
            source(1, &[1, 5, 10]),
            col(ColumnId(1)).gt(lit(4i64)),
            ExecMetrics::new(),
        );
        let rows = drain(&mut f).unwrap();
        assert_eq!(rows, vec![vec![Value::Int64(5)], vec![Value::Int64(10)]]);
    }

    #[test]
    fn project_computes_expressions() {
        let schema = Schema::new(vec![Field::new(ColumnId(9), "y", DataType::Int64, false)]);
        let mut p = ProjectExec::new(
            source(1, &[1, 2]),
            vec![col(ColumnId(1)).add(lit(10i64))],
            schema,
            ExecMetrics::new(),
        );
        let rows = drain(&mut p).unwrap();
        assert_eq!(rows, vec![vec![Value::Int64(11)], vec![Value::Int64(12)]]);
    }

    #[test]
    fn project_identity_passes_chunks_through() {
        let mut p = ProjectExec::new(
            source(1, &[1, 2, 3]),
            vec![col(ColumnId(1))],
            one_col_schema(1),
            ExecMetrics::new(),
        );
        assert!(p.identity);
        let rows = drain(&mut p).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1)],
                vec![Value::Int64(2)],
                vec![Value::Int64(3)]
            ]
        );
    }

    #[test]
    fn project_duplicated_column_clones_then_moves() {
        // The same input position projected twice: the first occurrence
        // clones, the last takes — both must see the original value, and
        // a computed expression over the column must too.
        let schema = Schema::new(vec![
            Field::new(ColumnId(7), "a", DataType::Int64, false),
            Field::new(ColumnId(8), "b", DataType::Int64, false),
            Field::new(ColumnId(9), "c", DataType::Int64, false),
        ]);
        let mut p = ProjectExec::new(
            source(1, &[5]),
            vec![
                col(ColumnId(1)),
                col(ColumnId(1)),
                col(ColumnId(1)).add(lit(1i64)),
            ],
            schema,
            ExecMetrics::new(),
        );
        assert!(!p.identity);
        let rows = drain(&mut p).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int64(5), Value::Int64(5), Value::Int64(6)]]
        );
    }

    #[test]
    fn limit_truncates() {
        let mut l = LimitExec::new(source(1, &[1, 2, 3, 4]), 2, ExecMetrics::new());
        assert_eq!(drain(&mut l).unwrap().len(), 2);
        let mut l = LimitExec::new(source(1, &[1]), 5, ExecMetrics::new());
        assert_eq!(drain(&mut l).unwrap().len(), 1);
    }

    #[test]
    fn union_concatenates_in_order() {
        let mut u = UnionAllExec::new(
            vec![source(1, &[1]), source(2, &[2, 3])],
            one_col_schema(7),
            ExecMetrics::new(),
        );
        let rows = drain(&mut u).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int64(1)]);
        assert_eq!(rows[2], vec![Value::Int64(3)]);
    }

    #[test]
    fn enforce_single_row_semantics() {
        let mut ok = EnforceSingleRowExec::new(source(1, &[42]), ExecMetrics::new());
        assert_eq!(drain(&mut ok).unwrap(), vec![vec![Value::Int64(42)]]);

        let mut empty = EnforceSingleRowExec::new(source(1, &[]), ExecMetrics::new());
        assert_eq!(drain(&mut empty).unwrap(), vec![vec![Value::Null]]);

        let mut many = EnforceSingleRowExec::new(source(1, &[1, 2]), ExecMetrics::new());
        assert!(matches!(
            drain(&mut many),
            Err(FusionError::SingleRowViolation(2))
        ));
    }

    #[test]
    fn cancelled_context_stops_the_pipeline() {
        let ctx = ExecContext::builder(ExecMetrics::new()).build();
        ctx.cancel_token().cancel();
        let mut f = FilterExec::new(
            source(1, &[1, 5, 10]),
            col(ColumnId(1)).gt(lit(0i64)),
            ctx,
        );
        assert_eq!(drain(&mut f), Err(FusionError::Cancelled));
    }
}
