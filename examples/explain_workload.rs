// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Print the baseline and fused plans for every workload query —
//! a quick way to inspect what each optimization rule does.
//!
//! With `ANALYZE=1` the queries are *executed* and each plan line is
//! annotated with its operator's profile (rows, batches, wall/CPU time,
//! peak state), plus the optimizer trace.
//!
//! ```sh
//! cargo run --example explain_workload [QUERY_ID]
//! ANALYZE=1 cargo run --release --example explain_workload Q88
//! ```

use fusion_engine::Session;
use fusion_tpcds::{all_queries, generate_catalog, TpcdsConfig};

fn main() {
    let filter = std::env::args().nth(1);
    let cfg = TpcdsConfig::with_scale(0.05);
    let mut fused = Session::new();
    for t in generate_catalog(&cfg).into_tables() {
        fused.register_table(t);
    }
    let mut baseline = Session::baseline();
    for t in generate_catalog(&cfg).into_tables() {
        baseline.register_table(t);
    }

    for q in all_queries() {
        if let Some(f) = &filter {
            if !q.id.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        println!("==================== {} ({}) ====================", q.id, q.family);
        if std::env::var_os("ANALYZE").is_some() {
            match (
                baseline.explain_analyze(&q.sql),
                fused.explain_analyze(&q.sql),
            ) {
                (Ok(b), Ok(f)) => {
                    println!("-- baseline (analyzed) --\n{b}\n");
                    println!("-- fused (analyzed) --\n{f}\n");
                }
                (Err(e), _) | (_, Err(e)) => println!("error: {e}\n"),
            }
            continue;
        }
        match (baseline.explain(&q.sql), fused.explain(&q.sql)) {
            (Ok(b), Ok(f)) => {
                println!("-- baseline --\n{b}");
                if b == f {
                    println!("-- fused: plan unchanged (not applicable) --\n");
                } else {
                    println!("-- fused --\n{f}");
                }
            }
            (Err(e), _) | (_, Err(e)) => println!("error: {e}\n"),
        }
    }
}
