//! Compilation of logical plans into streaming operator trees.

use std::sync::Arc;

use fusion_common::{Field, FusionError, Result, Schema};
use fusion_plan::{JoinType, LogicalPlan};

use crate::context::ExecContext;
use crate::metrics::ExecMetrics;
use crate::ops::agg::{HashAggregateExec, ParallelHashAggregateExec, WindowExec};
use crate::ops::basic::{
    ConstantTableExec, EnforceSingleRowExec, FilterExec, LimitExec, ProjectExec, UnionAllExec,
};
use crate::ops::distinct::MarkDistinctExec;
use crate::ops::exchange::GatherExec;
use crate::ops::join::{split_join_condition, CrossJoinExec, HashJoinExec, NestedLoopJoinExec};
use crate::ops::scan::{ScanExec, ScanFragment};
use crate::ops::sort::SortExec;
use crate::ops::{drain, BoxedOp};
use crate::profile::{OpSpan, ProfileNode, QueryProfile, SpannedOp};
use crate::table::Catalog;
use crate::Row;

/// The result of running a query: output schema and materialized rows.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl QueryOutput {
    /// Rows sorted by total value order — canonical form for comparing
    /// result multisets across plans.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// Compile a logical plan into an operator tree with an unbounded
/// [`ExecContext`] (no deadline, budget, or fault injection).
pub fn compile(
    plan: &LogicalPlan,
    catalog: &Catalog,
    metrics: &Arc<ExecMetrics>,
) -> Result<BoxedOp> {
    compile_ctx(plan, catalog, &ExecContext::new(metrics.clone()))
}

/// Compile a logical plan into an operator tree under an explicit
/// execution context; every operator in the tree shares it.
pub fn compile_ctx(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
) -> Result<BoxedOp> {
    Ok(compile_profiled(plan, catalog, ctx)?.0)
}

/// Compile a logical plan into an instrumented operator tree plus the
/// live [`ProfileNode`] tree that mirrors it.
///
/// Every operator gets a stable `op_id` — its pre-order index over the
/// logical plan, matching the line order of `plan::display` — and a
/// shared [`OpSpan`] metering rows, batches, wall/CPU time, and peak
/// state. Capture the profile with [`QueryProfile::capture`] only after
/// the operator tree has been dropped (workers joined).
pub fn compile_profiled(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
) -> Result<(BoxedOp, ProfileNode)> {
    let mut next_id = 0usize;
    compile_node(plan, catalog, ctx, &mut next_id)
}

/// Attach the span to the operator (for state/CPU accounting it does
/// itself) and wrap it so rows out, batches, and inclusive wall time are
/// metered on every `next_chunk`.
pub(crate) fn spanned(mut op: BoxedOp, span: &Arc<OpSpan>) -> BoxedOp {
    op.attach_span(span.clone());
    Box::new(SpannedOp::new(op, span.clone()))
}

fn profile_node(
    op_id: usize,
    plan: &LogicalPlan,
    span: Arc<OpSpan>,
    inlined: bool,
    children: Vec<ProfileNode>,
) -> ProfileNode {
    ProfileNode {
        op_id,
        label: plan.node_label(),
        span,
        inlined,
        children,
    }
}

fn compile_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
    next: &mut usize,
) -> Result<(BoxedOp, ProfileNode)> {
    // Pipelineable chains compile to a single push-based operator; the
    // compiler claims the same pre-order ids either way.
    if let Some(compiled) = crate::pipeline::try_compile(plan, catalog, ctx, next)? {
        return Ok(compiled);
    }
    // Pre-order id: the node claims its id before its children compile,
    // in `children()` order — the same walk `display_annotated` uses.
    let op_id = *next;
    *next += 1;
    let span = Arc::new(OpSpan::default());
    let schema = plan.schema();
    match plan {
        LogicalPlan::Scan(s) => {
            let (fragment, workers) = scan_fragment(catalog, ctx, s, schema, span.clone())?;
            let op: BoxedOp = if workers > 1 {
                Box::new(GatherExec::new(fragment, workers))
            } else {
                Box::new(ScanExec::from_fragment(fragment))
            };
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![]),
            ))
        }
        LogicalPlan::Filter(f) => {
            let (input, child) = compile_node(&f.input, catalog, ctx, next)?;
            let op = Box::new(FilterExec::new(input, f.predicate.clone(), ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::Project(p) => {
            let (input, child) = compile_node(&p.input, catalog, ctx, next)?;
            let exprs = p.exprs.iter().map(|pe| pe.expr.clone()).collect();
            let op = Box::new(ProjectExec::new(input, exprs, schema, ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::Join(j) => {
            let (left, left_node) = compile_node(&j.left, catalog, ctx, next)?;
            match j.join_type {
                JoinType::Cross => {
                    let (right, right_node) = compile_node(&j.right, catalog, ctx, next)?;
                    let op = Box::new(CrossJoinExec::new(left, right, schema, ctx.clone()));
                    Ok((
                        spanned(op, &span),
                        profile_node(op_id, plan, span, false, vec![left_node, right_node]),
                    ))
                }
                jt => {
                    // Equi-join whose build side is a plain scan of a
                    // multi-partition table: build the hash table
                    // morsel-parallel straight from the fragment.
                    if let LogicalPlan::Scan(s) = &*j.right {
                        let right_schema = j.right.schema();
                        let (keys, residual) =
                            split_join_condition(&j.condition, left.schema(), &right_schema);
                        if !keys.is_empty() {
                            let right_id = *next;
                            *next += 1;
                            let right_span = Arc::new(OpSpan::default());
                            let (fragment, workers) = scan_fragment(
                                catalog,
                                ctx,
                                s,
                                right_schema,
                                right_span.clone(),
                            )?;
                            if workers > 1 {
                                // The scan is inlined into the parallel
                                // build: no wrapping operator, so its
                                // profile node reads the fragment-side
                                // counters.
                                let right_node = profile_node(
                                    right_id,
                                    &j.right,
                                    right_span,
                                    true,
                                    vec![],
                                );
                                let op = Box::new(HashJoinExec::with_parallel_build(
                                    left,
                                    fragment,
                                    workers,
                                    jt,
                                    keys,
                                    residual,
                                    schema,
                                    ctx.clone(),
                                ));
                                return Ok((
                                    spanned(op, &span),
                                    profile_node(
                                        op_id,
                                        plan,
                                        span,
                                        false,
                                        vec![left_node, right_node],
                                    ),
                                ));
                            }
                            let right_node = profile_node(
                                right_id,
                                &j.right,
                                right_span.clone(),
                                false,
                                vec![],
                            );
                            let right_op = spanned(
                                Box::new(ScanExec::from_fragment(fragment)),
                                &right_span,
                            );
                            let op = Box::new(HashJoinExec::new(
                                left,
                                right_op,
                                jt,
                                keys,
                                residual,
                                schema,
                                ctx.clone(),
                            ));
                            return Ok((
                                spanned(op, &span),
                                profile_node(
                                    op_id,
                                    plan,
                                    span,
                                    false,
                                    vec![left_node, right_node],
                                ),
                            ));
                        }
                    }
                    let (right, right_node) = compile_node(&j.right, catalog, ctx, next)?;
                    let (keys, residual) =
                        split_join_condition(&j.condition, left.schema(), right.schema());
                    let op: BoxedOp = if keys.is_empty() {
                        Box::new(NestedLoopJoinExec::new(
                            left,
                            right,
                            jt,
                            j.condition.clone(),
                            schema,
                            ctx.clone(),
                        ))
                    } else {
                        Box::new(HashJoinExec::new(
                            left,
                            right,
                            jt,
                            keys,
                            residual,
                            schema,
                            ctx.clone(),
                        ))
                    };
                    Ok((
                        spanned(op, &span),
                        profile_node(op_id, plan, span, false, vec![left_node, right_node]),
                    ))
                }
            }
        }
        LogicalPlan::Aggregate(a) => {
            // Aggregation directly over a multi-partition scan runs
            // morsel-parallel: per-partition partial group tables merged
            // in partition order.
            if let LogicalPlan::Scan(s) = &*a.input {
                let scan_id = *next;
                *next += 1;
                let scan_span = Arc::new(OpSpan::default());
                let scan_schema = a.input.schema();
                let (fragment, workers) =
                    scan_fragment(catalog, ctx, s, scan_schema.clone(), scan_span.clone())?;
                let group_positions = a
                    .group_by
                    .iter()
                    .map(|id| {
                        scan_schema.index_of(*id).ok_or_else(|| {
                            FusionError::Plan(format!("group-by column {id} missing from input"))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let aggregates = a.aggregates.iter().map(|x| x.agg.clone()).collect();
                if workers > 1 {
                    let scan_node =
                        profile_node(scan_id, &a.input, scan_span, true, vec![]);
                    let op = Box::new(ParallelHashAggregateExec::new(
                        fragment,
                        group_positions,
                        aggregates,
                        schema,
                        workers,
                    )?);
                    return Ok((
                        spanned(op, &span),
                        profile_node(op_id, plan, span, false, vec![scan_node]),
                    ));
                }
                let scan_node =
                    profile_node(scan_id, &a.input, scan_span.clone(), false, vec![]);
                let scan_op =
                    spanned(Box::new(ScanExec::from_fragment(fragment)), &scan_span);
                let op = Box::new(HashAggregateExec::new(
                    scan_op,
                    group_positions,
                    aggregates,
                    schema,
                    ctx.clone(),
                )?);
                return Ok((
                    spanned(op, &span),
                    profile_node(op_id, plan, span, false, vec![scan_node]),
                ));
            }
            let (input, child) = compile_node(&a.input, catalog, ctx, next)?;
            let input_schema = input.schema();
            let group_positions = a
                .group_by
                .iter()
                .map(|id| {
                    input_schema.index_of(*id).ok_or_else(|| {
                        FusionError::Plan(format!("group-by column {id} missing from input"))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let aggregates = a.aggregates.iter().map(|x| x.agg.clone()).collect();
            let op = Box::new(HashAggregateExec::new(
                input,
                group_positions,
                aggregates,
                schema,
                ctx.clone(),
            )?);
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::Window(w) => {
            let (input, child) = compile_node(&w.input, catalog, ctx, next)?;
            let exprs = w.exprs.iter().map(|x| x.window.clone()).collect();
            let op = Box::new(WindowExec::new(input, exprs, schema, ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::MarkDistinct(m) => {
            let (input, child) = compile_node(&m.input, catalog, ctx, next)?;
            let op = Box::new(MarkDistinctExec::new(
                input,
                &m.columns,
                m.mask.clone(),
                schema,
                ctx.clone(),
            )?);
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::UnionAll(u) => {
            let mut inputs = Vec::with_capacity(u.inputs.len());
            let mut children = Vec::with_capacity(u.inputs.len());
            for i in &u.inputs {
                let (op, node) = compile_node(i, catalog, ctx, next)?;
                inputs.push(op);
                children.push(node);
            }
            let op = Box::new(UnionAllExec::new(inputs, schema, ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, children),
            ))
        }
        LogicalPlan::ConstantTable(c) => {
            let op = Box::new(ConstantTableExec::new(c.rows.clone(), schema));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![]),
            ))
        }
        LogicalPlan::EnforceSingleRow(e) => {
            let (input, child) = compile_node(&e.input, catalog, ctx, next)?;
            let op = Box::new(EnforceSingleRowExec::new(input, ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::Sort(s) => {
            let (input, child) = compile_node(&s.input, catalog, ctx, next)?;
            let op = Box::new(SortExec::new(input, s.keys.clone(), ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
        LogicalPlan::Limit(l) => {
            let (input, child) = compile_node(&l.input, catalog, ctx, next)?;
            let op = Box::new(LimitExec::new(input, l.fetch, ctx.clone()));
            Ok((
                spanned(op, &span),
                profile_node(op_id, plan, span, false, vec![child]),
            ))
        }
    }
}

/// Validate a scan node against the catalog and build its
/// [`ScanFragment`], returning the fragment together with the worker
/// count the context grants for its partition count (1 = sequential).
///
/// Validation checks the plan's binding for real: arity (every field
/// needs an ordinal — `zip` would silently truncate a mismatch), ordinal
/// range, and that each bound column's data type matches the base
/// table's. Field *names* may legitimately diverge after rewrites, so
/// they are not checked.
pub(crate) fn scan_fragment(
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
    s: &fusion_plan::plan::Scan,
    schema: Schema,
    span: Arc<OpSpan>,
) -> Result<(Arc<ScanFragment>, usize)> {
    let table = catalog.get(&s.table)?;
    validate_scan_binding(&s.table, &s.fields, &s.column_indices, &table.columns)?;
    let workers = ctx.workers_for(table.partitions.len());
    let mut fragment = ScanFragment::new(
        table,
        s.column_indices.clone(),
        schema,
        s.filters.clone(),
        ctx.clone(),
    );
    fragment.set_span(span);
    Ok((Arc::new(fragment), workers))
}

fn validate_scan_binding(
    table_name: &str,
    fields: &[Field],
    column_indices: &[usize],
    columns: &[crate::table::TableColumn],
) -> Result<()> {
    if fields.len() != column_indices.len() {
        return Err(FusionError::Plan(format!(
            "scan of {table_name}: {} fields bound to {} column ordinals",
            fields.len(),
            column_indices.len()
        )));
    }
    for (field, &ord) in fields.iter().zip(column_indices) {
        if ord >= columns.len() {
            return Err(FusionError::Plan(format!(
                "scan of {table_name}: column ordinal {ord} out of range"
            )));
        }
        let base = &columns[ord];
        if base.data_type != field.data_type {
            return Err(FusionError::Plan(format!(
                "scan of {table_name}: column {} (ordinal {ord}) has type {:?} \
                 but the plan binds it as {:?}",
                base.name, base.data_type, field.data_type
            )));
        }
    }
    Ok(())
}

/// Drain an operator tree into materialized rows.
pub fn collect(mut op: BoxedOp) -> Result<QueryOutput> {
    let schema = op.schema().clone();
    let rows = drain(op.as_mut())?;
    Ok(QueryOutput { schema, rows })
}

/// Compile and run a logical plan end to end with an unbounded context.
pub fn execute_plan(
    plan: &LogicalPlan,
    catalog: &Catalog,
    metrics: &Arc<ExecMetrics>,
) -> Result<QueryOutput> {
    execute_plan_ctx(plan, catalog, &ExecContext::new(metrics.clone()))
}

/// Compile and run a logical plan end to end under an explicit context
/// (deadline, cancellation, enforced budget, fault injection).
pub fn execute_plan_ctx(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
) -> Result<QueryOutput> {
    execute_plan_profiled(plan, catalog, ctx).map(|(out, _)| out)
}

/// Compile and run a logical plan, returning its rows together with the
/// per-operator [`QueryProfile`].
///
/// The profile is captured strictly after [`collect`] returns: `collect`
/// consumes the operator tree, and dropping it joins every morsel
/// worker, so the relaxed span counters are mutually consistent by the
/// time they are read (see `profile` module docs).
pub fn execute_plan_profiled(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<ExecContext>,
) -> Result<(QueryOutput, QueryProfile)> {
    let (op, node) = compile_profiled(plan, catalog, ctx)?;
    let out = collect(op)?;
    ctx.metrics().add_rows_produced(out.rows.len() as u64);
    Ok((out, QueryProfile::capture(&node)))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::table::{TableBuilder, TableColumn};
    use fusion_common::{DataType, IdGen, Value};
    use fusion_expr::{col, lit, AggregateExpr};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "sales",
            vec![
                TableColumn {
                    name: "store".into(),
                    data_type: DataType::Int64,
                    nullable: false,
                },
                TableColumn {
                    name: "amount".into(),
                    data_type: DataType::Int64,
                    nullable: true,
                },
            ],
        );
        for (s, a) in [(1i64, 10i64), (1, 20), (2, 5), (2, 15), (3, 7)] {
            b.add_row(vec![Value::Int64(s), Value::Int64(a)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(b.build());
        c
    }

    fn sales_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("store", DataType::Int64, false),
            ColumnDef::new("amount", DataType::Int64, true),
        ]
    }

    #[test]
    fn end_to_end_filter_aggregate() {
        let catalog = catalog();
        let gen = IdGen::new();
        let b = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let store = b.col("store").unwrap();
        let amount = b.col("amount").unwrap();
        let plan = b
            .filter(col(amount).gt(lit(6i64)))
            .aggregate(
                vec![store],
                vec![("total", AggregateExpr::sum(col(amount)))],
            )
            .build();
        plan.validate().unwrap();
        let out = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(
            out.sorted_rows(),
            vec![
                vec![Value::Int64(1), Value::Int64(30)],
                vec![Value::Int64(2), Value::Int64(15)],
                vec![Value::Int64(3), Value::Int64(7)],
            ]
        );
    }

    #[test]
    fn self_join_reads_table_twice() {
        let catalog = catalog();
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let b = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let ka = a.col("store").unwrap();
        let kb = b.col("store").unwrap();
        let plan = a
            .join(
                b.build(),
                fusion_plan::JoinType::Inner,
                col(ka).eq_to(col(kb)),
            )
            .build();
        let m = ExecMetrics::new();
        let out = execute_plan(&plan, &catalog, &m).unwrap();
        // (2 rows store1)^2 + (2 rows store2)^2 + 1 = 4+4+1
        assert_eq!(out.rows.len(), 9);
        // Streaming engine: the table's bytes are scanned twice.
        assert_eq!(m.rows_scanned(), 10);
    }

    #[test]
    fn union_all_runs_positionally() {
        let catalog = catalog();
        let gen = IdGen::new();
        let a = PlanBuilder::scan(&gen, "sales", &sales_cols());
        let b = PlanBuilder::scan(&gen, "sales", &sales_cols()).build();
        let plan = a.union_all(vec![b]).unwrap().build();
        let out = execute_plan(&plan, &catalog, &ExecMetrics::new()).unwrap();
        assert_eq!(out.rows.len(), 10);
    }
}
