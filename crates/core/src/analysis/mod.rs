//! Semantic plan analysis — the `fusion-analysis` pass.
//!
//! Structural validation (`fusion_plan::validate`) proves a plan is
//! *well-formed*: no dangling column references, boolean predicates,
//! unique ids. It cannot prove a rewrite is *right* — a fusion that emits
//! a type-correct but wrong column mapping, a widened aggregate mask, or
//! a tag dispatch that silently drops a branch all validate cleanly and
//! execute to wrong answers. This module closes that gap with three
//! cooperating pieces:
//!
//! * [`contract::check_fuse_contract`] — checks every raw `Fuse` result
//!   against the paper's §III.A contract (`M` total and type-preserving,
//!   `L`/`R` over `P`'s outputs, reconstruction of both inputs);
//! * [`lattice`] — a bottom-up property derivation (keys, single-row,
//!   functional dependencies, tag domains, outer-join null introduction)
//!   that rules use to statically discharge their preconditions;
//! * [`checks::analyze_plan`] — whole-plan checks (tag dispatch coverage,
//!   domain membership, mask typing) run by the optimizer after every
//!   rule application and on the final plan.
//!
//! Violations carry stable `FUSION_ANALYSIS_*` codes and surface in
//! `OptimizerReport::rejected` and the EXPLAIN optimizer trace; a rewrite
//! that fails analysis is rejected and the optimizer keeps the previous
//! plan, mirroring the structural-validation path.
//!
//! [`mutation::run_self_test`] is the analyzer's own regression suite:
//! seeded corruptions of known-good fused plans (dropped mapping entries,
//! swapped or widened compensations, widened masks, retyped tags) must
//! all be rejected — mutation-killing as a measure of analyzer strength.

pub mod canon;
pub mod checks;
pub mod contract;
pub mod lattice;
pub mod mutation;
pub mod report;
pub mod reuse;

use std::fmt;

use fusion_common::ColumnId;
use fusion_plan::LogicalPlan;

pub use checks::analyze_plan;
pub use contract::check_fuse_contract;
pub use lattice::{props, PlanProps};
pub use mutation::{run_reuse_self_test, run_self_test, MutationReport};
pub use report::{AnalysisReport, QueryAnalysis};
pub use reuse::{
    aggregate_mergeable, certify_exact_splice, certify_fused_splice, certify_maintainability,
    certify_stamps, certify_subsumption, check_maintain_claim, MaintainShape, ReuseCertificate,
};

/// Stable machine-readable analysis violation codes. Like
/// `fusion_common::ErrorCode` these are part of the crate contract: they
/// are matched on by tests and logged by CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisCode {
    /// `M` does not map some `P2` output onto a fused output.
    MappingNotTotal,
    /// `M` maps a column onto one of incompatible type.
    MappingType,
    /// `P1`'s columns do not survive in the fused plan under their ids.
    ReconstructLeft,
    /// `L`/`R` reference columns outside the fused schema.
    CompensationRefs,
    /// `L`/`R` are not boolean over the fused schema.
    CompensationType,
    /// Applying a compensation does not reconstruct the original filter
    /// (swapped or widened `L`/`R`).
    Direction,
    /// Aggregate mask discipline broken (widened or dropped mask).
    Mask,
    /// Fused aggregate changed function, argument or DISTINCT-ness.
    Aggregate,
    /// Grouping keys lost or not provably keys.
    Keys,
    /// Tag dispatch does not cover every branch exactly once, or compares
    /// a tag outside its domain.
    TagDispatch,
    /// A reuse splice (exact or fused) failed certification: encoding or
    /// slot-alignment mismatch, broken mapping, or a compensation that is
    /// not residual-equal to the consumer's predicate.
    ReuseSplice,
    /// A subsumption serve failed certification: cached conjuncts not
    /// carried by the consumer, non-strict containment, differing base
    /// relations, or unrecoverable projected columns.
    ReuseSubsumption,
    /// A cache entry is not maintainable in place under appends (typed
    /// fallback reason: float SUM/AVG/DISTINCT, multi-table, or a
    /// non-append-distributive operator).
    ReuseMaintain,
    /// A cache entry's dependency stamps are non-canonical, stale, or
    /// inconsistent with the plan's scanned tables.
    ReuseStamp,
}

impl AnalysisCode {
    pub fn as_str(&self) -> &'static str {
        match self {
            AnalysisCode::MappingNotTotal => "FUSION_ANALYSIS_MAPPING_NOT_TOTAL",
            AnalysisCode::MappingType => "FUSION_ANALYSIS_MAPPING_TYPE",
            AnalysisCode::ReconstructLeft => "FUSION_ANALYSIS_RECONSTRUCT_LEFT",
            AnalysisCode::CompensationRefs => "FUSION_ANALYSIS_COMP_REFS",
            AnalysisCode::CompensationType => "FUSION_ANALYSIS_COMP_TYPE",
            AnalysisCode::Direction => "FUSION_ANALYSIS_DIRECTION",
            AnalysisCode::Mask => "FUSION_ANALYSIS_MASK",
            AnalysisCode::Aggregate => "FUSION_ANALYSIS_AGGREGATE",
            AnalysisCode::Keys => "FUSION_ANALYSIS_KEYS",
            AnalysisCode::TagDispatch => "FUSION_ANALYSIS_TAG_DISPATCH",
            AnalysisCode::ReuseSplice => "FUSION_ANALYSIS_REUSE_SPLICE",
            AnalysisCode::ReuseSubsumption => "FUSION_ANALYSIS_REUSE_SUBSUMPTION",
            AnalysisCode::ReuseMaintain => "FUSION_ANALYSIS_REUSE_MAINTAIN",
            AnalysisCode::ReuseStamp => "FUSION_ANALYSIS_REUSE_STAMP",
        }
    }
}

impl fmt::Display for AnalysisCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analysis violation: a stable code plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub code: AnalysisCode,
    pub message: String,
}

impl Violation {
    pub fn new(code: AnalysisCode, message: impl Into<String>) -> Self {
        Violation {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Render a violation list as a single error string (`;`-joined).
pub fn render_violations(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Whether `FUSION_ANALYZE=strict` is set: analyzer violations on the
/// *final* optimized plan then fail optimization (triggering the engine's
/// graceful fallback) instead of only rejecting individual rewrites.
pub fn strict_from_env() -> bool {
    std::env::var("FUSION_ANALYZE")
        .map(|v| v.eq_ignore_ascii_case("strict"))
        .unwrap_or(false)
}

/// Statically discharge "these columns are really a distinct key of this
/// plan" via the property lattice.
pub fn plan_has_key(plan: &LogicalPlan, cols: &[ColumnId]) -> bool {
    props(plan).has_key(cols)
}

/// Statically discharge "this plan emits at most one row".
pub fn plan_is_single_row(plan: &LogicalPlan) -> bool {
    props(plan).single_row
}
