//! Shared-subplan result cache — layer 3 of workload reuse.
//!
//! An LRU cache of materialized subplan results keyed by
//! [`Fingerprint`]. Entries remember which base tables (and which
//! catalog *versions* of them) they were computed from, so re-registering
//! a table invalidates every dependent entry at its next lookup.
//!
//! Memory is accounted through the executor's budget machinery: the cache
//! owns an [`ExecContext`] whose hard budget is the configured
//! `max_bytes`, and every entry holds a [`BudgetedReservation`] against
//! it. When an admission would overflow the budget, least-recently-used
//! entries are evicted until the reservation fits (or the cache is empty
//! and the candidate is simply not admitted).
//!
//! Admission is gated on a reuse-frequency heuristic: a fingerprint must
//! have been *observed* at least `admit_min_uses` times. Observations are
//! counted per **successfully served consumer** — a consumer only counts
//! once the shared execution completed, validated, and its splice passed
//! the analyzer — so failed executions and reverted splices never push a
//! fingerprint toward admission. A subplan cleanly shared by two queries
//! still qualifies immediately with the default of 2.
//!
//! Poisoning defenses: a result is only admitted after its execution
//! finished completely and validated (admission happens strictly after
//! the executor returned and never mid-flight), every entry stores an
//! FNV-1a checksum of its row contents computed at admission, and every
//! hit re-verifies that checksum — a mismatch (bit rot, a chaos-injected
//! corruption, any writer bypassing admission) evicts the entry and
//! reports a miss, so a poisoned entry is never served.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use fusion_common::Value;
use fusion_core::analysis::{certify_maintainability, render_violations, ReuseCertificate};
use fusion_exec::{
    execute_plan_profiled, BudgetedReservation, Catalog, ExecContext, ExecMetrics, Row,
};
use fusion_expr::AggFunc;
use fusion_plan::LogicalPlan;

use crate::fingerprint::Fingerprint;

pub use fusion_core::analysis::MaintainShape;

/// Configuration for the shared-subplan cache.
#[derive(Debug, Clone)]
pub struct ReuseCacheConfig {
    /// Total bytes of cached rows, enforced via [`BudgetedReservation`].
    pub max_bytes: usize,
    /// Per-entry row ceiling: results larger than this are never admitted.
    pub max_entry_rows: usize,
    /// Minimum observation count before a fingerprint is cache-worthy.
    pub admit_min_uses: u64,
}

impl Default for ReuseCacheConfig {
    fn default() -> Self {
        ReuseCacheConfig {
            max_bytes: 64 << 20,
            max_entry_rows: 1 << 20,
            admit_min_uses: 2,
        }
    }
}

/// A cache hit: shared rows plus the canonical slot strings describing
/// their column layout (see [`crate::fingerprint::CanonicalForm::slots`]).
#[derive(Debug, Clone)]
pub struct CachedRows {
    pub rows: Arc<Vec<Row>>,
    pub slots: Vec<String>,
    /// When this hit was served by an in-place append refresh: the number
    /// of delta rows that were executed (and appended or merged) to bring
    /// the entry current. `None` for plain warm hits.
    pub refreshed_delta_rows: Option<usize>,
}

struct Entry {
    encoding: String,
    rows: Arc<Vec<Row>>,
    slots: Vec<String>,
    /// The shared subplan whose execution produced `rows` (in the layout
    /// described by `slots`). Kept so a stale entry can be *refreshed*
    /// in place by re-running the plan over only an append's delta
    /// partitions, and so subsumption lookups can match a consumer
    /// against resident supersets.
    plan: LogicalPlan,
    /// Canonical `(table, catalog version at execution time)` stamps for
    /// every base table the cached subplan read.
    deps: DepStamps,
    /// FNV-1a checksum of `rows` at admission time; re-verified on every
    /// hit so corrupted contents are evicted instead of served.
    checksum: u64,
    last_used: u64,
    /// Holds the entry's bytes against the cache budget; dropping the
    /// entry releases them. Replaced when a refresh changes the entry's
    /// size.
    reservation: BudgetedReservation,
}

/// FNV-1a over the row contents (row count, per-row arity, and every
/// value through [`fusion_common::Value`]'s `Hash`, which normalizes
/// float bits). Deterministic within a process, which is all integrity
/// verification needs.
pub fn rows_checksum(rows: &[Row]) -> u64 {
    use std::hash::{Hash, Hasher};
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01B3);
            }
        }
    }
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    rows.len().hash(&mut h);
    for row in rows {
        row.len().hash(&mut h);
        for v in row {
            v.hash(&mut h);
        }
    }
    h.0
}

/// Canonical dependency stamps: `(table, catalog version)` pairs in
/// strictly ascending table order, lowercased to the catalog's casing,
/// exactly one stamp per table. The single constructor canonicalizes, so
/// a non-canonical stamp vector — the PR-8 class of bug where interleaved
/// or mixed-case scans produced duplicate stamps that could never all
/// match the version map — is unrepresentable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepStamps(Vec<(String, u64)>);

impl DepStamps {
    /// Canonicalize raw stamps: lowercase every table name, sort, and
    /// dedup (sort *before* dedup so multi-cased references to the same
    /// table collapse to one stamp).
    pub fn new(mut deps: Vec<(String, u64)>) -> Self {
        for (t, _) in &mut deps {
            *t = t.to_ascii_lowercase();
        }
        deps.sort();
        deps.dedup();
        debug_assert!(
            deps.windows(2).all(|w| w[0].0 < w[1].0),
            "canonical dep stamps must be strictly ascending by table: {deps:?}"
        );
        DepStamps(deps)
    }

    /// Stamp a plan against the current catalog versions: one stamp per
    /// scanned base table at its current version. `None` when the plan
    /// reads a table the version map does not know — an unversionable
    /// result must not be cached at all.
    pub fn for_plan(plan: &LogicalPlan, versions: &HashMap<String, u64>) -> Option<DepStamps> {
        let deps = plan
            .scanned_tables()
            .iter()
            .map(|t| {
                let key = t.to_ascii_lowercase();
                versions.get(&key).map(|v| (key.clone(), *v))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(DepStamps::new(deps))
    }

    pub fn as_slice(&self) -> &[(String, u64)] {
        &self.0
    }

    pub fn into_vec(self) -> Vec<(String, u64)> {
        self.0
    }
}

/// Merge one finished aggregate value with the same group's delta value,
/// mirroring [`Acc::merge`] semantics from the executor so a refreshed
/// row is bit-identical to a cold recompute. Returns `None` on any shape
/// surprise (the caller falls back to evict-and-recompute).
fn merge_agg_value(func: AggFunc, a: &Value, b: &Value) -> Option<Value> {
    match func {
        AggFunc::Count | AggFunc::CountStar => match (a, b) {
            (Value::Int64(x), Value::Int64(y)) => Some(Value::Int64(x.wrapping_add(*y))),
            _ => None,
        },
        AggFunc::Sum => match (a, b) {
            (Value::Null, other) | (other, Value::Null) => Some(other.clone()),
            (Value::Int64(x), Value::Int64(y)) => Some(Value::Int64(x.wrapping_add(*y))),
            _ => None,
        },
        AggFunc::Min => match (a, b) {
            (Value::Null, other) | (other, Value::Null) => Some(other.clone()),
            _ => Some(if b < a { b.clone() } else { a.clone() }),
        },
        AggFunc::Max => match (a, b) {
            (Value::Null, other) | (other, Value::Null) => Some(other.clone()),
            _ => Some(if b > a { b.clone() } else { a.clone() }),
        },
        AggFunc::Avg => None,
    }
}

/// Group-wise merge of cached aggregate rows with a delta partial:
/// existing groups combine value-by-value, new groups append, and the
/// result is re-sorted by group key — the executor's deterministic
/// output order — so the merged rows match a cold recompute exactly.
fn merge_aggregate_rows(
    cached: &[Row],
    delta: Vec<Row>,
    arity: usize,
    key_positions: &[usize],
    agg_positions: &[(usize, AggFunc)],
) -> Option<Vec<Row>> {
    let key = |row: &Row| -> Vec<Value> {
        key_positions.iter().map(|&p| row[p].clone()).collect()
    };
    let mut groups: BTreeMap<Vec<Value>, Row> = BTreeMap::new();
    for row in cached {
        if row.len() != arity {
            return None;
        }
        groups.insert(key(row), row.clone());
    }
    for row in delta {
        if row.len() != arity {
            return None;
        }
        match groups.entry(key(&row)) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get_mut();
                for &(pos, func) in agg_positions {
                    merged[pos] = merge_agg_value(func, &merged[pos], &row[pos])?;
                }
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(row);
            }
        }
    }
    // BTreeMap iterates in ascending key order over the `group_by`-order
    // key — exactly the executor's `keys.sort()` over `Vec<Value>`,
    // preserved through any column-only projection on top.
    Some(groups.into_values().collect())
}

/// LRU shared-subplan result cache with version invalidation and
/// budget-backed admission.
pub struct ReuseCache {
    cfg: ReuseCacheConfig,
    /// Budget domain for reservations; the cache's own metrics sink, not
    /// the per-query one.
    ctx: Arc<ExecContext>,
    entries: HashMap<u64, Entry>,
    uses: HashMap<u64, u64>,
    clock: u64,
    /// Typed certificate rejections (e.g. a refresh refused because the
    /// cached shape is not maintainable) accumulated since the last
    /// drain; the workload layer folds them into its EXPLAIN notes.
    rejections: Vec<String>,
}

impl ReuseCache {
    pub fn new(cfg: ReuseCacheConfig) -> Self {
        let ctx = ExecContext::builder(ExecMetrics::new())
            .hard_budget(cfg.max_bytes)
            .build();
        ReuseCache {
            cfg,
            ctx,
            entries: HashMap::new(),
            uses: HashMap::new(),
            clock: 0,
            rejections: Vec::new(),
        }
    }

    /// Drain the typed certificate-rejection notes accumulated by lookups
    /// and refreshes since the last call.
    pub fn drain_rejections(&mut self) -> Vec<String> {
        std::mem::take(&mut self.rejections)
    }

    /// The stored plan of a resident entry, for re-certification by the
    /// workload layer before a subsumption serve.
    pub fn entry_plan(&self, fp: Fingerprint) -> Option<&LogicalPlan> {
        self.entries.get(&fp.0).map(|e| &e.plan)
    }

    /// Record one observation of a fingerprint and return the cumulative
    /// count. Callers must only observe a *successfully served* consumer
    /// — after the shared execution completed and the consumer's spliced
    /// plan validated — so failed executions never count toward the
    /// `admit_min_uses` admission gate.
    pub fn observe(&mut self, fp: Fingerprint) -> u64 {
        let c = self.uses.entry(fp.0).or_insert(0);
        *c += 1;
        *c
    }

    /// Cumulative observation count for a fingerprint.
    pub fn uses(&self, fp: Fingerprint) -> u64 {
        self.uses.get(&fp.0).copied().unwrap_or(0)
    }

    /// Whether an entry exists and is valid against the given catalog
    /// versions, without touching LRU state or evicting.
    pub fn contains_valid(
        &self,
        fp: Fingerprint,
        encoding: &str,
        versions: &HashMap<String, u64>,
    ) -> bool {
        self.entries.get(&fp.0).is_some_and(|e| {
            e.encoding == encoding
                && e.deps
                    .as_slice()
                    .iter()
                    .all(|(t, v)| versions.get(t).copied().unwrap_or(0) == *v)
        })
    }

    /// Whether an entry exists and can be *served* against the current
    /// catalog: either valid outright, or stale only by pure appends to a
    /// maintainable subplan, so a lookup would refresh it in place rather
    /// than evict. Group formation uses this so a refreshable entry still
    /// anchors a reuse group.
    pub fn contains_servable(
        &self,
        fp: Fingerprint,
        encoding: &str,
        catalog: &Catalog,
        versions: &HashMap<String, u64>,
    ) -> bool {
        let Some(e) = self.entries.get(&fp.0) else {
            return false;
        };
        if e.encoding != encoding {
            return false;
        }
        let stale = e
            .deps
            .as_slice()
            .iter()
            .any(|(t, v)| versions.get(t).copied().unwrap_or(0) != *v);
        if !stale {
            return true;
        }
        e.deps
            .as_slice()
            .iter()
            .all(|(t, v)| catalog.delta_partitions_since(t, *v).is_some())
            && certify_maintainability(&e.plan).is_ok()
    }

    /// Look up a fingerprint. A stale entry (any dependency's catalog
    /// version moved) is *refreshed in place* when every moved dependency
    /// moved by pure appends and the subplan shape is maintainable —
    /// otherwise it is evicted on sight and counted on `metrics`. An
    /// encoding mismatch (64-bit collision) is treated as a miss; an
    /// entry whose row contents no longer match their admission checksum
    /// is *poisoned* — it is evicted (counted in both
    /// `cache_poison_evictions` and `reuse_cache_evictions`) and reported
    /// as a miss so the caller falls through to cold execution instead of
    /// serving wrong rows.
    pub fn lookup(
        &mut self,
        fp: Fingerprint,
        encoding: &str,
        catalog: &Catalog,
        versions: &HashMap<String, u64>,
        metrics: &ExecMetrics,
    ) -> Option<CachedRows> {
        let entry = self.entries.get(&fp.0)?;
        if entry.encoding != encoding {
            return None;
        }
        let stale = entry
            .deps
            .as_slice()
            .iter()
            .any(|(t, v)| versions.get(t).copied().unwrap_or(0) != *v);
        if stale {
            return self.refresh(fp, catalog, metrics);
        }
        if rows_checksum(&entry.rows) != entry.checksum {
            self.entries.remove(&fp.0);
            metrics.add_cache_poison_eviction();
            metrics.add_reuse_cache_eviction();
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(&fp.0)?;
        entry.last_used = clock;
        Some(CachedRows {
            rows: Arc::clone(&entry.rows),
            slots: entry.slots.clone(),
            refreshed_delta_rows: None,
        })
    }

    /// Serve a consumer from a resident entry whose subplan strictly
    /// subsumes it (the entry's rows are a superset recoverable through
    /// the consumer's own filter). Candidates are tried in ascending
    /// fingerprint order for determinism; each goes through the full
    /// [`lookup`](Self::lookup) validation (staleness/refresh, checksum),
    /// so a stale-but-refreshable superset is refreshed before serving.
    /// Returns the hit together with the serving entry's fingerprint.
    pub fn lookup_subsuming(
        &mut self,
        consumer: &LogicalPlan,
        catalog: &Catalog,
        versions: &HashMap<String, u64>,
        metrics: &ExecMetrics,
    ) -> Option<(CachedRows, Fingerprint)> {
        let mut fps: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| crate::fingerprint::subsumes(&e.plan, consumer))
            .map(|(k, _)| *k)
            .collect();
        fps.sort_unstable();
        for f in fps {
            let Some(encoding) = self.entries.get(&f).map(|e| e.encoding.clone()) else {
                continue; // evicted by an earlier candidate's refresh
            };
            if let Some(hit) = self.lookup(Fingerprint(f), &encoding, catalog, versions, metrics)
            {
                return Some((hit, Fingerprint(f)));
            }
        }
        None
    }

    /// Refresh a stale entry in place: execute its plan over only the
    /// delta partitions of its appended dependencies, fold the delta into
    /// the cached rows per the entry's [`MaintainShape`], and restamp
    /// checksum and dependency versions. Any failure — broken append
    /// lineage, non-maintainable shape, poisoned rows, delta execution
    /// error, budget overflow — evicts the entry (counted) and reports a
    /// miss, which is exactly the old evict-on-stale behavior.
    fn refresh(
        &mut self,
        fp: Fingerprint,
        catalog: &Catalog,
        metrics: &ExecMetrics,
    ) -> Option<CachedRows> {
        let entry = self.entries.remove(&fp.0)?;
        match self.refresh_entry(entry, catalog, metrics) {
            Ok((entry, delta_rows)) => {
                let hit = CachedRows {
                    rows: Arc::clone(&entry.rows),
                    slots: entry.slots.clone(),
                    refreshed_delta_rows: Some(delta_rows),
                };
                self.entries.insert(fp.0, entry);
                metrics.add_reuse_cache_refresh();
                Some(hit)
            }
            Err(poisoned) => {
                if poisoned {
                    metrics.add_cache_poison_eviction();
                }
                metrics.add_reuse_cache_eviction();
                None
            }
        }
    }

    /// The fallible core of [`refresh`](Self::refresh). `Err(poisoned)`
    /// means the entry must stay evicted; `poisoned` reports whether the
    /// failure was a checksum mismatch.
    fn refresh_entry(
        &mut self,
        entry: Entry,
        catalog: &Catalog,
        metrics: &ExecMetrics,
    ) -> Result<(Entry, usize), bool> {
        // The refresh only runs on a *certified* maintain shape, derived
        // from the stored plan by the reuse-soundness prover. A rejection
        // is the typed fallback to evict-and-recompute (always sound),
        // recorded for EXPLAIN and counted on the metrics.
        let shape = match certify_maintainability(&entry.plan) {
            Ok(ReuseCertificate::Maintain(shape)) => {
                metrics.add_reuse_certificate_issued();
                shape
            }
            Ok(_) => return Err(false),
            Err(v) => {
                metrics.add_reuse_certificate_rejected();
                self.rejections.push(format!(
                    "incremental refresh rejected ({}): {}",
                    entry.plan.op_name(),
                    render_violations(&v)
                ));
                return Err(false);
            }
        };
        // Verify integrity *before* building on the cached rows: merging
        // onto poisoned rows would launder the corruption into a freshly
        // restamped checksum.
        if rows_checksum(&entry.rows) != entry.checksum {
            return Err(true);
        }
        // Every dependency must have moved by pure appends (an empty
        // range for dependencies that did not move at all).
        let mut deltas: Vec<(String, std::ops::Range<usize>)> = Vec::new();
        let mut any_delta = false;
        for (t, v) in entry.deps.as_slice() {
            let range = catalog.delta_partitions_since(t, *v).ok_or(false)?;
            any_delta |= !range.is_empty();
            deltas.push((t.clone(), range));
        }
        if !any_delta {
            // Versions moved but no partitions did: lineage is
            // inconsistent with the version map; do not guess.
            return Err(false);
        }
        // Delta catalog: each dependency reduced to only its delta
        // partitions — empty for dependencies that did not move, so a
        // multi-table plan does not double-count their rows.
        let mut delta_catalog = Catalog::new();
        for (t, range) in &deltas {
            let full = catalog.get(t).map_err(|_| false)?;
            delta_catalog.register(full.with_partition_range(range.clone()));
        }
        let (output, _) = execute_plan_profiled(&entry.plan, &delta_catalog, &self.ctx)
            .map_err(|_| false)?;
        let delta_count = output.rows.len();

        let new_rows: Vec<Row> = match shape {
            MaintainShape::AppendRows => {
                let mut rows = entry.rows.as_ref().clone();
                rows.extend(output.rows);
                rows
            }
            MaintainShape::MergeAggregate {
                arity,
                key_positions,
                agg_positions,
            } => merge_aggregate_rows(
                &entry.rows,
                output.rows,
                arity,
                &key_positions,
                &agg_positions,
            )
            .ok_or(false)?,
        };

        if new_rows.len() > self.cfg.max_entry_rows {
            return Err(false);
        }
        let bytes: usize = new_rows
            .iter()
            .map(|r| r.iter().map(|v| v.encoded_size()).sum::<usize>())
            .sum::<usize>()
            .max(1);
        if bytes > self.cfg.max_bytes {
            return Err(false);
        }
        let Entry {
            encoding,
            slots,
            plan,
            reservation,
            ..
        } = entry;
        // Release the old reservation before sizing the new one: the
        // refreshed entry replaces the old, it does not stack on it.
        drop(reservation);
        let reservation = loop {
            match BudgetedReservation::try_new(Arc::clone(&self.ctx), bytes as i64) {
                Ok(r) => break r,
                Err(_) => {
                    if !self.evict_lru(metrics) {
                        return Err(false);
                    }
                }
            }
        };
        // Restamp: the refreshed rows are exactly what a cold run over
        // the current versions would produce. The constructor keeps the
        // stamps canonical.
        let deps = DepStamps::new(
            deltas
                .iter()
                .map(|(t, _)| (t.clone(), catalog.table_version(t)))
                .collect(),
        );
        self.clock += 1;
        let checksum = rows_checksum(&new_rows);
        Ok((
            Entry {
                encoding,
                rows: Arc::new(new_rows),
                slots,
                plan,
                deps,
                checksum,
                last_used: self.clock,
                reservation,
            },
            delta_count,
        ))
    }

    /// Try to admit a result. Returns `true` if the entry is (now)
    /// cached. Eviction of colder entries is counted on `metrics`.
    ///
    /// Callers must only admit **complete, validated** results: the
    /// shared execution finished (every operator drained, all workers
    /// joined) and the plan passed the semantic analyzer. A mid-flight or
    /// partial result admitted here would poison every future warm hit;
    /// the checksum computed below would faithfully certify the wrong
    /// rows.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        fp: Fingerprint,
        encoding: &str,
        rows: Arc<Vec<Row>>,
        slots: Vec<String>,
        plan: &LogicalPlan,
        deps: DepStamps,
        metrics: &ExecMetrics,
    ) -> bool {
        if self.uses(fp) < self.cfg.admit_min_uses {
            return false;
        }
        if let Some(e) = self.entries.get_mut(&fp.0) {
            if e.encoding == encoding {
                if rows_checksum(&e.rows) != e.checksum {
                    // The resident entry was poisoned since admission:
                    // evict it and fall through to re-admit the fresh,
                    // just-validated rows instead of refreshing the
                    // corrupt copy's LRU position.
                    self.entries.remove(&fp.0);
                    metrics.add_cache_poison_eviction();
                    metrics.add_reuse_cache_eviction();
                } else {
                    self.clock += 1;
                    e.last_used = self.clock;
                    return true;
                }
            } else {
                return false;
            }
        }
        if rows.len() > self.cfg.max_entry_rows {
            return false;
        }
        let bytes: usize = rows
            .iter()
            .map(|r| r.iter().map(|v| v.encoded_size()).sum::<usize>())
            .sum::<usize>()
            .max(1);
        if bytes > self.cfg.max_bytes {
            return false;
        }
        let reservation = loop {
            match BudgetedReservation::try_new(Arc::clone(&self.ctx), bytes as i64) {
                Ok(r) => break r,
                Err(_) => {
                    if !self.evict_lru(metrics) {
                        return false;
                    }
                }
            }
        };
        self.clock += 1;
        let checksum = rows_checksum(&rows);
        self.entries.insert(
            fp.0,
            Entry {
                encoding: encoding.to_string(),
                rows,
                slots,
                plan: plan.clone(),
                deps,
                checksum,
                last_used: self.clock,
                reservation,
            },
        );
        true
    }

    /// The dependency stamps of every resident entry, for tests asserting
    /// stamping invariants (exactly one dep per table, catalog-cased).
    pub fn entry_deps(&self) -> Vec<Vec<(String, u64)>> {
        self.entries
            .values()
            .map(|e| e.deps.as_slice().to_vec())
            .collect()
    }

    /// Corrupt a cached entry's rows *without* touching its checksum —
    /// the chaos-harness hook behind [`ReuseFaultSite::CacheCorrupt`][cc]
    /// (also usable directly in tests). Flips the first value of the
    /// first row, or appends a phantom row when the entry is empty; both
    /// mutations change [`rows_checksum`], so the next lookup detects the
    /// poison and evicts. Returns `false` when no such entry exists.
    ///
    /// [cc]: fusion_exec::ReuseFaultSite::CacheCorrupt
    pub fn corrupt_entry(&mut self, fp: Fingerprint) -> bool {
        let Some(entry) = self.entries.get_mut(&fp.0) else {
            return false;
        };
        let rows = Arc::make_mut(&mut entry.rows);
        match rows.first_mut().and_then(|r| r.first_mut()) {
            Some(v) => {
                *v = match v {
                    fusion_common::Value::Int64(n) => fusion_common::Value::Int64(!*n),
                    fusion_common::Value::Float64(f) => fusion_common::Value::Float64(-*f - 1.0),
                    fusion_common::Value::Boolean(b) => fusion_common::Value::Boolean(!*b),
                    fusion_common::Value::Utf8(s) => {
                        fusion_common::Value::Utf8(format!("{s}\u{0}corrupt"))
                    }
                    fusion_common::Value::Date(d) => fusion_common::Value::Date(!*d),
                    fusion_common::Value::Null => fusion_common::Value::Int64(0),
                };
            }
            None => rows.push(vec![fusion_common::Value::Null]),
        }
        true
    }

    fn evict_lru(&mut self, metrics: &ExecMetrics) -> bool {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k);
        match victim {
            Some(k) => {
                self.entries.remove(&k);
                metrics.add_reuse_cache_eviction();
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
        self.uses.clear();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;
    use fusion_common::Value;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint(n)
    }

    fn rows(n: usize, v: i64) -> Arc<Vec<Row>> {
        Arc::new((0..n).map(|_| vec![Value::Int64(v)]).collect())
    }

    fn versions(v: u64) -> HashMap<String, u64> {
        let mut m = HashMap::new();
        m.insert("t".to_string(), v);
        m
    }

    /// A trivial non-maintainable plan: staleness always falls back to
    /// evict-and-recompute, preserving the pre-refresh test semantics.
    fn plan() -> LogicalPlan {
        LogicalPlan::ConstantTable(fusion_plan::ConstantTable {
            fields: Vec::new(),
            rows: Vec::new(),
        })
    }

    /// An empty catalog: no append lineage, so no refresh path engages.
    fn cat() -> Catalog {
        Catalog::new()
    }

    #[test]
    fn admission_requires_min_uses() {
        let mut c = ReuseCache::new(ReuseCacheConfig::default());
        let m = ExecMetrics::new();
        let deps = DepStamps::new(vec![("t".to_string(), 1)]);
        assert!(!c.admit(fp(1), "e1", rows(4, 7), vec!["s".into()], &plan(), deps.clone(), &m));
        c.observe(fp(1));
        c.observe(fp(1));
        assert!(c.admit(fp(1), "e1", rows(4, 7), vec!["s".into()], &plan(), deps, &m));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lookup_hits_and_respects_versions() {
        let mut c = ReuseCache::new(ReuseCacheConfig::default());
        let m = ExecMetrics::new();
        c.observe(fp(1));
        c.observe(fp(1));
        assert!(c.admit(
            fp(1),
            "e1",
            rows(4, 7),
            vec!["s".into()],
            &plan(),
            DepStamps::new(vec![("t".to_string(), 1)]),
            &m
        ));
        assert!(c.lookup(fp(1), "e1", &cat(), &versions(1), &m).is_some());
        // Encoding mismatch (hash collision) is a miss, not a hit.
        assert!(c.lookup(fp(1), "other", &cat(), &versions(1), &m).is_none());
        // Version bump invalidates and evicts.
        assert!(c.lookup(fp(1), "e1", &cat(), &versions(2), &m).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(m.snapshot().reuse_cache_evictions, 1);
    }

    #[test]
    fn budget_overflow_evicts_lru() {
        let mut c = ReuseCache::new(ReuseCacheConfig {
            // Each Int64 row encodes to ~9 bytes; 3 x 10-row entries
            // overflow a 200-byte budget.
            max_bytes: 200,
            max_entry_rows: 1000,
            admit_min_uses: 1,
        });
        let m = ExecMetrics::new();
        for i in 0..3u64 {
            c.observe(fp(i));
            assert!(c.admit(
                fp(i),
                "e",
                rows(10, i as i64),
                vec!["s".into()],
                &plan(),
                DepStamps::new(vec![("t".to_string(), 1)]),
                &m
            ));
        }
        assert!(c.len() < 3, "budget must have forced an eviction");
        assert!(m.snapshot().reuse_cache_evictions >= 1);
        // The most recently admitted entry survived.
        assert!(c.lookup(fp(2), "e", &cat(), &versions(1), &m).is_some());
    }

    #[test]
    fn poisoned_entry_is_evicted_never_served() {
        let mut c = ReuseCache::new(ReuseCacheConfig {
            admit_min_uses: 1,
            ..ReuseCacheConfig::default()
        });
        let m = ExecMetrics::new();
        c.observe(fp(1));
        assert!(c.admit(
            fp(1),
            "e",
            rows(4, 7),
            vec!["s".into()],
            &plan(),
            DepStamps::new(vec![("t".to_string(), 1)]),
            &m
        ));
        assert!(c.lookup(fp(1), "e", &cat(), &versions(1), &m).is_some());

        assert!(c.corrupt_entry(fp(1)), "entry exists to corrupt");
        // The poisoned hit is detected, evicted, and reported as a miss.
        assert!(c.lookup(fp(1), "e", &cat(), &versions(1), &m).is_none());
        assert_eq!(c.len(), 0);
        let snap = m.snapshot();
        assert_eq!(snap.cache_poison_evictions, 1);
        assert!(snap.reuse_cache_evictions >= 1);
        // Once evicted, later lookups are plain misses (no double count).
        assert!(c.lookup(fp(1), "e", &cat(), &versions(1), &m).is_none());
        assert_eq!(m.snapshot().cache_poison_evictions, 1);
    }

    #[test]
    fn corrupting_empty_entry_still_detected() {
        let mut c = ReuseCache::new(ReuseCacheConfig {
            admit_min_uses: 1,
            ..ReuseCacheConfig::default()
        });
        let m = ExecMetrics::new();
        c.observe(fp(2));
        assert!(c.admit(
            fp(2),
            "e",
            Arc::new(Vec::new()),
            vec!["s".into()],
            &plan(),
            DepStamps::new(vec![("t".to_string(), 1)]),
            &m
        ));
        assert!(c.corrupt_entry(fp(2)));
        assert!(c.lookup(fp(2), "e", &cat(), &versions(1), &m).is_none());
        assert_eq!(m.snapshot().cache_poison_evictions, 1);
    }

    #[test]
    fn readmission_replaces_poisoned_resident_entry() {
        let mut c = ReuseCache::new(ReuseCacheConfig {
            admit_min_uses: 1,
            ..ReuseCacheConfig::default()
        });
        let m = ExecMetrics::new();
        let deps = DepStamps::new(vec![("t".to_string(), 1)]);
        c.observe(fp(1));
        assert!(c.admit(fp(1), "e", rows(4, 7), vec!["s".into()], &plan(), deps.clone(), &m));
        assert!(c.corrupt_entry(fp(1)));
        // Re-admitting fresh rows must not refresh the corrupt copy.
        assert!(c.admit(fp(1), "e", rows(4, 7), vec!["s".into()], &plan(), deps, &m));
        let hit = c.lookup(fp(1), "e", &cat(), &versions(1), &m).unwrap();
        assert_eq!(hit.rows.len(), 4);
        assert_eq!(hit.rows[0][0], Value::Int64(7), "fresh rows served");
        assert_eq!(m.snapshot().cache_poison_evictions, 1);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = ReuseCache::new(ReuseCacheConfig {
            max_bytes: 1 << 20,
            max_entry_rows: 5,
            admit_min_uses: 1,
        });
        let m = ExecMetrics::new();
        c.observe(fp(1));
        assert!(!c.admit(
            fp(1),
            "e",
            rows(6, 0),
            vec!["s".into()],
            &plan(),
            DepStamps::new(vec![("t".to_string(), 1)]),
            &m
        ));
        assert!(c.is_empty());
    }

    /// Regression for the PR-8 stamping bug class: interleaved and
    /// mixed-case references to the same table must collapse to a single
    /// catalog-cased stamp at *construction* time — the constructor
    /// canonicalizes, so a non-canonical stamp vector is unrepresentable.
    #[test]
    fn dep_stamps_canonicalize_mixed_case_duplicates() {
        let stamps = DepStamps::new(vec![
            ("Orders".to_string(), 3),
            ("customers".to_string(), 1),
            ("ORDERS".to_string(), 3),
            ("orders".to_string(), 3),
        ]);
        assert_eq!(
            stamps.as_slice(),
            &[("customers".to_string(), 1), ("orders".to_string(), 3)]
        );

        // `for_plan` stamps scanned tables at their current versions and
        // refuses to stamp a plan reading an unversioned table.
        let gen = fusion_common::IdGen::new();
        let b = fusion_plan::PlanBuilder::scan(
            &gen,
            "Orders",
            &[fusion_plan::builder::ColumnDef::new(
                "a",
                fusion_common::DataType::Int64,
                false,
            )],
        );
        let scan = b.build();
        let mut vers = HashMap::new();
        assert!(DepStamps::for_plan(&scan, &vers).is_none(), "unknown table");
        vers.insert("orders".to_string(), 7);
        let stamped = DepStamps::for_plan(&scan, &vers).unwrap();
        assert_eq!(stamped.as_slice(), &[("orders".to_string(), 7)]);
    }
}
