//! Deterministic fault injection for table scans.
//!
//! Production engines see transient storage failures constantly; the paper's
//! setting (Athena reading S3) makes retry-with-backoff and graceful
//! degradation first-class concerns. This module lets tests *schedule*
//! faults deterministically: a [`FaultPolicy`] decides, as a pure function
//! of `(seed, table, partition, attempt)`, whether a given read attempt
//! fails. The same seed always produces the same fault schedule, so a
//! property test can assert that fused and unfused plans survive identical
//! storm patterns.
//!
//! Two fault classes exist, mirroring the retryable/fatal taxonomy in
//! [`fusion_common::error`]:
//!
//! * **Transient read failures** ([`FusionError::TransientIo`]) — injected
//!   with probability `transient_failure_rate` per `(table, partition,
//!   attempt)`. Because the decision re-hashes the attempt number, a retry
//!   of the same partition can succeed — exactly like a flaky object store.
//! * **Poison partitions** ([`FusionError::DataCorruption`]) — partitions
//!   listed in `poison` fail *every* attempt with a fatal error. Retrying
//!   cannot help; only plan-level degradation or caller intervention can.
//!
//! Beyond scans, the policy also drives the **shared-execution fault
//! points** used by the batch chaos harness ([`ReuseFaultSite`]): the
//! one-shot execution of a shared subplan group, the splicing of each
//! consumer onto the shared rows, and the reuse cache's admission and
//! lookup paths — plus a corruption site that silently flips a cached row
//! so the cache's checksum defense can be exercised. Each site fails with
//! the same seed-hashed determinism as scan faults, keyed by
//! `(seed, site, key, attempt)`.

use std::collections::HashSet;
use std::time::Duration;

use fusion_common::FusionError;

/// Deterministic fault schedule for scans. Cheap to clone; carried by
/// `ExecContext`.
#[derive(Debug, Clone, Default)]
pub struct FaultPolicy {
    /// Seed for the fault schedule. Two policies with the same seed and
    /// rates inject identical faults.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given `(table, partition, attempt)`
    /// read fails with a retryable [`FusionError::TransientIo`].
    pub transient_failure_rate: f64,
    /// Synthetic latency added to every partition read (simulates slow
    /// storage so deadline enforcement can be tested without huge data).
    pub read_latency: Duration,
    /// `(table, partition)` pairs that always fail with
    /// [`FusionError::DataCorruption`].
    pub poison: HashSet<(String, usize)>,
    /// Probability in `[0, 1]` that a reuse fault point fires (see
    /// [`ReuseFaultSite`]). Keyed per `(site, key, attempt)`, so a retry
    /// of a shared execution re-rolls exactly like a scan retry does.
    pub reuse_failure_rates: ReuseFaultRates,
}

/// Which reuse-machinery fault point is being exercised. The discriminant
/// enters the fault hash, so the sites fail independently under one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseFaultSite {
    /// The one-shot execution of a shared subplan group. Injected faults
    /// are retryable ([`FusionError::TransientIo`]); exhausting retries
    /// forces every consumer to detach and re-execute unshared.
    SharedExec,
    /// Splicing one consumer onto the shared rows. A fault detaches just
    /// that consumer.
    Splice,
    /// Admission of a completed result into the reuse cache. A fault
    /// skips admission (the result is still served to this batch).
    CacheAdmit,
    /// Lookup of a warm cache entry. A fault is a forced miss; the query
    /// falls through to cold execution.
    CacheLookup,
    /// Silent corruption of an entry's rows *after* admission, without
    /// updating its checksum — models a bit flip / partial write that the
    /// checksum-verified lookup must catch and evict.
    CacheCorrupt,
}

impl ReuseFaultSite {
    fn discriminant(self) -> u64 {
        match self {
            ReuseFaultSite::SharedExec => 0xA1,
            ReuseFaultSite::Splice => 0xB2,
            ReuseFaultSite::CacheAdmit => 0xC3,
            ReuseFaultSite::CacheLookup => 0xD4,
            ReuseFaultSite::CacheCorrupt => 0xE5,
        }
    }
}

/// Per-site failure probabilities for the reuse fault points.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReuseFaultRates {
    pub shared_exec: f64,
    pub splice: f64,
    pub cache_admit: f64,
    pub cache_lookup: f64,
    pub cache_corrupt: f64,
}

impl ReuseFaultRates {
    /// The same rate at every site.
    pub fn uniform(rate: f64) -> Self {
        ReuseFaultRates {
            shared_exec: rate,
            splice: rate,
            cache_admit: rate,
            cache_lookup: rate,
            cache_corrupt: rate,
        }
    }

    fn rate(&self, site: ReuseFaultSite) -> f64 {
        match site {
            ReuseFaultSite::SharedExec => self.shared_exec,
            ReuseFaultSite::Splice => self.splice,
            ReuseFaultSite::CacheAdmit => self.cache_admit,
            ReuseFaultSite::CacheLookup => self.cache_lookup,
            ReuseFaultSite::CacheCorrupt => self.cache_corrupt,
        }
    }

    pub fn is_active(&self) -> bool {
        self.shared_exec > 0.0
            || self.splice > 0.0
            || self.cache_admit > 0.0
            || self.cache_lookup > 0.0
            || self.cache_corrupt > 0.0
    }
}

impl FaultPolicy {
    /// A policy injecting transient failures at `rate` under `seed`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPolicy {
            seed,
            transient_failure_rate: rate,
            ..FaultPolicy::default()
        }
    }

    /// Mark a `(table, partition)` as poisoned (fatally corrupt).
    pub fn with_poison(mut self, table: &str, partition: usize) -> Self {
        self.poison.insert((table.to_string(), partition));
        self
    }

    /// Add synthetic per-partition read latency.
    pub fn with_read_latency(mut self, latency: Duration) -> Self {
        self.read_latency = latency;
        self
    }

    /// Set the failure rates of the reuse fault points.
    pub fn with_reuse_faults(mut self, rates: ReuseFaultRates) -> Self {
        self.reuse_failure_rates = rates;
        self
    }

    /// Whether this policy can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.transient_failure_rate > 0.0
            || !self.poison.is_empty()
            || !self.read_latency.is_zero()
            || self.reuse_failure_rates.is_active()
    }

    /// splitmix64-style avalanche over `(seed, salt, key, attempt)`,
    /// mapped into `[0, 1)`. Shared by the scan and reuse fault points so
    /// both draw from the same deterministic schedule space.
    fn fault_unit(&self, salt: u64, key: &str, extra: u64, attempt: u32) -> f64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15 ^ salt;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h ^= extra.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= (attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of `attempt` (0-based) of reuse fault point `site`
    /// for the work unit identified by `key` (typically a fingerprint,
    /// plus a consumer index for splices). Deterministic in
    /// `(seed, site, key, attempt)`. [`ReuseFaultSite::SharedExec`] faults
    /// are retryable transient I/O — a retried shared execution re-rolls;
    /// every other site fails with a fatal [`FusionError::Execution`]
    /// because those paths are not retried, only skipped.
    pub fn inject_reuse(
        &self,
        site: ReuseFaultSite,
        key: &str,
        attempt: u32,
    ) -> Result<(), FusionError> {
        let rate = self.reuse_failure_rates.rate(site);
        if rate <= 0.0 {
            return Ok(());
        }
        if self.fault_unit(site.discriminant(), key, 0, attempt) < rate {
            let msg = format!("injected {site:?} fault: key '{key}' attempt {attempt}");
            return Err(match site {
                ReuseFaultSite::SharedExec => FusionError::TransientIo(msg),
                _ => FusionError::Execution(msg),
            });
        }
        Ok(())
    }

    /// Decide the fate of read `attempt` (0-based) of `partition` of
    /// `table`. `Ok(())` means the read proceeds. Deterministic: the same
    /// inputs always return the same result.
    pub fn inject(&self, table: &str, partition: usize, attempt: u32) -> Result<(), FusionError> {
        if self.poison.contains(&(table.to_string(), partition)) {
            return Err(FusionError::DataCorruption(format!(
                "poisoned partition {partition} of table '{table}'"
            )));
        }
        if self.transient_failure_rate > 0.0 {
            // Uniform enough for a failure-rate threshold; salt 0 keeps
            // the pre-existing scan schedules stable under a given seed.
            let unit = self.fault_unit(0, table, partition as u64, attempt);
            if unit < self.transient_failure_rate {
                return Err(FusionError::TransientIo(format!(
                    "injected read failure: table '{table}' partition {partition} attempt {attempt}"
                )));
            }
        }
        Ok(())
    }
}

/// Retry-with-exponential-backoff parameters for transient scan failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries = 3` allows four
    /// attempts total).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Small absolute values keep fault-injection tests fast while the
        // exponential shape stays observable.
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = self.multiplier.powi(retry.saturating_sub(1) as i32);
        let nanos = self.initial_backoff.as_nanos() as f64 * factor;
        Duration::from_nanos(nanos.min(self.max_backoff.as_nanos() as f64) as u64)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let a = FaultPolicy::transient(42, 0.3);
        let b = FaultPolicy::transient(42, 0.3);
        for p in 0..64 {
            for attempt in 0..4 {
                assert_eq!(
                    a.inject("store_sales", p, attempt).is_ok(),
                    b.inject("store_sales", p, attempt).is_ok()
                );
            }
        }
    }

    #[test]
    fn rate_roughly_respected_and_attempts_reroll() {
        let p = FaultPolicy::transient(7, 0.5);
        let fails = (0..1000)
            .filter(|&i| p.inject("t", i, 0).is_err())
            .count();
        assert!((300..700).contains(&fails), "got {fails} failures at rate 0.5");
        // At least one partition that failed attempt 0 succeeds on a retry.
        let recovered = (0..1000).any(|i| {
            p.inject("t", i, 0).is_err()
                && (1..4).any(|a| p.inject("t", i, a).is_ok())
        });
        assert!(recovered);
    }

    #[test]
    fn zero_rate_never_fails() {
        let p = FaultPolicy::transient(1, 0.0);
        assert!(!p.is_active());
        assert!((0..100).all(|i| p.inject("t", i, 0).is_ok()));
    }

    #[test]
    fn poison_is_fatal_on_every_attempt() {
        let p = FaultPolicy::default().with_poison("t", 3);
        for attempt in 0..8 {
            match p.inject("t", 3, attempt) {
                Err(e) => assert!(!e.is_retryable(), "poison must be fatal"),
                Ok(()) => panic!("poisoned partition must fail"),
            }
        }
        assert!(p.inject("t", 2, 0).is_ok());
        assert!(p.inject("u", 3, 0).is_ok());
    }

    #[test]
    fn scan_schedule_unchanged_by_reuse_rates() {
        // Turning reuse fault points on must not perturb the scan fault
        // schedule for the same seed (chaos runs vary rates per site).
        let plain = FaultPolicy::transient(42, 0.3);
        let with_reuse = FaultPolicy::transient(42, 0.3)
            .with_reuse_faults(ReuseFaultRates::uniform(0.5));
        for p in 0..64 {
            for attempt in 0..4 {
                assert_eq!(
                    plain.inject("store_sales", p, attempt).is_ok(),
                    with_reuse.inject("store_sales", p, attempt).is_ok()
                );
            }
        }
    }

    #[test]
    fn reuse_sites_are_deterministic_and_independent() {
        let p = FaultPolicy {
            seed: 9,
            reuse_failure_rates: ReuseFaultRates::uniform(0.5),
            ..FaultPolicy::default()
        };
        let q = p.clone();
        let sites = [
            ReuseFaultSite::SharedExec,
            ReuseFaultSite::Splice,
            ReuseFaultSite::CacheAdmit,
            ReuseFaultSite::CacheLookup,
            ReuseFaultSite::CacheCorrupt,
        ];
        for site in sites {
            for k in 0..64 {
                let key = format!("0x{k:016x}");
                assert_eq!(
                    p.inject_reuse(site, &key, 0).is_ok(),
                    q.inject_reuse(site, &key, 0).is_ok(),
                    "schedule must be deterministic"
                );
            }
        }
        // Sites draw independent schedules: over many keys, two sites
        // must disagree somewhere.
        let disagree = (0..256).any(|k| {
            let key = format!("0x{k:016x}");
            p.inject_reuse(ReuseFaultSite::SharedExec, &key, 0).is_ok()
                != p.inject_reuse(ReuseFaultSite::CacheAdmit, &key, 0).is_ok()
        });
        assert!(disagree, "sites must not share one schedule");
    }

    #[test]
    fn shared_exec_faults_are_retryable_others_fatal() {
        let p = FaultPolicy {
            seed: 3,
            reuse_failure_rates: ReuseFaultRates::uniform(1.0),
            ..FaultPolicy::default()
        };
        match p.inject_reuse(ReuseFaultSite::SharedExec, "fp", 0) {
            Err(e) => assert!(e.is_retryable(), "SharedExec faults retry"),
            Ok(()) => panic!("rate 1.0 must fail"),
        }
        for site in [
            ReuseFaultSite::Splice,
            ReuseFaultSite::CacheAdmit,
            ReuseFaultSite::CacheLookup,
            ReuseFaultSite::CacheCorrupt,
        ] {
            match p.inject_reuse(site, "fp", 0) {
                Err(e) => assert!(!e.is_retryable(), "{site:?} faults are fatal"),
                Ok(()) => panic!("rate 1.0 must fail"),
            }
        }
        // Zero-rate sites never fire.
        let silent = FaultPolicy::default();
        assert!(!silent.reuse_failure_rates.is_active());
        assert!(silent.inject_reuse(ReuseFaultSite::SharedExec, "fp", 0).is_ok());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff(1), Duration::from_millis(1));
        assert_eq!(r.backoff(2), Duration::from_millis(2));
        assert_eq!(r.backoff(3), Duration::from_millis(4));
        assert_eq!(r.backoff(20), Duration::from_millis(50));
    }
}
