// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Certificate-coverage property for the reuse-soundness prover: every
//! reuse rewrite the engine actually serves — exact and fused splices,
//! subsumption serves, and incremental refreshes — must have been
//! granted a certificate, and a pristine workload (no seeded
//! corruptions, no non-maintainable shapes) must never be rejected.
//!
//! The invariant checked per query/batch result is
//!
//! ```text
//! certificates_issued >= splices + subsumption_hits + refreshes
//! ```
//!
//! (issued can exceed the sum: admissions also certify their dependency
//! stamps), together with `certificates_rejected == 0` across the whole
//! pristine corpus — the false-positive control for the prover.

use fusion_common::{DataType, Value};
use fusion_engine::Session;
use fusion_exec::table::TableColumn;
use fusion_exec::TableBuilder;

fn orders_columns() -> Vec<TableColumn> {
    vec![
        TableColumn {
            name: "o_id".into(),
            data_type: DataType::Int64,
            nullable: false,
        },
        TableColumn {
            name: "o_cust".into(),
            data_type: DataType::Int64,
            nullable: true,
        },
        TableColumn {
            name: "o_amt".into(),
            data_type: DataType::Int64,
            nullable: true,
        },
    ]
}

fn order_row(i: i64) -> Vec<Value> {
    vec![Value::Int64(i), Value::Int64(i % 5), Value::Int64((i % 9) * 10)]
}

const BASE_ROWS: i64 = 40;

fn orders_table(n: i64) -> fusion_exec::Table {
    let mut b = TableBuilder::new("orders", orders_columns());
    for i in 0..n {
        b.add_row(order_row(i)).unwrap();
    }
    b.build()
}

fn session() -> Session {
    let mut s = Session::new();
    s.register_table(orders_table(BASE_ROWS));
    s.set_parallelism(1);
    s
}

/// Accumulated prover/rewrite counters across a run.
#[derive(Default)]
struct Tally {
    issued: u64,
    rejected: u64,
    rewrites: u64,
}

impl Tally {
    fn add_metrics(&mut self, m: &fusion_exec::MetricsSnapshot, splices: u64) {
        self.issued += m.reuse_certificates_issued;
        self.rejected += m.reuse_certificates_rejected;
        self.rewrites += splices + m.subsumption_hits + m.reuse_cache_refreshes;
    }
}

/// Sweep exact-splice, fused-splice, subsumption, and refresh workloads
/// and assert every served rewrite carried a certificate while the
/// pristine corpus produced zero rejections.
#[test]
fn every_served_rewrite_carries_a_certificate() {
    let mut s = session();
    let mut tally = Tally::default();

    // 1. Exact group: identical pair shares one execution; each splice
    //    is an exact-splice certificate, admission a stamps certificate.
    let exact = "SELECT * FROM orders WHERE o_amt > 20";
    let batch = s.run_batch(&[exact, exact]).unwrap();
    assert!(batch.report.consumers_spliced() >= 2, "{:?}", batch.report);
    tally.add_metrics(&batch.metrics, batch.report.consumers_spliced() as u64);

    // 2. Fused group: near-matching filters fuse; each consumer splice
    //    discharges the mapping/compensation obligations.
    let f1 = "SELECT o_id FROM orders WHERE o_amt > 30";
    let f2 = "SELECT o_id FROM orders WHERE o_amt <= 30";
    let batch = s.run_batch(&[f1, f2]).unwrap();
    tally.add_metrics(&batch.metrics, batch.report.consumers_spliced() as u64);

    // 3. Subsumption: a strictly narrower consumer is served from the
    //    cached superset admitted in step 1 through its own filter.
    let narrower = "SELECT * FROM orders WHERE o_amt > 20 AND o_id < 25";
    let sub = s.sql(narrower).unwrap();
    assert!(
        sub.metrics.subsumption_hits >= 1,
        "narrower consumer should be served by subsumption: {:?}",
        sub.report.reuse
    );
    tally.add_metrics(&sub.metrics, sub.metrics.reuse_cache_hits);

    // 4. Incremental refresh: append, then re-run the exact query — the
    //    entry refreshes in place under a maintainability certificate.
    s.append_table("orders", (BASE_ROWS..BASE_ROWS + 10).map(order_row).collect())
        .unwrap();
    let warm = s.sql(exact).unwrap();
    assert!(
        warm.metrics.reuse_cache_refreshes >= 1,
        "append-only staleness should refresh: {:?}",
        warm.report.reuse
    );
    tally.add_metrics(&warm.metrics, warm.metrics.reuse_cache_hits);

    // 5. Mergeable aggregate refresh: COUNT/SUM(int)/MIN/MAX merge the
    //    delta group-wise under the same certificate.
    let agg = "SELECT o_cust, COUNT(*) AS c, SUM(o_amt) AS s, MIN(o_id) AS lo, MAX(o_id) AS hi \
               FROM orders GROUP BY o_cust";
    let batch = s.run_batch(&[agg, agg]).unwrap();
    tally.add_metrics(&batch.metrics, batch.report.consumers_spliced() as u64);
    s.append_table("orders", (BASE_ROWS + 10..BASE_ROWS + 21).map(order_row).collect())
        .unwrap();
    let merged = s.sql(agg).unwrap();
    assert!(
        merged.metrics.reuse_cache_refreshes >= 1,
        "mergeable aggregate should refresh: {:?}",
        merged.report.reuse
    );
    tally.add_metrics(&merged.metrics, merged.metrics.reuse_cache_hits);

    // The property: no served rewrite without a certificate, and no
    // false positives over the pristine corpus.
    assert!(tally.rewrites >= 5, "corpus exercised too few rewrites");
    assert!(
        tally.issued >= tally.rewrites,
        "every splice/subsumption/refresh must be certified: issued={} rewrites={}",
        tally.issued,
        tally.rewrites
    );
    assert_eq!(
        tally.rejected, 0,
        "pristine corpus must produce zero certificate rejections"
    );
}

/// Certified rewrites are visible in EXPLAIN ANALYZE: the workload-reuse
/// section carries the prover counters and the per-splice "certified"
/// markers.
#[test]
fn explain_analyze_renders_prover_counters() {
    let s = session();
    let exact = "SELECT * FROM orders WHERE o_amt > 20";
    s.run_batch(&[exact, exact]).unwrap();
    let text = s.explain_analyze(exact).unwrap();
    assert!(
        text.contains("-- workload reuse --"),
        "warm query should render the reuse section:\n{text}"
    );
    assert!(
        text.contains("certificates_issued="),
        "prover counters should render:\n{text}"
    );
}
