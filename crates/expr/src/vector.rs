//! Column-at-a-time expression evaluation over selection vectors.
//!
//! The row-based evaluator in [`crate::eval`] resolves one column value at
//! a time through a [`crate::eval::Resolver`]; the kernels here evaluate a
//! whole expression over a **selection vector** of row indices into shared
//! columnar arrays, visiting one expression node per *batch* instead of
//! per *row*. The push-based pipeline operator in the executor drives
//! every filter, projection and aggregate input through [`ColumnBatch`].
//!
//! Semantics are bit-identical to the scalar evaluator, including SQL
//! three-valued logic and short-circuit *evaluation sites*: `AND` does not
//! evaluate its right side for rows whose left side is `FALSE` (it does
//! for `NULL`, exactly like the scalar path), `CASE` evaluates each branch
//! only over the rows no earlier branch matched, and `IN` stops testing
//! list items for rows that already matched. A row the scalar evaluator
//! would never touch with a sub-expression is never touched here either,
//! so data-dependent type errors surface identically on both paths.
//!
//! The module also hosts the deterministic hash-key kernels shared by the
//! hash-join probe and hash-aggregate grouping: [`hash_key`] (row-wise)
//! and [`hash_columns`] (column-wise) compute the **same** function, and
//! [`HashedKey`] caches the hash alongside the key so probes hash once.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use fusion_common::{ColumnId, FusionError, Result, Value};

use crate::eval::{arith, cast, compare};
use crate::expr::{BinaryOp, Expr, ScalarFunc};

/// A batch of columnar arrays sharing one row-index domain, addressed by
/// the `ColumnId`s an expression references. Rows are selected by index;
/// the arrays themselves are borrowed, never copied.
#[derive(Debug, Default)]
pub struct ColumnBatch<'a> {
    columns: Vec<&'a [Value]>,
    positions: HashMap<ColumnId, usize>,
}

impl<'a> ColumnBatch<'a> {
    pub fn new() -> Self {
        ColumnBatch::default()
    }

    /// Register `column` as the array backing `id`. Later registrations
    /// of the same id win (mirroring shadowed projections).
    pub fn push(&mut self, id: ColumnId, column: &'a [Value]) {
        match self.positions.get(&id) {
            Some(&p) => self.columns[p] = column,
            None => {
                self.positions.insert(id, self.columns.len());
                self.columns.push(column);
            }
        }
    }

    fn column(&self, id: ColumnId) -> Result<&'a [Value]> {
        self.positions
            .get(&id)
            .map(|&p| self.columns[p])
            .ok_or_else(|| FusionError::Execution(format!("no column {id}")))
    }

    /// Evaluate `expr` for every row in `sel`; the result is aligned with
    /// `sel` (`out[i]` is the value for row `sel[i]`).
    pub fn eval(&self, expr: &Expr, sel: &[usize]) -> Result<Vec<Value>> {
        match expr {
            Expr::Column(id) => {
                let col = self.column(*id)?;
                Ok(sel.iter().map(|&r| col[r].clone()).collect())
            }
            Expr::Literal(v) => Ok(vec![v.clone(); sel.len()]),
            Expr::Binary { op, left, right } if *op == BinaryOp::And => {
                let lv = self.eval(left, sel)?;
                // Scalar AND skips the right side only when the left is
                // FALSE; NULL rows still evaluate it.
                let rest: Vec<usize> = sel
                    .iter()
                    .zip(&lv)
                    .filter(|(_, l)| l.as_bool() != Some(false))
                    .map(|(&r, _)| r)
                    .collect();
                let rv = self.eval(right, &rest)?;
                let mut rv = rv.into_iter();
                Ok(lv
                    .into_iter()
                    .map(|l| {
                        if l.as_bool() == Some(false) {
                            return Value::Boolean(false);
                        }
                        let r = rv.next().unwrap_or(Value::Null);
                        match (l.as_bool(), r.as_bool()) {
                            (_, Some(false)) => Value::Boolean(false),
                            (Some(true), Some(true)) => Value::Boolean(true),
                            _ => Value::Null,
                        }
                    })
                    .collect())
            }
            Expr::Binary { op, left, right } if *op == BinaryOp::Or => {
                let lv = self.eval(left, sel)?;
                let rest: Vec<usize> = sel
                    .iter()
                    .zip(&lv)
                    .filter(|(_, l)| l.as_bool() != Some(true))
                    .map(|(&r, _)| r)
                    .collect();
                let rv = self.eval(right, &rest)?;
                let mut rv = rv.into_iter();
                Ok(lv
                    .into_iter()
                    .map(|l| {
                        if l.as_bool() == Some(true) {
                            return Value::Boolean(true);
                        }
                        let r = rv.next().unwrap_or(Value::Null);
                        match (l.as_bool(), r.as_bool()) {
                            (_, Some(true)) => Value::Boolean(true),
                            (Some(false), Some(false)) => Value::Boolean(false),
                            _ => Value::Null,
                        }
                    })
                    .collect())
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let lv = self.eval(left, sel)?;
                let rv = self.eval(right, sel)?;
                lv.into_iter()
                    .zip(rv)
                    .map(|(l, r)| {
                        if l.is_null() || r.is_null() {
                            return Ok(Value::Null);
                        }
                        let ord = l.sql_cmp(&r).ok_or_else(|| {
                            FusionError::Type(format!("cannot compare {l} with {r}"))
                        })?;
                        Ok(Value::Boolean(compare(*op, ord)))
                    })
                    .collect()
            }
            Expr::Binary { op, left, right } => {
                let lv = self.eval(left, sel)?;
                let rv = self.eval(right, sel)?;
                lv.into_iter()
                    .zip(rv)
                    .map(|(l, r)| {
                        if l.is_null() || r.is_null() {
                            return Ok(Value::Null);
                        }
                        arith(*op, &l, &r)
                    })
                    .collect()
            }
            Expr::Not(e) => self
                .eval(e, sel)?
                .into_iter()
                .map(|v| match v {
                    Value::Null => Ok(Value::Null),
                    Value::Boolean(b) => Ok(Value::Boolean(!b)),
                    v => Err(FusionError::Type(format!("NOT applied to {v}"))),
                })
                .collect(),
            Expr::Negate(e) => self
                .eval(e, sel)?
                .into_iter()
                .map(|v| match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int64(i) => Ok(Value::Int64(-i)),
                    Value::Float64(f) => Ok(Value::Float64(-f)),
                    v => Err(FusionError::Type(format!("negation applied to {v}"))),
                })
                .collect(),
            Expr::IsNull(e) => Ok(self
                .eval(e, sel)?
                .into_iter()
                .map(|v| Value::Boolean(v.is_null()))
                .collect()),
            Expr::IsNotNull(e) => Ok(self
                .eval(e, sel)?
                .into_iter()
                .map(|v| Value::Boolean(!v.is_null()))
                .collect()),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let mut out = vec![Value::Null; sel.len()];
                // Output positions (indices into `sel`) no branch matched.
                let mut remaining: Vec<usize> = (0..sel.len()).collect();
                for (cond, value) in branches {
                    if remaining.is_empty() {
                        break;
                    }
                    let rows: Vec<usize> = remaining.iter().map(|&j| sel[j]).collect();
                    let conds = self.eval(cond, &rows)?;
                    let matched: Vec<usize> = remaining
                        .iter()
                        .zip(&conds)
                        .filter(|(_, c)| c.as_bool() == Some(true))
                        .map(|(&j, _)| j)
                        .collect();
                    if !matched.is_empty() {
                        let rows: Vec<usize> = matched.iter().map(|&j| sel[j]).collect();
                        let vals = self.eval(value, &rows)?;
                        for (&j, v) in matched.iter().zip(vals) {
                            out[j] = v;
                        }
                    }
                    remaining = remaining
                        .into_iter()
                        .zip(conds)
                        .filter(|(_, c)| c.as_bool() != Some(true))
                        .map(|(j, _)| j)
                        .collect();
                }
                if let (Some(e), false) = (else_expr, remaining.is_empty()) {
                    let rows: Vec<usize> = remaining.iter().map(|&j| sel[j]).collect();
                    let vals = self.eval(e, &rows)?;
                    for (j, v) in remaining.into_iter().zip(vals) {
                        out[j] = v;
                    }
                }
                Ok(out)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let scrutinee = self.eval(expr, sel)?;
                let mut out = vec![Value::Null; sel.len()];
                // NULL scrutinees are NULL without touching the list
                // (scalar semantics); everything else keeps testing items
                // until it matches.
                let mut remaining: Vec<usize> = scrutinee
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_null())
                    .map(|(j, _)| j)
                    .collect();
                let mut saw_null = vec![false; sel.len()];
                for item in list {
                    if remaining.is_empty() {
                        break;
                    }
                    let rows: Vec<usize> = remaining.iter().map(|&j| sel[j]).collect();
                    let items = self.eval(item, &rows)?;
                    let mut still = Vec::with_capacity(remaining.len());
                    for (&j, iv) in remaining.iter().zip(&items) {
                        match scrutinee[j].sql_cmp(iv) {
                            Some(Ordering::Equal) => out[j] = Value::Boolean(!negated),
                            other => {
                                if other.is_none() {
                                    saw_null[j] = true;
                                }
                                still.push(j);
                            }
                        }
                    }
                    remaining = still;
                }
                for j in remaining {
                    out[j] = if saw_null[j] {
                        Value::Null
                    } else {
                        Value::Boolean(*negated)
                    };
                }
                Ok(out)
            }
            Expr::Cast { expr, to } => self
                .eval(expr, sel)?
                .into_iter()
                .map(|v| cast(v, *to))
                .collect(),
            Expr::ScalarFunction { func, args } => match func {
                ScalarFunc::Coalesce => {
                    let mut out = vec![Value::Null; sel.len()];
                    let mut remaining: Vec<usize> = (0..sel.len()).collect();
                    for a in args {
                        if remaining.is_empty() {
                            break;
                        }
                        let rows: Vec<usize> = remaining.iter().map(|&j| sel[j]).collect();
                        let vals = self.eval(a, &rows)?;
                        let mut still = Vec::with_capacity(remaining.len());
                        for (&j, v) in remaining.iter().zip(vals) {
                            if v.is_null() {
                                still.push(j);
                            } else {
                                out[j] = v;
                            }
                        }
                        remaining = still;
                    }
                    Ok(out)
                }
                ScalarFunc::Abs => {
                    let vals = match args.first() {
                        Some(a) => self.eval(a, sel)?,
                        None => vec![Value::Null; sel.len()],
                    };
                    vals.into_iter()
                        .map(|v| match v {
                            Value::Int64(i) => Ok(Value::Int64(i.abs())),
                            Value::Float64(f) => Ok(Value::Float64(f.abs())),
                            Value::Null => Ok(Value::Null),
                            other => {
                                Err(FusionError::Type(format!("ABS applied to {other}")))
                            }
                        })
                        .collect()
                }
            },
        }
    }

    /// Narrow `sel` to the rows where `expr` is TRUE (SQL filter
    /// semantics: NULL drops the row). Short-circuiting lives in
    /// [`ColumnBatch::eval`], so the evaluation sites match the scalar
    /// path exactly.
    pub fn filter(&self, expr: &Expr, sel: &[usize]) -> Result<Vec<usize>> {
        let vals = self.eval(expr, sel)?;
        Ok(sel
            .iter()
            .zip(vals)
            .filter(|(_, v)| v.as_bool() == Some(true))
            .map(|(&r, _)| r)
            .collect())
    }
}

/// FNV-1a offset basis / prime for key-hash folding.
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const HASH_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic hash of one value (`DefaultHasher` with its fixed keys;
/// [`Value`]'s `Hash` impl normalizes floats so `1.0` and `1` collide
/// consistently across the scalar and columnar paths).
pub fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Row-wise key hash: fold the per-value hashes FNV-1a style. The scalar
/// twin of [`hash_columns`].
pub fn hash_key(key: &[Value]) -> u64 {
    key.iter().fold(HASH_SEED, |h, v| {
        (h ^ hash_value(v)).wrapping_mul(HASH_PRIME)
    })
}

/// Column-wise key hashes for every row in `sel`: one pass per key
/// column, folding into the accumulator exactly as [`hash_key`] does, so
/// `hash_columns(cols, sel)[i] == hash_key(&row_key(sel[i]))`.
pub fn hash_columns(cols: &[&[Value]], sel: &[usize]) -> Vec<u64> {
    let mut out = vec![HASH_SEED; sel.len()];
    for col in cols {
        for (h, &r) in out.iter_mut().zip(sel) {
            *h = (*h ^ hash_value(&col[r])).wrapping_mul(HASH_PRIME);
        }
    }
    out
}

/// A join/group key carrying its precomputed hash: `Hash` writes only the
/// cached `u64` (so probe-side hashing is one `write_u64`), equality
/// compares the key values.
#[derive(Debug, Clone)]
pub struct HashedKey {
    pub hash: u64,
    pub key: Vec<Value>,
}

impl HashedKey {
    pub fn new(key: Vec<Value>) -> Self {
        let hash = hash_key(&key);
        HashedKey { hash, key }
    }

    /// Wrap a key whose hash was already computed (e.g. by
    /// [`hash_columns`]). The caller guarantees `hash == hash_key(&key)`.
    pub fn with_hash(hash: u64, key: Vec<Value>) -> Self {
        HashedKey { hash, key }
    }
}

impl PartialEq for HashedKey {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for HashedKey {}

impl Hash for HashedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Resolver};
    use crate::expr::{col, lit};

    /// Resolver over the same columns a `ColumnBatch` sees, for
    /// scalar/columnar equivalence checks.
    struct RowView<'a> {
        cols: &'a [(ColumnId, Vec<Value>)],
        row: usize,
    }
    impl Resolver for RowView<'_> {
        fn value(&self, id: ColumnId) -> Result<Value> {
            self.cols
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, c)| c[self.row].clone())
                .ok_or_else(|| FusionError::Execution(format!("no column {id}")))
        }
    }

    fn batch(cols: &[(ColumnId, Vec<Value>)]) -> ColumnBatch<'_> {
        let mut b = ColumnBatch::new();
        for (id, c) in cols {
            b.push(*id, c);
        }
        b
    }

    fn ints(vals: &[Option<i64>]) -> Vec<Value> {
        vals.iter()
            .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
            .collect()
    }

    #[test]
    fn vector_eval_matches_scalar_row_by_row() {
        let cols = vec![
            (ColumnId(1), ints(&[Some(1), None, Some(3), Some(-4)])),
            (
                ColumnId(2),
                vec![
                    Value::Utf8("a".into()),
                    Value::Utf8("b".into()),
                    Value::Null,
                    Value::Utf8("a".into()),
                ],
            ),
        ];
        let exprs = vec![
            col(ColumnId(1)).gt(lit(1i64)).and(col(ColumnId(2)).eq_to(lit("a"))),
            col(ColumnId(1)).is_null().or(col(ColumnId(2)).eq_to(lit("b"))),
            col(ColumnId(1)).add(lit(10i64)).mul(col(ColumnId(1))),
            Expr::Case {
                branches: vec![
                    (col(ColumnId(1)).lt(lit(0i64)), lit("neg")),
                    (col(ColumnId(1)).gt(lit(1i64)), lit("big")),
                ],
                else_expr: Some(Box::new(col(ColumnId(2)))),
            },
            Expr::InList {
                expr: Box::new(col(ColumnId(1))),
                list: vec![lit(3i64), Expr::Literal(Value::Null), lit(1i64)],
                negated: true,
            },
        ];
        let b = batch(&cols);
        let sel: Vec<usize> = (0..4).collect();
        for e in &exprs {
            let vec_vals = b.eval(e, &sel).expect("vector eval");
            for (i, &r) in sel.iter().enumerate() {
                let scalar = eval(e, &RowView { cols: &cols, row: r }).expect("scalar eval");
                assert_eq!(vec_vals[i], scalar, "row {r} of {e:?}");
            }
        }
    }

    #[test]
    fn filter_keeps_only_true_rows() {
        let cols = vec![(ColumnId(1), ints(&[Some(1), None, Some(3), Some(5)]))];
        let b = batch(&cols);
        let sel: Vec<usize> = (0..4).collect();
        let kept = b
            .filter(&col(ColumnId(1)).gt(lit(1i64)), &sel)
            .expect("filter");
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn and_short_circuit_skips_right_on_false_left() {
        // Right side divides by the column; scalar AND never evaluates it
        // when the left is FALSE, and neither may the vectorized path.
        let cols = vec![(ColumnId(1), ints(&[Some(0), Some(2)]))];
        let b = batch(&cols);
        let e = col(ColumnId(1))
            .gt(lit(0i64))
            .and(lit(10i64).div(col(ColumnId(1))).gt(lit(1i64)));
        let vals = b.eval(&e, &[0, 1]).expect("eval");
        assert_eq!(vals[0], Value::Boolean(false));
        assert_eq!(vals[1], Value::Boolean(true));
    }

    #[test]
    fn columnar_hashes_match_scalar_hashes() {
        let c1 = ints(&[Some(1), None, Some(3)]);
        let c2 = vec![
            Value::Utf8("x".into()),
            Value::Float64(2.5),
            Value::Null,
        ];
        let cols: Vec<&[Value]> = vec![&c1, &c2];
        let sel = vec![0, 1, 2];
        let columnar = hash_columns(&cols, &sel);
        for (i, &r) in sel.iter().enumerate() {
            let key = vec![c1[r].clone(), c2[r].clone()];
            assert_eq!(columnar[i], hash_key(&key), "row {r}");
            assert_eq!(
                HashedKey::new(key.clone()),
                HashedKey::with_hash(columnar[i], key)
            );
        }
    }

    #[test]
    fn int_and_equal_float_hash_identically() {
        // Value's Hash normalizes integral floats, so mixed-type keys
        // land in the same bucket on both paths.
        assert_eq!(
            hash_key(&[Value::Int64(7)]),
            hash_key(&[Value::Float64(7.0)])
        );
    }
}
