//! Deterministic fault injection for table scans.
//!
//! Production engines see transient storage failures constantly; the paper's
//! setting (Athena reading S3) makes retry-with-backoff and graceful
//! degradation first-class concerns. This module lets tests *schedule*
//! faults deterministically: a [`FaultPolicy`] decides, as a pure function
//! of `(seed, table, partition, attempt)`, whether a given read attempt
//! fails. The same seed always produces the same fault schedule, so a
//! property test can assert that fused and unfused plans survive identical
//! storm patterns.
//!
//! Two fault classes exist, mirroring the retryable/fatal taxonomy in
//! [`fusion_common::error`]:
//!
//! * **Transient read failures** ([`FusionError::TransientIo`]) — injected
//!   with probability `transient_failure_rate` per `(table, partition,
//!   attempt)`. Because the decision re-hashes the attempt number, a retry
//!   of the same partition can succeed — exactly like a flaky object store.
//! * **Poison partitions** ([`FusionError::DataCorruption`]) — partitions
//!   listed in `poison` fail *every* attempt with a fatal error. Retrying
//!   cannot help; only plan-level degradation or caller intervention can.

use std::collections::HashSet;
use std::time::Duration;

use fusion_common::FusionError;

/// Deterministic fault schedule for scans. Cheap to clone; carried by
/// `ExecContext`.
#[derive(Debug, Clone, Default)]
pub struct FaultPolicy {
    /// Seed for the fault schedule. Two policies with the same seed and
    /// rates inject identical faults.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given `(table, partition, attempt)`
    /// read fails with a retryable [`FusionError::TransientIo`].
    pub transient_failure_rate: f64,
    /// Synthetic latency added to every partition read (simulates slow
    /// storage so deadline enforcement can be tested without huge data).
    pub read_latency: Duration,
    /// `(table, partition)` pairs that always fail with
    /// [`FusionError::DataCorruption`].
    pub poison: HashSet<(String, usize)>,
}

impl FaultPolicy {
    /// A policy injecting transient failures at `rate` under `seed`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPolicy {
            seed,
            transient_failure_rate: rate,
            ..FaultPolicy::default()
        }
    }

    /// Mark a `(table, partition)` as poisoned (fatally corrupt).
    pub fn with_poison(mut self, table: &str, partition: usize) -> Self {
        self.poison.insert((table.to_string(), partition));
        self
    }

    /// Add synthetic per-partition read latency.
    pub fn with_read_latency(mut self, latency: Duration) -> Self {
        self.read_latency = latency;
        self
    }

    /// Whether this policy can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.transient_failure_rate > 0.0
            || !self.poison.is_empty()
            || !self.read_latency.is_zero()
    }

    /// Decide the fate of read `attempt` (0-based) of `partition` of
    /// `table`. `Ok(())` means the read proceeds. Deterministic: the same
    /// inputs always return the same result.
    pub fn inject(&self, table: &str, partition: usize, attempt: u32) -> Result<(), FusionError> {
        if self.poison.contains(&(table.to_string(), partition)) {
            return Err(FusionError::DataCorruption(format!(
                "poisoned partition {partition} of table '{table}'"
            )));
        }
        if self.transient_failure_rate > 0.0 {
            // splitmix64-style avalanche over the (seed, table, partition,
            // attempt) tuple; uniform enough for a failure-rate threshold.
            let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
            for b in table.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            h ^= (partition as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= (attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.transient_failure_rate {
                return Err(FusionError::TransientIo(format!(
                    "injected read failure: table '{table}' partition {partition} attempt {attempt}"
                )));
            }
        }
        Ok(())
    }
}

/// Retry-with-exponential-backoff parameters for transient scan failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries = 3` allows four
    /// attempts total).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Small absolute values keep fault-injection tests fast while the
        // exponential shape stays observable.
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = self.multiplier.powi(retry.saturating_sub(1) as i32);
        let nanos = self.initial_backoff.as_nanos() as f64 * factor;
        Duration::from_nanos(nanos.min(self.max_backoff.as_nanos() as f64) as u64)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let a = FaultPolicy::transient(42, 0.3);
        let b = FaultPolicy::transient(42, 0.3);
        for p in 0..64 {
            for attempt in 0..4 {
                assert_eq!(
                    a.inject("store_sales", p, attempt).is_ok(),
                    b.inject("store_sales", p, attempt).is_ok()
                );
            }
        }
    }

    #[test]
    fn rate_roughly_respected_and_attempts_reroll() {
        let p = FaultPolicy::transient(7, 0.5);
        let fails = (0..1000)
            .filter(|&i| p.inject("t", i, 0).is_err())
            .count();
        assert!((300..700).contains(&fails), "got {fails} failures at rate 0.5");
        // At least one partition that failed attempt 0 succeeds on a retry.
        let recovered = (0..1000).any(|i| {
            p.inject("t", i, 0).is_err()
                && (1..4).any(|a| p.inject("t", i, a).is_ok())
        });
        assert!(recovered);
    }

    #[test]
    fn zero_rate_never_fails() {
        let p = FaultPolicy::transient(1, 0.0);
        assert!(!p.is_active());
        assert!((0..100).all(|i| p.inject("t", i, 0).is_ok()));
    }

    #[test]
    fn poison_is_fatal_on_every_attempt() {
        let p = FaultPolicy::default().with_poison("t", 3);
        for attempt in 0..8 {
            match p.inject("t", 3, attempt) {
                Err(e) => assert!(!e.is_retryable(), "poison must be fatal"),
                Ok(()) => panic!("poisoned partition must fail"),
            }
        }
        assert!(p.inject("t", 2, 0).is_ok());
        assert!(p.inject("u", 3, 0).is_ok());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff(1), Duration::from_millis(1));
        assert_eq!(r.backoff(2), Duration::from_millis(2));
        assert_eq!(r.backoff(3), Duration::from_millis(4));
        assert_eq!(r.backoff(20), Duration::from_millis(50));
    }
}
