//! Pure scalar expression planning.
//!
//! Subqueries, aggregates and window functions are *not* planned here:
//! `select.rs` extracts them first (planning their relational parts and
//! extending the FROM relation), records a substitution from the AST node
//! to a column, and then calls into this module with that substitution
//! list.

use fusion_common::{DataType, FusionError, Result, Value};
use fusion_expr::{BinaryOp, Expr, ScalarFunc};

use crate::ast::{AstBinaryOp, AstExpr};

use super::scope::Scope;

/// Plan an expression with a substitution list (AST-equal nodes are
/// replaced by the recorded expressions before anything else).
pub(crate) fn plan_expr(
    ast: &AstExpr,
    scope: &Scope,
    subst: &[(AstExpr, Expr)],
) -> Result<Expr> {
    if let Some((_, e)) = subst.iter().find(|(a, _)| a == ast) {
        return Ok(e.clone());
    }
    match ast {
        AstExpr::Ident(parts) => Ok(Expr::Column(scope.resolve(parts)?)),
        AstExpr::Number(n) => Ok(Expr::Literal(parse_number(n)?)),
        AstExpr::String(s) => Ok(Expr::Literal(Value::Utf8(s.clone()))),
        AstExpr::Bool(b) => Ok(Expr::Literal(Value::Boolean(*b))),
        AstExpr::Null => Ok(Expr::Literal(Value::Null)),
        AstExpr::Binary { op, left, right } => {
            let l = plan_expr(left, scope, subst)?;
            let r = plan_expr(right, scope, subst)?;
            Ok(Expr::Binary {
                op: binop(*op),
                left: Box::new(l),
                right: Box::new(r),
            })
        }
        AstExpr::Not(e) => Ok(Expr::Not(Box::new(plan_expr(e, scope, subst)?))),
        AstExpr::Negate(e) => Ok(Expr::Negate(Box::new(plan_expr(e, scope, subst)?))),
        AstExpr::IsNull { expr, negated } => {
            let e = plan_expr(expr, scope, subst)?;
            Ok(if *negated { e.is_not_null() } else { e.is_null() })
        }
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = plan_expr(expr, scope, subst)?;
            let lo = plan_expr(low, scope, subst)?;
            let hi = plan_expr(high, scope, subst)?;
            let range = e.clone().gt_eq(lo).and(e.lt_eq(hi));
            Ok(if *negated { range.negated() } else { range })
        }
        AstExpr::InList {
            expr,
            list,
            negated,
        } => {
            let e = plan_expr(expr, scope, subst)?;
            let items = list
                .iter()
                .map(|i| plan_expr(i, scope, subst))
                .collect::<Result<Vec<_>>>()?;
            Ok(Expr::InList {
                expr: Box::new(e),
                list: items,
                negated: *negated,
            })
        }
        AstExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            // Simple CASE desugars to the searched form.
            let op_expr = operand
                .as_ref()
                .map(|o| plan_expr(o, scope, subst))
                .transpose()?;
            let planned: Result<Vec<(Expr, Expr)>> = branches
                .iter()
                .map(|(c, v)| {
                    let cond = plan_expr(c, scope, subst)?;
                    let cond = match &op_expr {
                        Some(o) => o.clone().eq_to(cond),
                        None => cond,
                    };
                    Ok((cond, plan_expr(v, scope, subst)?))
                })
                .collect();
            Ok(Expr::Case {
                branches: planned?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| plan_expr(e, scope, subst).map(Box::new))
                    .transpose()?,
            })
        }
        AstExpr::Cast { expr, ty } => Ok(Expr::Cast {
            expr: Box::new(plan_expr(expr, scope, subst)?),
            to: cast_type(ty)?,
        }),
        AstExpr::Function {
            name,
            args,
            distinct: false,
            filter: None,
            over: None,
        } if scalar_func(name).is_some() => {
            let func = scalar_func(name).expect("checked");
            let planned = args
                .iter()
                .map(|a| plan_expr(a, scope, subst))
                .collect::<Result<Vec<_>>>()?;
            if planned.is_empty() {
                return Err(FusionError::Sql(format!("{name} requires arguments")));
            }
            Ok(Expr::ScalarFunction {
                func,
                args: planned,
            })
        }
        AstExpr::Function { name, over, .. } => Err(FusionError::Sql(format!(
            "function `{name}`{} not allowed in this context",
            if over.is_some() { " OVER" } else { "" }
        ))),
        AstExpr::InSubquery { .. } => Err(FusionError::Sql(
            "IN (subquery) is only supported as a top-level WHERE conjunct".into(),
        )),
        AstExpr::ScalarSubquery(_) => Err(FusionError::Sql(
            "scalar subquery not resolved before expression planning".into(),
        )),
        AstExpr::Star => Err(FusionError::Sql("`*` outside COUNT(*)".into())),
    }
}

/// Plan an expression that may only reference output columns (ORDER BY).
/// Output columns lose their table qualifiers, so a qualified reference
/// (`t.r`) falls back to unqualified resolution of its column name.
pub(crate) fn plan_output_expr(ast: &AstExpr, scope: &Scope) -> Result<Expr> {
    let unqualified = ast.clone().map_idents(&|parts: &Vec<String>| {
        if parts.len() == 2 && !scope.can_resolve(parts) {
            vec![parts[1].clone()]
        } else {
            parts.clone()
        }
    });
    plan_expr(&unqualified, scope, &[])
}

/// Plan a scalar expression with no substitutions (join ON conditions).
pub(crate) fn plan_scalar(ast: &AstExpr, scope: &Scope) -> Result<Expr> {
    plan_expr(ast, scope, &[])
}

pub(crate) fn parse_number(n: &str) -> Result<Value> {
    if n.contains('.') || n.contains('e') || n.contains('E') {
        n.parse::<f64>()
            .map(Value::Float64)
            .map_err(|_| FusionError::Sql(format!("invalid number `{n}`")))
    } else {
        n.parse::<i64>()
            .map(Value::Int64)
            .map_err(|_| FusionError::Sql(format!("invalid number `{n}`")))
    }
}

pub(crate) fn cast_type(ty: &str) -> Result<DataType> {
    match ty.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => Ok(DataType::Int64),
        "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(DataType::Float64),
        "VARCHAR" | "CHAR" | "STRING" | "TEXT" => Ok(DataType::Utf8),
        "DATE" => Ok(DataType::Date),
        "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
        other => Err(FusionError::Sql(format!("unsupported cast type `{other}`"))),
    }
}

fn scalar_func(name: &str) -> Option<ScalarFunc> {
    match name.to_ascii_uppercase().as_str() {
        "COALESCE" => Some(ScalarFunc::Coalesce),
        "ABS" => Some(ScalarFunc::Abs),
        _ => None,
    }
}

fn binop(op: AstBinaryOp) -> BinaryOp {
    match op {
        AstBinaryOp::Eq => BinaryOp::Eq,
        AstBinaryOp::NotEq => BinaryOp::NotEq,
        AstBinaryOp::Lt => BinaryOp::Lt,
        AstBinaryOp::LtEq => BinaryOp::LtEq,
        AstBinaryOp::Gt => BinaryOp::Gt,
        AstBinaryOp::GtEq => BinaryOp::GtEq,
        AstBinaryOp::Plus => BinaryOp::Plus,
        AstBinaryOp::Minus => BinaryOp::Minus,
        AstBinaryOp::Multiply => BinaryOp::Multiply,
        AstBinaryOp::Divide => BinaryOp::Divide,
        AstBinaryOp::Modulo => BinaryOp::Modulo,
        AstBinaryOp::And => BinaryOp::And,
        AstBinaryOp::Or => BinaryOp::Or,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::ast::{SelectItem, SetExpr};
    use fusion_common::ColumnId;
    use super::super::scope::ScopeItem;

    fn scope() -> Scope {
        Scope {
            items: vec![
                ScopeItem {
                    qualifier: Some("t".into()),
                    name: "a".into(),
                    id: ColumnId(1),
                },
                ScopeItem {
                    qualifier: Some("t".into()),
                    name: "b".into(),
                    id: ColumnId(2),
                },
            ],
        }
    }

    fn first_select_expr(sql: &str) -> AstExpr {
        let q = parse(sql).unwrap();
        match q.body {
            SetExpr::Select(s) => match &s.projection[0] {
                SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn plans_arithmetic_and_comparison() {
        let ast = first_select_expr("SELECT a + b * 2 > 10");
        let e = plan_scalar(&ast, &scope()).unwrap();
        assert_eq!(e.to_string(), "((#1 + (#2 * 2)) > 10)");
    }

    #[test]
    fn between_desugars() {
        let ast = first_select_expr("SELECT a BETWEEN 1 AND 20");
        let e = plan_scalar(&ast, &scope()).unwrap();
        assert_eq!(e.to_string(), "((#1 >= 1) AND (#1 <= 20))");
    }

    #[test]
    fn simple_case_desugars_to_searched() {
        let ast = first_select_expr("SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END");
        let e = plan_scalar(&ast, &scope()).unwrap();
        assert!(e.to_string().contains("(#1 = 1)"));
    }

    #[test]
    fn substitution_replaces_ast_nodes() {
        let ast = first_select_expr("SELECT SUM(a) + 1");
        let sum_node = match &ast {
            AstExpr::Binary { left, .. } => left.as_ref().clone(),
            _ => panic!(),
        };
        let subst = vec![(sum_node, fusion_expr::col(ColumnId(99)))];
        let e = plan_expr(&ast, &scope(), &subst).unwrap();
        assert_eq!(e.to_string(), "(#99 + 1)");
    }

    #[test]
    fn unresolved_subquery_errors() {
        let ast = first_select_expr("SELECT (SELECT 1)");
        assert!(plan_scalar(&ast, &scope()).is_err());
    }

    #[test]
    fn number_parsing() {
        assert_eq!(parse_number("42").unwrap(), Value::Int64(42));
        assert_eq!(parse_number("0.5").unwrap(), Value::Float64(0.5));
        assert!(parse_number("abc").is_err());
    }
}
