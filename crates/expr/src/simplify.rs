//! Expression simplification.
//!
//! Fusion produces expressions like `C OR C`, `mask AND TRUE`, or
//! `(tag=1 AND L) OR (tag=2 AND R)` with contradictory `L AND R`; the
//! optimizer runs this pass over every rewritten plan so fused results stay
//! clean. Because fusion emits only standard operators, this pass needs no
//! fusion-specific cases — exactly the composability argument of the paper.

use std::cmp::Ordering;

use fusion_common::Value;

use crate::eval;
use crate::expr::{conjoin, disjoin, split_conjuncts, split_disjuncts, BinaryOp, Expr};

/// Simplify an expression: constant folding, boolean algebra
/// (TRUE/FALSE/duplicate elimination in AND/OR chains), double negation,
/// and trivial CASE reduction. AND/OR chains are flattened and their
/// operands put in a canonical deterministic order, so two predicates
/// built from the same bag of conjuncts simplify to equal expressions —
/// the property plan fingerprinting and `equiv` build on.
///
/// This pass is sound under full Kleene three-valued semantics: for every
/// row, `eval(simplify(e)) == eval(e)` exactly — including NULL results.
/// It therefore does NOT fold contradictory conjunctions to FALSE
/// (`x > 5 AND x < 3` is NULL, not FALSE, when `x` is NULL); use
/// [`simplify_filter`] for predicates in null-rejecting positions.
pub fn simplify(expr: &Expr) -> Expr {
    expr.transform(&simplify_node)
}

/// Simplify a predicate used where NULL and FALSE coincide — filter
/// predicates, join conditions, aggregate masks. On top of [`simplify`],
/// folds unsatisfiable conjunctions to FALSE along the AND/OR spine of the
/// predicate (never under NOT or inside comparisons, where the NULL≡FALSE
/// equivalence stops holding).
pub fn simplify_filter(expr: &Expr) -> Expr {
    fold_null_rejecting(&simplify(expr))
}

/// Top-down contradiction folding, restricted to positions reachable
/// through AND/OR only. AND and OR are monotone in Kleene logic, so
/// replacing a never-TRUE subtree (NULL-or-FALSE valued) with literal
/// FALSE cannot change whether the whole predicate accepts a row.
fn fold_null_rejecting(e: &Expr) -> Expr {
    match e {
        Expr::Binary {
            op: BinaryOp::And, ..
        } => {
            let conjuncts: Vec<Expr> = split_conjuncts(e).iter().map(fold_null_rejecting).collect();
            if conjuncts.iter().any(Expr::is_false_literal) || conjuncts_contradict(&conjuncts) {
                return Expr::boolean(false);
            }
            conjoin(conjuncts)
        }
        Expr::Binary {
            op: BinaryOp::Or, ..
        } => {
            let disjuncts: Vec<Expr> = split_disjuncts(e)
                .iter()
                .map(fold_null_rejecting)
                .filter(|d| !d.is_false_literal())
                .collect();
            disjoin(disjuncts)
        }
        other => other.clone(),
    }
}

fn simplify_node(e: Expr) -> Option<Expr> {
    match &e {
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => Some(simplify_and(&e)),
            BinaryOp::Or => Some(simplify_or(&e)),
            _ => fold_binary(*op, left, right),
        },
        Expr::Not(inner) => match inner.as_ref() {
            Expr::Literal(Value::Boolean(b)) => Some(Expr::boolean(!b)),
            Expr::Literal(Value::Null) => Some(Expr::Literal(Value::Null)),
            Expr::Not(inner2) => Some(inner2.as_ref().clone()),
            _ => None,
        },
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Literal(v) => Some(Expr::boolean(v.is_null())),
            _ => None,
        },
        Expr::IsNotNull(inner) => match inner.as_ref() {
            Expr::Literal(v) => Some(Expr::boolean(!v.is_null())),
            _ => None,
        },
        Expr::Case {
            branches,
            else_expr,
        } => simplify_case(branches, else_expr.as_deref()),
        Expr::Cast { expr, to } => match expr.as_ref() {
            Expr::Literal(v) => eval::cast(v.clone(), *to).ok().map(Expr::Literal),
            _ => None,
        },
        _ => None,
    }
}

fn fold_binary(op: BinaryOp, left: &Expr, right: &Expr) -> Option<Expr> {
    if let (Expr::Literal(_), Expr::Literal(_)) = (left, right) {
        let e = Expr::Binary {
            op,
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
        };
        let no_columns = |_: fusion_common::ColumnId| -> fusion_common::Result<Value> {
            Err(fusion_common::FusionError::Internal("no columns".into()))
        };
        return eval::eval(&e, &no_columns).ok().map(Expr::Literal);
    }
    None
}

/// Deterministic total order for AND/OR operand lists.
///
/// Conjunct/disjunct chains are *bags*: their evaluation is
/// order-insensitive under Kleene semantics, so we are free to pick one
/// canonical order. Sorting by the rendered form makes structurally
/// identical predicates compare `==` regardless of how the planner or a
/// fusion rule happened to assemble them — which is what plan
/// fingerprinting and the `out.contains` dedup above rely on. The
/// rendered form is a faithful serialization (ids, ops and literals all
/// print), so ties only occur between structurally equal expressions.
pub(crate) fn order_operands(ops: &mut [Expr]) {
    ops.sort_by_key(|e| e.to_string());
}

fn simplify_and(e: &Expr) -> Expr {
    let mut out: Vec<Expr> = Vec::new();
    for c in split_conjuncts(e) {
        if c.is_true_literal() {
            continue;
        }
        if c.is_false_literal() {
            return Expr::boolean(false);
        }
        if !out.contains(&c) {
            out.push(c);
        }
    }
    order_operands(&mut out);
    // Absorption: `A AND (A OR B) = A` (valid in Kleene logic). The n-ary
    // fusion fold produces exactly these shapes when it repeatedly ANDs a
    // branch's filter with the growing disjunction of all branches.
    let snapshot = out.clone();
    out.retain(|c| {
        if let Expr::Binary {
            op: BinaryOp::Or, ..
        } = c
        {
            let disjuncts = split_disjuncts(c);
            // Drop `c` if some other conjunct is one of its disjuncts or
            // implies one of them (conjunction subset).
            !snapshot.iter().any(|other| {
                other != c
                    && disjuncts.iter().any(|d| {
                        d == other || split_conjuncts(d).iter().all(|dc| {
                            snapshot.iter().any(|o2| o2 != c && o2 == dc)
                        })
                    })
            })
        } else {
            true
        }
    });
    conjoin(out)
}

fn simplify_or(e: &Expr) -> Expr {
    let mut out: Vec<Expr> = Vec::new();
    for d in split_disjuncts(e) {
        if d.is_false_literal() {
            continue;
        }
        if d.is_true_literal() {
            return Expr::boolean(true);
        }
        if !out.contains(&d) {
            out.push(d);
        }
    }
    order_operands(&mut out);
    factor_common_conjuncts(out)
}

/// `(A AND B) OR (A AND C)` → `A AND (B OR C)` — sound under Kleene
/// three-valued logic (distributivity holds). Fusion produces exactly
/// this shape when disjoining per-branch filters that share predicates;
/// factoring lets the shared part push down to the scans.
fn factor_common_conjuncts(disjuncts: Vec<Expr>) -> Expr {
    if disjuncts.len() < 2 {
        return disjoin(disjuncts);
    }
    let per_disjunct: Vec<Vec<Expr>> = disjuncts.iter().map(split_conjuncts).collect();
    let mut common: Vec<Expr> = per_disjunct[0].clone();
    for cs in &per_disjunct[1..] {
        common.retain(|c| cs.contains(c));
    }
    if common.is_empty() {
        return disjoin(disjuncts);
    }
    let remainders: Vec<Expr> = per_disjunct
        .into_iter()
        .map(|cs| {
            conjoin(
                cs.into_iter()
                    .filter(|c| !common.contains(c))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    // TRUE remainder means one disjunct was exactly the common part:
    // absorption collapses the whole disjunction to it.
    let rest = if remainders.iter().any(|r| r.is_true_literal()) {
        Expr::boolean(true)
    } else {
        let mut unique = Vec::new();
        for r in remainders {
            if !unique.contains(&r) {
                unique.push(r);
            }
        }
        disjoin(unique)
    };
    if rest.is_true_literal() {
        order_operands(&mut common);
        conjoin(common)
    } else {
        common.push(rest);
        order_operands(&mut common);
        conjoin(common)
    }
}

fn simplify_case(branches: &[(Expr, Expr)], else_expr: Option<&Expr>) -> Option<Expr> {
    // Drop branches with literal-FALSE conditions; stop at literal-TRUE.
    let mut kept: Vec<(Expr, Expr)> = Vec::new();
    for (c, v) in branches {
        if c.is_false_literal() {
            continue;
        }
        if c.is_true_literal() {
            if kept.is_empty() {
                return Some(v.clone());
            }
            return Some(Expr::Case {
                branches: kept,
                else_expr: Some(Box::new(v.clone())),
            });
        }
        kept.push((c.clone(), v.clone()));
    }
    if kept.is_empty() {
        return Some(
            else_expr
                .cloned()
                .unwrap_or(Expr::Literal(Value::Null)),
        );
    }
    if kept.len() == branches.len() {
        return None; // nothing changed
    }
    Some(Expr::Case {
        branches: kept,
        else_expr: else_expr.map(|e| Box::new(e.clone())),
    })
}

/// Best-effort check whether `expr` is unsatisfiable (`expr ≡ FALSE`).
///
/// This is the test used by the UnionAll fusion rule to pick its simplified
/// form when the two compensating filters are mutually exclusive
/// (`L AND R ≡ FALSE`). It understands literal FALSE and single-column
/// interval/equality contradictions within a conjunction.
pub fn is_contradiction(expr: &Expr) -> bool {
    let s = simplify_filter(expr);
    if s.is_false_literal() {
        return true;
    }
    conjuncts_contradict(&split_conjuncts(&s))
}

/// Interval analysis over a conjunct list: per column, intersect the ranges
/// implied by comparisons against literals; empty intersection means the
/// conjunction can never be TRUE.
fn conjuncts_contradict(conjuncts: &[Expr]) -> bool {
    use std::collections::HashMap;

    #[derive(Clone)]
    struct Range {
        lo: Option<(Value, bool)>, // (bound, inclusive)
        hi: Option<(Value, bool)>,
        not_eq: Vec<Value>,
        in_set: Option<Vec<Value>>,
    }
    impl Range {
        fn new() -> Self {
            Range {
                lo: None,
                hi: None,
                not_eq: vec![],
                in_set: None,
            }
        }
        fn empty(&self) -> bool {
            if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (&self.lo, &self.hi) {
                match lo.sql_cmp(hi) {
                    Some(Ordering::Greater) => return true,
                    Some(Ordering::Equal) if !(*lo_inc && *hi_inc) => return true,
                    None => return false, // incomparable types: stay safe
                    _ => {}
                }
            }
            if let Some(set) = &self.in_set {
                let feasible = set.iter().any(|v| self.admits(v));
                if !feasible {
                    return true;
                }
            }
            // Point range excluded by a NotEq.
            if let (Some((lo, true)), Some((hi, true))) = (&self.lo, &self.hi) {
                if lo.sql_cmp(hi) == Some(Ordering::Equal)
                    && self
                        .not_eq
                        .iter()
                        .any(|v| v.sql_cmp(lo) == Some(Ordering::Equal))
                {
                    return true;
                }
            }
            false
        }
        fn admits(&self, v: &Value) -> bool {
            if let Some((lo, inc)) = &self.lo {
                match v.sql_cmp(lo) {
                    Some(Ordering::Less) => return false,
                    Some(Ordering::Equal) if !inc => return false,
                    None => return true,
                    _ => {}
                }
            }
            if let Some((hi, inc)) = &self.hi {
                match v.sql_cmp(hi) {
                    Some(Ordering::Greater) => return false,
                    Some(Ordering::Equal) if !inc => return false,
                    None => return true,
                    _ => {}
                }
            }
            !self
                .not_eq
                .iter()
                .any(|n| n.sql_cmp(v) == Some(Ordering::Equal))
        }
        fn add_lo(&mut self, v: Value, inclusive: bool) {
            let replace = match &self.lo {
                None => true,
                Some((cur, cur_inc)) => match v.sql_cmp(cur) {
                    Some(Ordering::Greater) => true,
                    Some(Ordering::Equal) => *cur_inc && !inclusive,
                    _ => false,
                },
            };
            if replace {
                self.lo = Some((v, inclusive));
            }
        }
        fn add_hi(&mut self, v: Value, inclusive: bool) {
            let replace = match &self.hi {
                None => true,
                Some((cur, cur_inc)) => match v.sql_cmp(cur) {
                    Some(Ordering::Less) => true,
                    Some(Ordering::Equal) => *cur_inc && !inclusive,
                    _ => false,
                },
            };
            if replace {
                self.hi = Some((v, inclusive));
            }
        }
        fn add_in_set(&mut self, vs: Vec<Value>) {
            self.in_set = Some(match self.in_set.take() {
                None => vs,
                Some(prev) => prev
                    .into_iter()
                    .filter(|p| vs.iter().any(|v| v.sql_cmp(p) == Some(Ordering::Equal)))
                    .collect(),
            });
        }
    }

    let mut ranges: HashMap<fusion_common::ColumnId, Range> = HashMap::new();
    for c in conjuncts {
        let (id, op, v) = match as_column_literal_cmp(c) {
            Some(t) => t,
            None => {
                if let Expr::InList {
                    expr,
                    list,
                    negated: false,
                } = c
                {
                    if let Expr::Column(id) = expr.as_ref() {
                        let vals: Option<Vec<Value>> = list
                            .iter()
                            .map(|e| match e {
                                Expr::Literal(v) if !v.is_null() => Some(v.clone()),
                                _ => None,
                            })
                            .collect();
                        if let Some(vals) = vals {
                            ranges.entry(*id).or_insert_with(Range::new).add_in_set(vals);
                        }
                    }
                }
                continue;
            }
        };
        let r = ranges.entry(id).or_insert_with(Range::new);
        match op {
            BinaryOp::Eq => {
                r.add_lo(v.clone(), true);
                r.add_hi(v, true);
            }
            BinaryOp::NotEq => r.not_eq.push(v),
            BinaryOp::Lt => r.add_hi(v, false),
            BinaryOp::LtEq => r.add_hi(v, true),
            BinaryOp::Gt => r.add_lo(v, false),
            BinaryOp::GtEq => r.add_lo(v, true),
            _ => {}
        }
    }
    ranges.values().any(|r| r.empty())
}

/// Match `col <op> literal` or `literal <op> col` (normalizing direction).
fn as_column_literal_cmp(e: &Expr) -> Option<(fusion_common::ColumnId, BinaryOp, Value)> {
    if let Expr::Binary { op, left, right } = e {
        if !op.is_comparison() {
            return None;
        }
        match (left.as_ref(), right.as_ref()) {
            (Expr::Column(id), Expr::Literal(v)) if !v.is_null() => Some((*id, *op, v.clone())),
            (Expr::Literal(v), Expr::Column(id)) if !v.is_null() => {
                op.commuted().map(|op| (*id, op, v.clone()))
            }
            _ => None,
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use fusion_common::ColumnId;

    fn c(i: u32) -> Expr {
        col(ColumnId(i))
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(simplify(&c(1).and(Expr::boolean(true))), c(1));
        assert!(simplify(&c(1).and(Expr::boolean(false))).is_false_literal());
        assert_eq!(simplify(&c(1).or(Expr::boolean(false))), c(1));
        assert!(simplify(&c(1).or(Expr::boolean(true))).is_true_literal());
    }

    #[test]
    fn duplicate_conjuncts_collapse() {
        let p = c(1).gt(lit(5i64));
        assert_eq!(simplify(&p.clone().and(p.clone())), p);
        assert_eq!(simplify(&p.clone().or(p.clone())), p);
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simplify(&lit(2i64).add(lit(3i64))), lit(5i64));
        assert!(simplify(&lit(2i64).gt(lit(3i64))).is_false_literal());
        assert_eq!(
            simplify(&Expr::Not(Box::new(Expr::Not(Box::new(c(1)))))),
            c(1)
        );
    }

    #[test]
    fn equality_contradiction_detected() {
        // a = 1 AND a = 2 => FALSE
        let e = c(1).eq_to(lit(1i64)).and(c(1).eq_to(lit(2i64)));
        assert!(is_contradiction(&e));
        // Only the filter-context variant may fold to FALSE: with a NULL
        // column the expression evaluates to NULL, so strict `simplify`
        // must leave it alone.
        assert!(simplify_filter(&e).is_false_literal());
        assert!(!simplify(&e).is_false_literal());
    }

    #[test]
    fn range_contradiction_detected() {
        // a > 5 AND a < 3
        assert!(is_contradiction(
            &c(1).gt(lit(5i64)).and(c(1).lt(lit(3i64)))
        ));
        // a >= 5 AND a < 5
        assert!(is_contradiction(
            &c(1).gt_eq(lit(5i64)).and(c(1).lt(lit(5i64)))
        ));
        // a >= 5 AND a <= 5 is satisfiable
        assert!(!is_contradiction(
            &c(1).gt_eq(lit(5i64)).and(c(1).lt_eq(lit(5i64)))
        ));
    }

    #[test]
    fn absorption_collapses_redundant_disjunctions() {
        let a = c(1).gt_eq(lit(1i64));
        let b = c(1).lt_eq(lit(20i64));
        let other = c(1).gt_eq(lit(21i64));
        // A AND (A OR O) => A
        let e = a.clone().and(a.clone().or(other.clone()));
        assert_eq!(simplify(&e), a);
        // (A AND B) AND ((A AND B) OR O) => A AND B
        let ab = a.clone().and(b.clone());
        let e = ab.clone().and(ab.clone().or(other.clone()));
        assert_eq!(simplify(&e), simplify(&ab));
        // The n-ary fusion shape: A ∧ B ∧ ((A ∧ B) ∨ O1) ∧ ((A∧B) ∨ O1 ∨ O2)
        let e = a
            .clone()
            .and(b.clone())
            .and(ab.clone().or(other.clone()))
            .and(ab.clone().or(other.clone()).or(c(2).eq_to(lit(5i64))));
        assert_eq!(simplify(&e), simplify(&ab));
    }

    #[test]
    fn factoring_extracts_common_conjuncts() {
        let a = c(1).eq_to(lit(3i64));
        let b1 = c(2).gt(lit(0i64));
        let b2 = c(2).lt(lit(-5i64));
        // (A AND B1) OR (A AND B2) => A AND (B2 OR B1) — the disjuncts
        // land in canonical (rendered-form) order, which puts B2 first.
        let e = a.clone().and(b1.clone()).or(a.clone().and(b2.clone()));
        let s = simplify(&e);
        assert_eq!(s, a.and(b2.or(b1)));
    }

    #[test]
    fn conjunct_order_is_canonical() {
        // The same bag of conjuncts simplifies to the same expression no
        // matter how the chain was assembled or nested.
        let p = c(1).gt(lit(0i64));
        let q = c(2).lt(lit(5i64));
        let r = c(3).eq_to(lit(7i64));
        let a = p.clone().and(q.clone()).and(r.clone());
        let b = r.clone().and(p.clone().and(q.clone()));
        let d = q.clone().and(r.clone()).and(p.clone());
        assert_eq!(simplify(&a), simplify(&b));
        assert_eq!(simplify(&a), simplify(&d));
        // Same property for disjunctions.
        let a = p.clone().or(q.clone()).or(r.clone());
        let b = r.or(q.or(p));
        assert_eq!(simplify(&a), simplify(&b));
    }

    #[test]
    fn nested_conjunctions_flatten_deterministically() {
        let p = c(1).gt(lit(0i64));
        let q = c(2).lt(lit(5i64));
        let r = c(3).eq_to(lit(7i64));
        // ((p AND q) AND r) and (p AND (q AND r)) flatten to one chain.
        let left = p.clone().and(q.clone()).and(r.clone());
        let right = p.clone().and(q.clone().and(r.clone()));
        let s = simplify(&left);
        assert_eq!(s, simplify(&right));
        assert_eq!(split_conjuncts(&s).len(), 3);
    }

    #[test]
    fn tag_dispatch_contradiction() {
        // tag = 1 AND tag = 2 — the UnionAll-rule shape.
        let e = c(9).eq_to(lit(1i64)).and(c(9).eq_to(lit(2i64)));
        assert!(is_contradiction(&e));
    }

    #[test]
    fn in_list_contradiction() {
        // a IN ('x','y') AND a = 'z'
        let e = Expr::InList {
            expr: Box::new(c(1)),
            list: vec![lit("x"), lit("y")],
            negated: false,
        }
        .and(c(1).eq_to(lit("z")));
        assert!(is_contradiction(&e));
        // a IN ('x','y') AND a = 'x' is fine
        let e = Expr::InList {
            expr: Box::new(c(1)),
            list: vec![lit("x"), lit("y")],
            negated: false,
        }
        .and(c(1).eq_to(lit("x")));
        assert!(!is_contradiction(&e));
    }

    #[test]
    fn point_range_excluded_by_not_eq() {
        let e = c(1)
            .gt_eq(lit(5i64))
            .and(c(1).lt_eq(lit(5i64)))
            .and(c(1).not_eq_to(lit(5i64)));
        assert!(is_contradiction(&e));
    }

    #[test]
    fn satisfiable_mixed_columns() {
        let e = c(1).gt(lit(5i64)).and(c(2).lt(lit(3i64)));
        assert!(!is_contradiction(&e));
    }

    #[test]
    fn case_with_literal_conditions() {
        let e = Expr::Case {
            branches: vec![
                (Expr::boolean(false), lit(1i64)),
                (Expr::boolean(true), lit(2i64)),
            ],
            else_expr: Some(Box::new(lit(3i64))),
        };
        assert_eq!(simplify(&e), lit(2i64));
    }

    #[test]
    fn reversed_comparison_normalized() {
        // 5 < a AND a < 3 => contradiction (5 < a means a > 5)
        let e = lit(5i64).lt(c(1)).and(c(1).lt(lit(3i64)));
        assert!(is_contradiction(&e));
    }
}
