//! Fusing projections (§III.C).

use fusion_expr::equiv;
use fusion_plan::{LogicalPlan, Project, ProjExpr};

use super::{comp_columns, FuseContext, Fused};

/// `Fuse(Project_A1(P1), Project_A2(P2))`: fuse the inputs; the fused
/// projection carries all of `A1`'s assignments, and each assignment of
/// `A2` either maps onto an equivalent existing assignment (extending `M`)
/// or is appended (keeping its own identity).
///
/// One detail the rewrite rules rely on: the compensating filters `L`/`R`
/// are expressed over the fused *child* columns, so any column they
/// reference must survive the projection — we pass such columns through
/// explicitly (they are "additional output columns", which the fused
/// result's schema contract explicitly allows).
pub fn fuse_projects(p1: &Project, p2: &Project, ctx: &FuseContext) -> Option<Fused> {
    let fused = super::fuse(&p1.input, &p2.input, ctx)?;
    let mut exprs = p1.exprs.clone();
    let mut mapping = fused.mapping.clone();

    for pe2 in &p2.exprs {
        let mapped = fused.map(&pe2.expr);
        match exprs.iter().find(|pe| equiv(&pe.expr, &mapped)) {
            Some(existing) => {
                mapping.insert(pe2.id, existing.id);
            }
            None => {
                exprs.push(ProjExpr::new(pe2.id, pe2.name.clone(), mapped));
                // Override any child-level mapping entry for this id (the
                // identity-projection adapter reuses child identities as
                // projection outputs): the column is now exposed directly.
                mapping.insert(pe2.id, pe2.id);
            }
        }
    }

    // Carry compensation columns through the projection.
    let child_schema = fused.plan.schema();
    for cid in comp_columns(&fused.left, &fused.right) {
        let already = exprs
            .iter()
            .any(|pe| pe.id == cid && pe.expr == fusion_expr::col(cid));
        if !already {
            if let Some(field) = super::field_of(&child_schema, cid) {
                exprs.push(ProjExpr::passthrough(&field));
            } else {
                return None; // compensation references a dropped column
            }
        }
    }

    Some(Fused {
        plan: LogicalPlan::Project(Project {
            input: Box::new(fused.plan),
            exprs,
        }),
        mapping,
        left: fused.left,
        right: fused.right,
    })
}

#[cfg(test)]
mod tests {
    use crate::fuse::{fuse, FuseContext};
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::{LogicalPlan, PlanBuilder};

    fn item_cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("i_brand_id", DataType::Int64, true),
            ColumnDef::new("i_size", DataType::Utf8, true),
        ]
    }

    /// The §III.C example: `SELECT i_brand_id + 1 AS brand_plus_one` fused
    /// with `SELECT new_brand_id + 1 AS x, 'new brand' AS y` (where
    /// new_brand_id renames i_brand_id through an inner projection).
    /// `x` maps onto `brand_plus_one`; `y` is appended.
    #[test]
    fn matching_assignments_map_new_ones_append() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());

        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let a_brand = a.col("i_brand_id").unwrap();
        let p1 = a
            .project(vec![("brand_plus_one", col(a_brand).add(lit(1i64)))])
            .build();
        let p1_out = p1.schema().field(0).id;

        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let b_brand = b.col("i_brand_id").unwrap();
        let inner = b.project(vec![("new_brand_id", col(b_brand))]);
        let new_brand = inner.col("new_brand_id").unwrap();
        let p2 = inner
            .project(vec![
                ("x", col(new_brand).add(lit(1i64))),
                ("y", lit("new brand")),
            ])
            .build();
        let (x_id, y_id) = {
            let s = p2.schema();
            (s.field(0).id, s.field(1).id)
        };

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        assert!(f.trivial());
        assert_eq!(f.mapping.get(&x_id), Some(&p1_out));
        // y is carried with its own identity.
        let schema = f.plan.schema();
        assert!(schema.contains(y_id));
        assert_eq!(schema.len(), 2);
    }

    /// §III.G adapter: project on one side, bare scan on the other.
    #[test]
    fn project_vs_scan_uses_identity_adapter() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let a_brand = a.col("i_brand_id").unwrap();
        let p1 = a
            .project(vec![("bp1", col(a_brand).add(lit(1i64)))])
            .build();
        let p2 = PlanBuilder::scan(&gen, "item", &item_cols()).build();
        let p2_ids = p2.schema().ids();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        let schema = f.plan.schema();
        // Fused projection carries bp1 plus both raw columns of the scan.
        assert_eq!(schema.len(), 3);
        for id in p2_ids {
            // Every right-side output is reachable through the mapping.
            let mapped = f.mapped_id(id);
            assert!(schema.contains(mapped));
        }
    }

    /// Compensation columns referenced by L/R survive the projection.
    #[test]
    fn compensation_columns_pass_through() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());

        let a = PlanBuilder::scan(&gen, "item", &item_cols());
        let (a_brand, a_size) = (a.col("i_brand_id").unwrap(), a.col("i_size").unwrap());
        let p1 = a
            .filter(col(a_size).eq_to(lit("m")))
            .project(vec![("b1", col(a_brand))])
            .build();

        let b = PlanBuilder::scan(&gen, "item", &item_cols());
        let (b_brand, b_size) = (b.col("i_brand_id").unwrap(), b.col("i_size").unwrap());
        let p2 = b
            .filter(col(b_size).eq_to(lit("l")))
            .project(vec![("b2", col(b_brand))])
            .build();

        let f = fuse(&p1, &p2, &ctx).unwrap();
        f.plan.validate().unwrap();
        // L references i_size, which must therefore be projected through.
        assert!(!f.left.is_true_literal());
        let schema = f.plan.schema();
        for c in f.left.columns() {
            assert!(schema.contains(c), "L column {c} must survive projection");
        }
        if let LogicalPlan::Project(p) = &f.plan {
            assert!(p.exprs.len() >= 2);
        } else {
            panic!("expected Project root");
        }
    }
}
