//! Analyzer run report: the JSON artifact the CI `analysis` job uploads.
//!
//! Hand-rolled JSON (as elsewhere in the workspace) — the build
//! environment has no serde.

use super::mutation::MutationReport;

/// Analyzer outcome for one corpus query in one mode.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    pub query: String,
    /// `"fused"` or `"baseline"`.
    pub mode: &'static str,
    /// Violations found on the final optimized plan (should be empty).
    pub violations: Vec<String>,
    /// Rewrites rejected mid-optimization with `FUSION_ANALYSIS_*` codes.
    /// These are *successes* of the gate, not failures of the run.
    pub analysis_rejections: usize,
    /// Rules that actually fired.
    pub rules_fired: usize,
}

/// Full analyzer run: corpus sweep plus the fuse-contract and
/// reuse-soundness mutation self-tests.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    pub queries: Vec<QueryAnalysis>,
    pub mutation: MutationReport,
    /// Reuse-corruption corpus (`run_reuse_self_test`): seeded splice /
    /// subsumption / maintainability / stamp corruptions plus pristine
    /// false-positive controls for the reuse-soundness prover.
    pub reuse: MutationReport,
}

impl AnalysisReport {
    /// Total violations on final plans across the corpus.
    pub fn total_violations(&self) -> usize {
        self.queries.iter().map(|q| q.violations.len()).sum()
    }

    /// Whether the run meets the CI gate: no final-plan violations and a
    /// kill rate of at least 95% on both mutation corpora.
    pub fn passes(&self) -> bool {
        self.total_violations() == 0
            && self.mutation.kill_rate() >= 0.95
            && self.reuse.kill_rate() >= 0.95
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let viols = q
                .violations
                .iter()
                .map(|v| format!("\"{}\"", escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"query\": \"{}\", \"mode\": \"{}\", \"violations\": [{}], \
                 \"analysis_rejections\": {}, \"rules_fired\": {}}}{}\n",
                escape(&q.query),
                q.mode,
                viols,
                q.analysis_rejections,
                q.rules_fired,
                if i + 1 < self.queries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"total_violations\": {},\n",
            self.total_violations()
        ));
        out.push_str("  \"mutation\": ");
        out.push_str(&mutation_json(&self.mutation));
        out.push_str(",\n");
        out.push_str("  \"reuse\": ");
        out.push_str(&mutation_json(&self.reuse));
        out.push_str(",\n");
        out.push_str(&format!("  \"passes\": {}\n}}\n", self.passes()));
        out
    }
}

/// Render one mutation corpus (fuse-contract or reuse-soundness) as a
/// JSON object at two-space base indent.
fn mutation_json(m: &MutationReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "    \"total\": {},\n    \"killed\": {},\n    \"kill_rate\": {:.4},\n",
        m.total(),
        m.killed(),
        m.kill_rate()
    ));
    let survivors = m
        .survivors()
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("    \"survivors\": [{survivors}],\n"));
    out.push_str("    \"outcomes\": [\n");
    for (i, o) in m.outcomes.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"description\": \"{}\", \"killed\": {}, \"detail\": \"{}\"}}{}\n",
            escape(&o.description),
            o.killed,
            escape(&o.detail),
            if i + 1 < m.outcomes.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  }");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
