//! Explain output: indented, one operator per line.

use std::fmt;

use crate::plan::LogicalPlan;

/// Wrapper whose `Display` renders the indented plan tree.
pub struct DisplayPlan<'a>(pub &'a LogicalPlan);

impl LogicalPlan {
    /// Render the plan as an indented tree (EXPLAIN-style).
    pub fn display(&self) -> String {
        format!("{}", DisplayPlan(self))
    }
}

impl fmt::Display for DisplayPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_node(
            plan: &LogicalPlan,
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for _ in 0..indent {
                f.write_str("  ")?;
            }
            match plan {
                LogicalPlan::Scan(s) => {
                    write!(f, "Scan: {} cols=[", s.table)?;
                    for (i, field) in s.fields.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{}{}", field.name, field.id)?;
                    }
                    f.write_str("]")?;
                    if !s.filters.is_empty() {
                        f.write_str(" pushed=[")?;
                        for (i, e) in s.filters.iter().enumerate() {
                            if i > 0 {
                                f.write_str(" AND ")?;
                            }
                            write!(f, "{e}")?;
                        }
                        f.write_str("]")?;
                    }
                }
                LogicalPlan::Filter(x) => write!(f, "Filter: {}", x.predicate)?,
                LogicalPlan::Project(p) => {
                    f.write_str("Project: ")?;
                    for (i, pe) in p.exprs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{}{}:={}", pe.name, pe.id, pe.expr)?;
                    }
                }
                LogicalPlan::Join(j) => {
                    write!(f, "{} Join", j.join_type)?;
                    if !j.condition.is_true_literal() {
                        write!(f, ": {}", j.condition)?;
                    }
                }
                LogicalPlan::Aggregate(a) => {
                    f.write_str("Aggregate: groupBy=[")?;
                    for (i, g) in a.group_by.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{g}")?;
                    }
                    f.write_str("] aggs=[")?;
                    for (i, assign) in a.aggregates.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{}{}:={}", assign.name, assign.id, assign.agg)?;
                    }
                    f.write_str("]")?;
                }
                LogicalPlan::Window(w) => {
                    f.write_str("Window: ")?;
                    for (i, assign) in w.exprs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{}{}:={}", assign.name, assign.id, assign.window)?;
                    }
                }
                LogicalPlan::MarkDistinct(m) => {
                    write!(f, "MarkDistinct: {}{} over [", m.mark_name, m.mark_id)?;
                    for (i, c) in m.columns.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    f.write_str("]")?;
                    if !m.mask.is_true_literal() {
                        write!(f, " mask={}", m.mask)?;
                    }
                }
                LogicalPlan::UnionAll(u) => {
                    write!(f, "UnionAll: {} inputs", u.inputs.len())?;
                }
                LogicalPlan::ConstantTable(c) => {
                    write!(f, "ConstantTable: {} rows", c.rows.len())?;
                }
                LogicalPlan::EnforceSingleRow(_) => f.write_str("EnforceSingleRow")?,
                LogicalPlan::Sort(s) => {
                    f.write_str("Sort: ")?;
                    for (i, k) in s.keys.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{} {}", k.expr, if k.asc { "ASC" } else { "DESC" })?;
                    }
                }
                LogicalPlan::Limit(l) => write!(f, "Limit: {}", l.fetch)?,
            }
            f.write_str("\n")?;
            for child in plan.children() {
                write_node(child, indent + 1, f)?;
            }
            Ok(())
        }
        write_node(self.0, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{Filter, LogicalPlan, Scan};
    use fusion_common::{DataType, Field, IdGen};
    use fusion_expr::{col, lit};

    #[test]
    fn display_is_indented_tree() {
        let gen = IdGen::new();
        let id = gen.fresh();
        let plan = LogicalPlan::Filter(Filter {
            input: Box::new(LogicalPlan::Scan(Scan {
                table: "item".into(),
                fields: vec![Field::new(id, "i_item_sk", DataType::Int64, false)],
                column_indices: vec![0],
                filters: vec![],
            })),
            predicate: col(id).gt(lit(5i64)),
        });
        let s = plan.display();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Filter:"));
        assert!(lines[1].starts_with("  Scan: item"));
    }
}
