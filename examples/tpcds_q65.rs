// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! The paper's motivating example (a variant of TPC-DS Q65, Section I):
//! a per-(store, item) revenue aggregation joined back against its own
//! per-store average. The `GroupByJoinToWindow` rule replaces the
//! duplicated aggregation pipeline with a single window aggregate,
//! which the paper reports as −48% latency and ~−50% data scanned.
//!
//! ```sh
//! cargo run --release --example tpcds_q65
//! ```

use fusion_engine::Session;
use fusion_tpcds::{generate_catalog, queries, TpcdsConfig};

fn main() {
    let cfg = TpcdsConfig::with_scale(0.5);
    println!(
        "generating TPC-DS data (scale {}, ~{} store_sales rows)...",
        cfg.scale,
        cfg.store_sales_rows()
    );

    let mut fused = Session::new();
    for t in generate_catalog(&cfg).into_tables() {
        fused.register_table(t);
    }
    let mut baseline = Session::baseline();
    for t in generate_catalog(&cfg).into_tables() {
        baseline.register_table(t);
    }

    let q = queries::q65();
    println!("\n== {} ({}) ==", q.id, q.family);

    let rb = baseline.sql(&q.sql).expect("baseline");
    let rf = fused.sql(&q.sql).expect("fused");
    assert_eq!(rf.sorted_rows(), rb.sorted_rows());

    println!("\n-- baseline plan (fusion off): store_sales scanned {}x --",
        rb.optimized_plan
            .scanned_tables()
            .iter()
            .filter(|t| *t == "store_sales")
            .count());
    println!("{}", rb.optimized_plan.display());
    println!("-- fused plan: store_sales scanned {}x --",
        rf.optimized_plan
            .scanned_tables()
            .iter()
            .filter(|t| *t == "store_sales")
            .count());
    println!("{}", rf.optimized_plan.display());

    let scan_ratio = rf.metrics.bytes_scanned as f64 / rb.metrics.bytes_scanned as f64;
    let speedup = rb.latency.as_secs_f64() / rf.latency.as_secs_f64();
    println!("rows: {}", rf.rows.len());
    println!(
        "latency   : baseline {:>9.2?} | fused {:>9.2?} | speedup {speedup:.2}x",
        rb.latency, rf.latency
    );
    println!(
        "bytes read: baseline {:>9} | fused {:>9} | fused reads {:.0}% of baseline",
        rb.metrics.bytes_scanned,
        rf.metrics.bytes_scanned,
        scan_ratio * 100.0
    );
    println!(
        "(paper: Q65 latency −48%, data scanned −50% — expect a similar shape)"
    );
}
