//! The evaluation queries.
//!
//! The eight featured queries of the paper's Section V (Q01, Q09, Q23,
//! Q28, Q30, Q65, Q88, Q95), written exactly in the simplified forms the
//! paper's exposition uses, plus a panel of control queries with no
//! common subexpressions (modeled on TPC-DS report queries like Q3, Q7,
//! Q42, Q52, Q55, Q96) that the fusion rules must leave unchanged — the
//! mix behind the paper's "14% overall / ~60% on changed plans" numbers.

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Paper identifier, e.g. "Q65".
    pub id: &'static str,
    /// Which §V subsection / rewrite family it exercises.
    pub family: &'static str,
    pub sql: String,
    /// Whether the paper reports this query's plan as changed by fusion.
    pub applicable: bool,
}

fn q(id: &'static str, family: &'static str, applicable: bool, sql: &str) -> BenchQuery {
    BenchQuery {
        id,
        family,
        sql: sql.to_string(),
        applicable,
    }
}

/// The eight queries of Figures 1 and 2.
pub fn featured_queries() -> Vec<BenchQuery> {
    vec![q01(), q09(), q23(), q28(), q30(), q65(), q88(), q95()]
}

/// The paper's §I introduction example: a CTE consumed by two UNION ALL
/// branches with overlapping predicates — the `UnionAll` rule's (§IV.D)
/// home pattern. Included in the workload (but not Figures 1/2, which
/// plot only the paper's selected TPC-DS queries).
pub fn intro() -> BenchQuery {
    q(
        "INTRO",
        "union fusion (§IV.D, intro example)",
        true,
        "WITH cte AS ( \
           SELECT c_customer_id AS customer_id, c_first_name AS fname, \
                  c_last_name AS lname, SUM(ss_sales_price) AS spent \
           FROM customer, store_sales \
           WHERE ss_customer_sk = c_customer_sk \
           GROUP BY c_customer_id, c_first_name, c_last_name) \
         SELECT customer_id FROM cte WHERE fname = 'John' \
         UNION ALL \
         SELECT customer_id FROM cte WHERE lname = 'Smith'",
    )
}

/// Control queries whose plans fusion must not change.
pub fn control_queries() -> Vec<BenchQuery> {
    vec![
        q(
            "C03",
            "control/star-join",
            false,
            "SELECT d_year, i_brand_id, SUM(ss_ext_sales_price) AS sum_agg \
             FROM store_sales \
             JOIN date_dim ON ss_sold_date_sk = d_date_sk \
             JOIN item ON ss_item_sk = i_item_sk \
             WHERE i_manufact_id = 50 AND d_moy = 11 \
             GROUP BY d_year, i_brand_id \
             ORDER BY d_year, sum_agg DESC LIMIT 100",
        ),
        q(
            "C07",
            "control/star-join",
            false,
            "SELECT i_item_id, AVG(ss_quantity) AS agg1, AVG(ss_list_price) AS agg2, \
                    AVG(ss_coupon_amt) AS agg3, AVG(ss_sales_price) AS agg4 \
             FROM store_sales \
             JOIN item ON ss_item_sk = i_item_sk \
             JOIN household_demographics ON ss_hdemo_sk = hd_demo_sk \
             WHERE hd_dep_count = 3 \
             GROUP BY i_item_id ORDER BY i_item_id LIMIT 100",
        ),
        q(
            "C42",
            "control/report",
            false,
            "SELECT d_year, i_category_id, i_category, SUM(ss_ext_sales_price) AS s \
             FROM store_sales \
             JOIN date_dim ON ss_sold_date_sk = d_date_sk \
             JOIN item ON ss_item_sk = i_item_sk \
             WHERE i_category = 'Music' AND d_year = 1999 \
             GROUP BY d_year, i_category_id, i_category \
             ORDER BY s DESC, d_year LIMIT 100",
        ),
        q(
            "C52",
            "control/report",
            false,
            "SELECT d_year, i_brand, i_brand_id, SUM(ss_ext_sales_price) AS ext_price \
             FROM store_sales \
             JOIN date_dim ON ss_sold_date_sk = d_date_sk \
             JOIN item ON ss_item_sk = i_item_sk \
             WHERE d_moy = 12 \
             GROUP BY d_year, i_brand, i_brand_id \
             ORDER BY d_year, ext_price DESC LIMIT 100",
        ),
        q(
            "C55",
            "control/report",
            false,
            "SELECT i_brand_id, i_brand, SUM(ss_ext_sales_price) AS ext_price \
             FROM store_sales \
             JOIN date_dim ON ss_sold_date_sk = d_date_sk \
             JOIN item ON ss_item_sk = i_item_sk \
             WHERE i_manufact_id = 28 AND d_moy = 11 \
             GROUP BY i_brand_id, i_brand \
             ORDER BY ext_price DESC, i_brand_id LIMIT 100",
        ),
        q(
            "C96",
            "control/count",
            false,
            "SELECT COUNT(*) AS cnt \
             FROM store_sales \
             JOIN time_dim ON ss_sold_time_sk = t_time_sk \
             JOIN store ON ss_store_sk = s_store_sk \
             WHERE t_hour = 8 AND s_store_name = 'ese store'",
        ),
        q(
            "CINV",
            "control/inventory",
            false,
            "SELECT inv_warehouse_sk, AVG(inv_quantity_on_hand) AS qoh \
             FROM inventory \
             JOIN date_dim ON inv_date_sk = d_date_sk \
             WHERE d_year = 1999 \
             GROUP BY inv_warehouse_sk ORDER BY inv_warehouse_sk",
        ),
    ]
}

/// Scan-heavy single-table queries for the push-based pipeline
/// benchmark dimension (§III). Joins are pipeline *breakers* by design,
/// so the join-dominated featured queries measure breaker behavior, not
/// pipelines; these shapes — filter/project chains, grouped and scalar
/// aggregates, and distinct marks directly over the fact scan — are the
/// ones a fused chain can actually cover. Kept out of [`all_queries`]:
/// they benchmark the execution layer, not the fusion rewrites.
pub fn pipeline_queries() -> Vec<BenchQuery> {
    vec![
        q(
            "P01",
            "pipeline/filter-project",
            false,
            "SELECT ss_item_sk, ss_store_sk, \
                    ss_quantity * ss_list_price AS gross, \
                    ss_ext_sales_price - ss_ext_discount_amt AS net \
             FROM store_sales \
             WHERE ss_quantity > 30 AND ss_list_price > 50",
        ),
        q(
            "P02",
            "pipeline/grouped-agg",
            false,
            "SELECT ss_store_sk, SUM(ss_quantity * ss_sales_price) AS rev, \
                    AVG(ss_net_profit) AS profit, COUNT(*) AS n \
             FROM store_sales \
             WHERE ss_quantity > 10 \
             GROUP BY ss_store_sk",
        ),
        q(
            "P03",
            "pipeline/scalar-agg",
            false,
            "SELECT COUNT(*) AS n, AVG(ss_list_price) AS lp, \
                    AVG(ss_ext_discount_amt) AS disc, SUM(ss_net_profit) AS profit, \
                    MIN(ss_sales_price) AS lo, MAX(ss_sales_price) AS hi \
             FROM store_sales \
             WHERE ss_quantity BETWEEN 20 AND 80",
        ),
        q(
            "P04",
            "pipeline/distinct-marks",
            false,
            "SELECT COUNT(DISTINCT ss_item_sk) AS items, \
                    COUNT(DISTINCT ss_store_sk) AS stores, \
                    COUNT(*) AS n \
             FROM store_sales \
             WHERE ss_quantity > 5",
        ),
    ]
}

/// All workload queries: featured + the §I intro example + controls.
pub fn all_queries() -> Vec<BenchQuery> {
    let mut out = featured_queries();
    out.push(intro());
    out.extend(control_queries());
    out
}

/// Q01 (§V.A): decorrelated correlated aggregate → GroupByJoinToWindow.
pub fn q01() -> BenchQuery {
    q(
        "Q01",
        "window (§V.A)",
        true,
        "WITH customer_total_return AS ( \
           SELECT sr_customer_sk AS ctr_customer_sk, \
                  sr_store_sk AS ctr_store_sk, \
                  SUM(sr_return_amt) AS ctr_total_return \
           FROM store_returns, date_dim \
           WHERE sr_returned_date_sk = d_date_sk AND d_year = 2000 \
           GROUP BY sr_customer_sk, sr_store_sk) \
         SELECT c_customer_id \
         FROM customer_total_return ctr1, store, customer \
         WHERE ctr1.ctr_total_return > (SELECT AVG(ctr_total_return) * 1.2 \
                                        FROM customer_total_return ctr2 \
                                        WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk) \
           AND s_store_sk = ctr1.ctr_store_sk \
           AND s_state = 'TN' \
           AND ctr1.ctr_customer_sk = c_customer_sk \
         ORDER BY c_customer_id LIMIT 100",
    )
}

/// Q09 (§V.B): 15 scalar subqueries over store_sales → one fused scan.
pub fn q09() -> BenchQuery {
    let mut buckets = Vec::new();
    for (i, (lo, hi, thr)) in [
        (1, 20, 1000),
        (21, 40, 1000),
        (41, 60, 1000),
        (61, 80, 1000),
        (81, 100, 1000),
    ]
    .iter()
    .enumerate()
    {
        buckets.push(format!(
            "CASE WHEN (SELECT COUNT(*) FROM store_sales \
                        WHERE ss_quantity BETWEEN {lo} AND {hi}) > {thr} \
                  THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales \
                        WHERE ss_quantity BETWEEN {lo} AND {hi}) \
                  ELSE (SELECT AVG(ss_net_profit) FROM store_sales \
                        WHERE ss_quantity BETWEEN {lo} AND {hi}) END AS bucket{n}",
            n = i + 1
        ));
    }
    q(
        "Q09",
        "scalar aggregates (§V.B)",
        true,
        &format!(
            "SELECT {} FROM reason WHERE r_reason_sk = 1",
            buckets.join(", ")
        ),
    )
}

/// Q23 (§V.C): UNION ALL of two similar insights over different fact
/// tables → UnionAllOnJoin (fuses best_customer, freq_items, date_dim).
pub fn q23() -> BenchQuery {
    q(
        "Q23",
        "union-on-join (§V.C)",
        true,
        "WITH freq_items AS ( \
           SELECT i_item_sk AS item_sk \
           FROM store_sales, item, date_dim \
           WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk \
             AND d_year = 1999 \
           GROUP BY i_item_sk \
           HAVING COUNT(*) > 4), \
         best_customer AS ( \
           SELECT c_customer_sk AS cust_sk \
           FROM store_sales, customer \
           WHERE ss_customer_sk = c_customer_sk \
           GROUP BY c_customer_sk \
           HAVING SUM(ss_sales_price) > 2500) \
         SELECT SUM(sales) AS total_sales \
         FROM (SELECT cs_quantity * cs_list_price AS sales \
               FROM catalog_sales, date_dim \
               WHERE d_year = 1999 AND d_moy = 1 AND cs_sold_date_sk = d_date_sk \
                 AND cs_item_sk IN (SELECT item_sk FROM freq_items) \
                 AND cs_bill_customer_sk IN (SELECT cust_sk FROM best_customer) \
               UNION ALL \
               SELECT ws_quantity * ws_list_price AS sales \
               FROM web_sales, date_dim \
               WHERE d_year = 1999 AND d_moy = 1 AND ws_sold_date_sk = d_date_sk \
                 AND ws_item_sk IN (SELECT item_sk FROM freq_items) \
                 AND ws_bill_customer_sk IN (SELECT cust_sk FROM best_customer)) x",
    )
}

/// Q28 (§V.B): scalar aggregates with DISTINCT → MarkDistinct fusion.
pub fn q28() -> BenchQuery {
    let bucket = |n: usize, lo: i64, hi: i64| {
        format!(
            "(SELECT AVG(ss_list_price) AS b{n}_lp, \
                     COUNT(ss_list_price) AS b{n}_cnt, \
                     COUNT(DISTINCT ss_list_price) AS b{n}_cntd \
              FROM store_sales WHERE ss_quantity BETWEEN {lo} AND {hi}) b{n}"
        )
    };
    q(
        "Q28",
        "scalar aggregates + distinct (§V.B)",
        true,
        &format!(
            "SELECT b1_lp, b1_cnt, b1_cntd, b2_lp, b2_cnt, b2_cntd, \
                    b3_lp, b3_cnt, b3_cntd \
             FROM {}, {}, {}",
            bucket(1, 0, 5),
            bucket(2, 6, 10),
            bucket(3, 11, 15)
        ),
    )
}

/// Q30 (§V.A): like Q01 over web returns with a state-level correlation.
pub fn q30() -> BenchQuery {
    q(
        "Q30",
        "window (§V.A)",
        true,
        "WITH customer_total_return AS ( \
           SELECT wr_returning_customer_sk AS ctr_customer_sk, \
                  ca_state AS ctr_state, \
                  SUM(wr_return_amt) AS ctr_total_return \
           FROM web_returns, date_dim, customer_address \
           WHERE wr_returned_date_sk = d_date_sk AND d_year = 2000 \
             AND wr_returning_customer_sk = ca_address_sk \
           GROUP BY wr_returning_customer_sk, ca_state) \
         SELECT c_customer_id \
         FROM customer_total_return ctr1, customer \
         WHERE ctr1.ctr_total_return > (SELECT AVG(ctr_total_return) * 1.2 \
                                        FROM customer_total_return ctr2 \
                                        WHERE ctr1.ctr_state = ctr2.ctr_state) \
           AND ctr1.ctr_customer_sk = c_customer_sk \
         ORDER BY c_customer_id LIMIT 100",
    )
}

/// Q65 (§I): the motivating query — aggregate joined back to the same
/// aggregation pipeline → GroupByJoinToWindow.
pub fn q65() -> BenchQuery {
    q(
        "Q65",
        "window (§I)",
        true,
        "SELECT s_store_name, i_item_desc, sc.revenue \
         FROM store, item, \
             (SELECT ss_store_sk, AVG(revenue) AS ave \
              FROM (SELECT ss_store_sk, ss_item_sk, \
                           SUM(ss_sales_price) AS revenue \
                    FROM store_sales, date_dim \
                    WHERE ss_sold_date_sk = d_date_sk \
                      AND d_month_seq BETWEEN 1176 AND 1187 \
                    GROUP BY ss_store_sk, ss_item_sk) sa \
              GROUP BY ss_store_sk) sb, \
             (SELECT ss_store_sk, ss_item_sk, \
                     SUM(ss_sales_price) AS revenue \
              FROM store_sales, date_dim \
              WHERE ss_sold_date_sk = d_date_sk \
                AND d_month_seq BETWEEN 1176 AND 1187 \
              GROUP BY ss_store_sk, ss_item_sk) sc \
         WHERE sb.ss_store_sk = sc.ss_store_sk \
           AND sc.revenue <= 0.1 * sb.ave \
           AND s_store_sk = sc.ss_store_sk \
           AND i_item_sk = sc.ss_item_sk \
         ORDER BY s_store_name, i_item_desc LIMIT 100",
    )
}

/// Q88 (§V.B): time-bucket counts over a 4-way join → scalar fusion of
/// joined subqueries.
pub fn q88() -> BenchQuery {
    let bucket = |n: usize, hour: i64| {
        format!(
            "(SELECT COUNT(*) AS h{n} \
              FROM store_sales \
              JOIN household_demographics ON ss_hdemo_sk = hd_demo_sk \
              JOIN time_dim ON ss_sold_time_sk = t_time_sk \
              JOIN store ON ss_store_sk = s_store_sk \
              WHERE t_hour = {hour} AND hd_dep_count = 3 \
                AND s_store_name = 'ese store') s{n}"
        )
    };
    q(
        "Q88",
        "scalar aggregates over joins (§V.B)",
        true,
        &format!(
            "SELECT h1, h2, h3, h4 FROM {}, {}, {}, {}",
            bucket(1, 8),
            bucket(2, 9),
            bucket(3, 10),
            bucket(4, 11)
        ),
    )
}

/// Q95 (§V.D): redundant IN over an expensive self-join CTE →
/// semi-join dedup chain + JoinOnKeys.
pub fn q95() -> BenchQuery {
    q(
        "Q95",
        "semi-join dedup (§V.D)",
        true,
        "WITH ws_wh AS ( \
           SELECT ws1.ws_order_number AS ws_wh_number \
           FROM web_sales ws1, web_sales ws2 \
           WHERE ws1.ws_order_number = ws2.ws_order_number \
             AND ws1.ws_warehouse_sk <> ws2.ws_warehouse_sk) \
         SELECT COUNT(DISTINCT ws_order_number) AS order_count, \
                SUM(ws_ext_ship_cost) AS total_shipping_cost, \
                SUM(ws_net_profit) AS total_net_profit \
         FROM web_sales, date_dim, customer_address, web_site \
         WHERE ws_ship_date_sk = d_date_sk AND d_year = 1999 \
           AND ws_ship_addr_sk = ca_address_sk AND ca_state = 'TN' \
           AND ws_web_site_sk = web_site_sk AND web_company_name = 'pri' \
           AND ws_order_number IN (SELECT ws_wh_number FROM ws_wh) \
           AND ws_order_number IN (SELECT wr_order_number FROM ws_wh \
                                   JOIN web_returns ON wr_order_number = ws_wh_number)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_featured_and_controls() {
        let all = all_queries();
        assert_eq!(featured_queries().len(), 8);
        assert!(control_queries().len() >= 6);
        assert_eq!(
            all.iter().filter(|b| b.applicable).count(),
            9,
            "the featured queries plus the intro example are applicable"
        );
        // Ids are unique, also across the pipeline benchmark set.
        let mut all = all;
        all.extend(pipeline_queries());
        let mut ids: Vec<_> = all.iter().map(|b| b.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    /// The pipeline benchmark set stays single-table: every query must
    /// compile to a fused chain, so none may mention a second relation.
    #[test]
    fn pipeline_queries_are_single_table() {
        for q in pipeline_queries() {
            assert_eq!(
                q.sql.matches("FROM").count(),
                1,
                "{} must scan exactly one table",
                q.id
            );
            assert!(!q.sql.contains("JOIN"), "{} must not join", q.id);
        }
    }

    #[test]
    fn q09_has_fifteen_subqueries() {
        let sql = q09().sql;
        assert_eq!(sql.matches("(SELECT").count(), 15);
    }
}
