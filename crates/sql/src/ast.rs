//! Abstract syntax tree for the supported SQL subset.

/// A top-level statement: a query, or an `EXPLAIN [ANALYZE]` wrapper
/// around one.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    /// `EXPLAIN <query>` renders the optimized plan; `EXPLAIN ANALYZE`
    /// additionally executes it and annotates each operator with its
    /// profile (rows, batches, timings, peak state).
    Explain { analyze: bool, query: Query },
}

/// A full query: optional CTEs, a set expression, ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

/// Query body: a SELECT or a UNION ALL chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    UnionAll(Box<SetExpr>, Box<SetExpr>),
}

/// One SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<Query>,
        alias: String,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<AstExpr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub asc: bool,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    And,
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified identifier: `a` or `t.a`.
    Ident(Vec<String>),
    Number(String),
    String(String),
    Bool(bool),
    Null,
    Binary {
        op: AstBinaryOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Negate(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<AstExpr>,
        query: Box<Query>,
        negated: bool,
    },
    ScalarSubquery(Box<Query>),
    Case {
        operand: Option<Box<AstExpr>>,
        branches: Vec<(AstExpr, AstExpr)>,
        else_expr: Option<Box<AstExpr>>,
    },
    Cast {
        expr: Box<AstExpr>,
        ty: String,
    },
    /// Function call: aggregates, and (with `over`) window aggregates.
    Function {
        name: String,
        args: Vec<AstExpr>,
        distinct: bool,
        /// `FILTER (WHERE ...)`
        filter: Option<Box<AstExpr>>,
        /// `OVER (PARTITION BY ...)`
        over: Option<Vec<AstExpr>>,
    },
    /// `*` as a function argument (`COUNT(*)`).
    Star,
}

impl AstExpr {
    /// Rewrite every identifier through `f` (used by ORDER-BY resolution
    /// to strip stale qualifiers).
    pub fn map_idents(self, f: &dyn Fn(&Vec<String>) -> Vec<String>) -> AstExpr {
        match self {
            AstExpr::Ident(parts) => AstExpr::Ident(f(&parts)),
            AstExpr::Binary { op, left, right } => AstExpr::Binary {
                op,
                left: Box::new(left.map_idents(f)),
                right: Box::new(right.map_idents(f)),
            },
            AstExpr::Not(e) => AstExpr::Not(Box::new(e.map_idents(f))),
            AstExpr::Negate(e) => AstExpr::Negate(Box::new(e.map_idents(f))),
            AstExpr::IsNull { expr, negated } => AstExpr::IsNull {
                expr: Box::new(expr.map_idents(f)),
                negated,
            },
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => AstExpr::Between {
                expr: Box::new(expr.map_idents(f)),
                low: Box::new(low.map_idents(f)),
                high: Box::new(high.map_idents(f)),
                negated,
            },
            AstExpr::InList {
                expr,
                list,
                negated,
            } => AstExpr::InList {
                expr: Box::new(expr.map_idents(f)),
                list: list.into_iter().map(|e| e.map_idents(f)).collect(),
                negated,
            },
            AstExpr::Case {
                operand,
                branches,
                else_expr,
            } => AstExpr::Case {
                operand: operand.map(|o| Box::new(o.map_idents(f))),
                branches: branches
                    .into_iter()
                    .map(|(c, v)| (c.map_idents(f), v.map_idents(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.map_idents(f))),
            },
            AstExpr::Cast { expr, ty } => AstExpr::Cast {
                expr: Box::new(expr.map_idents(f)),
                ty,
            },
            AstExpr::Function {
                name,
                args,
                distinct,
                filter,
                over,
            } => AstExpr::Function {
                name,
                args: args.into_iter().map(|a| a.map_idents(f)).collect(),
                distinct,
                filter: filter.map(|x| Box::new(x.map_idents(f))),
                over: over.map(|ps| ps.into_iter().map(|p| p.map_idents(f)).collect()),
            },
            other => other,
        }
    }

    /// Does this expression contain any (non-window) aggregate call?
    pub fn has_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let AstExpr::Function { name, over, .. } = e {
                if over.is_none() && is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }

    /// Does this expression contain a window function call?
    pub fn has_window(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let AstExpr::Function { over: Some(_), .. } = e {
                found = true;
            }
        });
        found
    }

    /// Visit all nodes pre-order (not descending into subqueries).
    pub fn walk(&self, f: &mut dyn FnMut(&AstExpr)) {
        f(self);
        match self {
            AstExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            AstExpr::Not(e) | AstExpr::Negate(e) | AstExpr::Cast { expr: e, .. } => e.walk(f),
            AstExpr::IsNull { expr, .. } => expr.walk(f),
            AstExpr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            AstExpr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            AstExpr::InSubquery { expr, .. } => expr.walk(f),
            AstExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            AstExpr::Function { args, filter, over, .. } => {
                for a in args {
                    a.walk(f);
                }
                if let Some(fl) = filter {
                    fl.walk(f);
                }
                if let Some(ps) = over {
                    for p in ps {
                        p.walk(f);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Is this function name an aggregate?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::Function {
            name: "sum".into(),
            args: vec![AstExpr::Ident(vec!["x".into()])],
            distinct: false,
            filter: None,
            over: None,
        };
        assert!(agg.has_aggregate());
        assert!(!agg.has_window());
        let win = AstExpr::Function {
            name: "avg".into(),
            args: vec![AstExpr::Ident(vec!["x".into()])],
            distinct: false,
            filter: None,
            over: Some(vec![AstExpr::Ident(vec!["k".into()])]),
        };
        assert!(!win.has_aggregate());
        assert!(win.has_window());
    }

    #[test]
    fn nested_aggregate_detected_through_case() {
        let e = AstExpr::Case {
            operand: None,
            branches: vec![(
                AstExpr::Bool(true),
                AstExpr::Function {
                    name: "COUNT".into(),
                    args: vec![AstExpr::Star],
                    distinct: false,
                    filter: None,
                    over: None,
                },
            )],
            else_expr: None,
        };
        assert!(e.has_aggregate());
    }
}
