//! Explain output: indented, one operator per line.
//!
//! Two entry points share the per-node formatting:
//!
//! * [`LogicalPlan::display`] — the plain `EXPLAIN` tree.
//! * [`LogicalPlan::display_annotated`] — the same tree with a caller
//!   supplied suffix per line, keyed by the node's **pre-order index**.
//!   The executor assigns operator ids in the same pre-order, so
//!   `EXPLAIN ANALYZE` can append per-operator spans to the exact lines
//!   `display()` would print.

use std::fmt;

use crate::plan::LogicalPlan;

/// Wrapper whose `Display` renders the indented plan tree.
pub struct DisplayPlan<'a>(pub &'a LogicalPlan);

impl LogicalPlan {
    /// Render the plan as an indented tree (EXPLAIN-style).
    pub fn display(&self) -> String {
        format!("{}", DisplayPlan(self))
    }

    /// One-line description of this node alone — the exact line
    /// [`LogicalPlan::display`] prints for it, without indentation,
    /// children, or trailing newline.
    pub fn node_label(&self) -> String {
        let mut s = String::new();
        write_label(self, &mut s).expect("formatting a plan label into a String cannot fail");
        s
    }

    /// Render the plan tree with a per-line annotation. Nodes are visited
    /// in pre-order (the order `display()` prints them) and `annotate`
    /// receives that pre-order index together with the node; a returned
    /// string is appended to the node's line.
    pub fn display_annotated(
        &self,
        mut annotate: impl FnMut(usize, &LogicalPlan) -> Option<String>,
    ) -> String {
        fn walk(
            plan: &LogicalPlan,
            indent: usize,
            next: &mut usize,
            annotate: &mut impl FnMut(usize, &LogicalPlan) -> Option<String>,
            out: &mut String,
        ) {
            let idx = *next;
            *next += 1;
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push_str(&plan.node_label());
            if let Some(suffix) = annotate(idx, plan) {
                out.push_str(&suffix);
            }
            out.push('\n');
            for child in plan.children() {
                walk(child, indent + 1, next, annotate, out);
            }
        }
        let mut out = String::new();
        let mut next = 0;
        walk(self, 0, &mut next, &mut annotate, &mut out);
        out
    }
}

/// Write the one-line description of `plan` (no indent, no newline).
fn write_label(plan: &LogicalPlan, f: &mut impl fmt::Write) -> fmt::Result {
    match plan {
        LogicalPlan::Scan(s) => {
            write!(f, "Scan: {} cols=[", s.table)?;
            for (i, field) in s.fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}", field.name, field.id)?;
            }
            f.write_str("]")?;
            if !s.filters.is_empty() {
                f.write_str(" pushed=[")?;
                for (i, e) in s.filters.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")?;
            }
        }
        LogicalPlan::Filter(x) => write!(f, "Filter: {}", x.predicate)?,
        LogicalPlan::Project(p) => {
            f.write_str("Project: ")?;
            for (i, pe) in p.exprs.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}:={}", pe.name, pe.id, pe.expr)?;
            }
        }
        LogicalPlan::Join(j) => {
            write!(f, "{} Join", j.join_type)?;
            if !j.condition.is_true_literal() {
                write!(f, ": {}", j.condition)?;
            }
        }
        LogicalPlan::Aggregate(a) => {
            f.write_str("Aggregate: groupBy=[")?;
            for (i, g) in a.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
            f.write_str("] aggs=[")?;
            for (i, assign) in a.aggregates.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}:={}", assign.name, assign.id, assign.agg)?;
            }
            f.write_str("]")?;
        }
        LogicalPlan::Window(w) => {
            f.write_str("Window: ")?;
            for (i, assign) in w.exprs.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}:={}", assign.name, assign.id, assign.window)?;
            }
        }
        LogicalPlan::MarkDistinct(m) => {
            write!(f, "MarkDistinct: {}{} over [", m.mark_name, m.mark_id)?;
            for (i, c) in m.columns.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
            f.write_str("]")?;
            if !m.mask.is_true_literal() {
                write!(f, " mask={}", m.mask)?;
            }
        }
        LogicalPlan::UnionAll(u) => {
            write!(f, "UnionAll: {} inputs", u.inputs.len())?;
        }
        LogicalPlan::ConstantTable(c) => {
            write!(f, "ConstantTable: {} rows", c.rows.len())?;
        }
        LogicalPlan::EnforceSingleRow(_) => f.write_str("EnforceSingleRow")?,
        LogicalPlan::Sort(s) => {
            f.write_str("Sort: ")?;
            for (i, k) in s.keys.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{} {}", k.expr, if k.asc { "ASC" } else { "DESC" })?;
            }
        }
        LogicalPlan::Limit(l) => write!(f, "Limit: {}", l.fetch)?,
    }
    Ok(())
}

impl fmt::Display for DisplayPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_node(
            plan: &LogicalPlan,
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for _ in 0..indent {
                f.write_str("  ")?;
            }
            write_label(plan, f)?;
            f.write_str("\n")?;
            for child in plan.children() {
                write_node(child, indent + 1, f)?;
            }
            Ok(())
        }
        write_node(self.0, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{Filter, LogicalPlan, Scan};
    use fusion_common::{DataType, Field, IdGen};
    use fusion_expr::{col, lit};

    fn filter_over_scan() -> LogicalPlan {
        let gen = IdGen::new();
        let id = gen.fresh();
        LogicalPlan::Filter(Filter {
            input: Box::new(LogicalPlan::Scan(Scan {
                table: "item".into(),
                fields: vec![Field::new(id, "i_item_sk", DataType::Int64, false)],
                column_indices: vec![0],
                filters: vec![],
            })),
            predicate: col(id).gt(lit(5i64)),
        })
    }

    #[test]
    fn display_is_indented_tree() {
        let s = filter_over_scan().display();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Filter:"));
        assert!(lines[1].starts_with("  Scan: item"));
    }

    #[test]
    fn node_label_matches_display_lines() {
        let plan = filter_over_scan();
        let s = plan.display();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], plan.node_label());
        assert_eq!(lines[1].trim_start(), plan.children()[0].node_label());
    }

    #[test]
    fn display_annotated_numbers_preorder() {
        let plan = filter_over_scan();
        let s = plan.display_annotated(|idx, _| Some(format!(" [id={idx}]")));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Filter:") && lines[0].ends_with("[id=0]"));
        assert!(lines[1].trim_start().starts_with("Scan:") && lines[1].ends_with("[id=1]"));
    }
}
