// One-shot benchmark driver: aborting on a setup or I/O failure is the
// desired behavior, so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Regenerate the paper's evaluation artifacts (Section V).
//!
//! ```sh
//! cargo run -p fusion-bench --release --bin paper_figures            # everything
//! cargo run -p fusion-bench --release --bin paper_figures -- fig1   # one artifact
//! ```
//!
//! Artifacts: `fig1` (latency improvement per selected query), `fig2`
//! (fraction of data read), `workload` (overall +applicable-subset
//! improvement), `q65`, `scalar`, `q23`, `q95` (per-query deep dives),
//! matching the experiment index in DESIGN.md.

use fusion_bench::{Harness, Measurement};
use fusion_tpcds::{all_queries, featured_queries};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = std::env::var("TPCDS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.5);
    let runs = std::env::var("RUNS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3);
    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    eprintln!("# generating TPC-DS data at scale {scale} (set TPCDS_SCALE to change)...");
    let harness = Harness::new(scale);
    eprintln!(
        "# store_sales rows: {}, medians over {runs} runs (set RUNS to change)\n",
        harness.config.store_sales_rows()
    );

    let needs_featured = ["fig1", "fig2", "q65", "scalar", "q23", "q95"]
        .iter()
        .any(|n| wanted(n));
    if needs_featured {
        let measurements: Vec<Measurement> = featured_queries()
            .iter()
            .map(|q| harness.measure(q, runs))
            .collect();
        if wanted("fig1") {
            fig1(&measurements);
        }
        if wanted("fig2") {
            fig2(&measurements);
        }
        if wanted("q65") {
            deep_dive(measurements.iter().find(|m| m.id == "Q65").unwrap());
        }
        if wanted("scalar") {
            for id in ["Q09", "Q28", "Q88"] {
                deep_dive(measurements.iter().find(|m| m.id == id).unwrap());
            }
        }
        if wanted("q23") {
            deep_dive(measurements.iter().find(|m| m.id == "Q23").unwrap());
        }
        if wanted("q95") {
            deep_dive(measurements.iter().find(|m| m.id == "Q95").unwrap());
        }
    }

    if wanted("workload") {
        workload(&harness, runs);
    }

    if wanted("ablation") {
        ablation(scale);
    }

    if wanted("spill") {
        spill_demo(&harness, scale);
    }
}

/// Per-rule ablation: re-optimize each featured query with one §IV rule
/// disabled and report which queries lose their rewrite — the DESIGN.md
/// ablation study of which rule carries which query.
fn ablation(scale: f64) {
    use fusion_core::OptimizerConfig;
    println!("== Ablation: which rule carries which query ==");
    let rules = [
        "GroupByJoinToWindow",
        "JoinOnKeys",
        "UnionAllOnJoin",
        "UnionAllFusion",
        "SemiToInnerDistinct",
    ];
    print!("{:<6} {:>8}", "query", "full");
    for r in rules {
        print!(" {:>20}", format!("-{r}").chars().take(20).collect::<String>());
    }
    println!();

    let full = Harness::session(scale, |_| {});
    for q in featured_queries() {
        let full_result = full.sql(&q.sql).expect("full");
        print!(
            "{:<6} {:>8}",
            q.id,
            if full_result.report.fusion_applied { "fused" } else { "-" }
        );
        for r in rules {
            let s = Harness::session(scale, |s| {
                s.set_config(OptimizerConfig::without_rule(r));
            });
            let res = s.sql(&q.sql).expect("ablated");
            // "lost" = the ablated optimizer no longer changes the plan at
            // all; "kept" = other rules still fire.
            let status = if res.report.fusion_applied { "kept" } else { "LOST" };
            // Extra signal: did the scan count regress vs the full config?
            let full_scans = full_result.optimized_plan.scanned_tables().len();
            let abl_scans = res.optimized_plan.scanned_tables().len();
            let delta = if abl_scans > full_scans {
                format!("{status}(+{} scans)", abl_scans - full_scans)
            } else {
                status.to_string()
            };
            print!(" {:>20}", delta);
        }
        println!();
    }
    println!("(LOST = no fusion rule fires without it; +N scans = partial rewrite only)\n");
}

/// The §V.C spilling observation: with a working-memory budget between
/// the fused and baseline peaks, the baseline spills and the fused plan
/// does not.
fn spill_demo(harness: &Harness, scale: f64) {
    let q = fusion_tpcds::queries::q23();
    let rb = harness.baseline.sql(&q.sql).expect("baseline");
    let rf = harness.fused.sql(&q.sql).expect("fused");
    let budget = (rb.metrics.peak_state_bytes + rf.metrics.peak_state_bytes) / 2;
    println!("== Spill simulation (§V.C) — Q23 with a {budget}-byte memory budget ==");
    let mut base = Harness::session(scale, |s| s.set_fusion_enabled(false));
    base.set_memory_budget(Some(budget));
    let mut fused = Harness::session(scale, |_| {});
    fused.set_memory_budget(Some(budget));
    let rb = base.sql(&q.sql).expect("baseline");
    let rf = fused.sql(&q.sql).expect("fused");
    println!(
        "baseline: peak state {:>10} bytes, spills {}",
        rb.metrics.peak_state_bytes, rb.metrics.spills
    );
    println!(
        "fused   : peak state {:>10} bytes, spills {}",
        rf.metrics.peak_state_bytes, rf.metrics.spills
    );
    println!("(paper: removing the duplicated common expressions halves the working\n memory and avoids spilling, worth an extra ~50% latency at larger scales)\n");
}

/// Figure 1: latency improvement (baseline/fused) for selected queries.
fn fig1(ms: &[Measurement]) {
    println!("== Figure 1: latency improvement for selected queries ==");
    println!("{:<6} {:>14} {:>14} {:>9}", "query", "baseline", "fused", "speedup");
    for m in ms {
        println!(
            "{:<6} {:>14.2?} {:>14.2?} {:>8.2}x",
            m.id, m.base_latency, m.fused_latency, m.speedup()
        );
    }
    println!("(paper: improvements from <10% for Q01/Q30 up to >6x for the scalar-aggregate queries)\n");
}

/// Figure 2: fraction of input data read vs baseline.
fn fig2(ms: &[Measurement]) {
    println!("== Figure 2: fraction of data read vs baseline ==");
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "query", "baseline bytes", "fused bytes", "fraction"
    );
    for m in ms {
        println!(
            "{:<6} {:>14} {:>14} {:>9.0}%",
            m.id,
            m.base_bytes,
            m.fused_bytes,
            m.bytes_fraction() * 100.0
        );
    }
    println!("(paper: all selected queries read <= ~80% of baseline, some as little as 15%)\n");
}

/// The whole-workload numbers: overall and applicable-subset improvement.
fn workload(harness: &Harness, runs: usize) {
    println!("== Workload: featured queries + non-applicable controls ==");
    let mut total_base = 0.0;
    let mut total_fused = 0.0;
    let mut app_base = 0.0;
    let mut app_fused = 0.0;
    let mut changed = 0usize;
    let queries = all_queries();
    println!(
        "{:<6} {:>14} {:>14} {:>9} {:>8}",
        "query", "baseline", "fused", "speedup", "changed"
    );
    for q in &queries {
        let m = harness.measure(q, runs);
        total_base += m.base_latency.as_secs_f64();
        total_fused += m.fused_latency.as_secs_f64();
        if m.plan_changed {
            changed += 1;
            app_base += m.base_latency.as_secs_f64();
            app_fused += m.fused_latency.as_secs_f64();
        }
        println!(
            "{:<6} {:>14.2?} {:>14.2?} {:>8.2}x {:>8}",
            m.id,
            m.base_latency,
            m.fused_latency,
            m.speedup(),
            if m.plan_changed { "yes" } else { "no" }
        );
        assert_eq!(
            m.plan_changed, q.applicable,
            "{}: plan-changed must match the paper's applicability",
            q.id
        );
    }
    let overall = 100.0 * (1.0 - total_fused / total_base);
    let applicable = 100.0 * (1.0 - app_fused / app_base);
    println!("\nqueries with changed plans: {changed}/{}", queries.len());
    println!("overall workload improvement:     {overall:.1}%   (paper: 14% on the 99-query workload)");
    println!("applicable-subset improvement:    {applicable:.1}%   (paper: ~60% on queries whose plans changed)\n");
}

/// Per-query §V deep dive: plans, scans, bytes, memory.
fn deep_dive(m: &Measurement) {
    println!("== {} deep dive ==", m.id);
    let count = |r: &fusion_engine::QueryResult| r.optimized_plan.scanned_tables().len();
    println!(
        "table scans: baseline {} -> fused {}",
        count(&m.base_result),
        count(&m.fused_result)
    );
    println!(
        "latency    : {:>10.2?} -> {:>10.2?} ({:.2}x)",
        m.base_latency,
        m.fused_latency,
        m.speedup()
    );
    println!(
        "bytes read : {:>10} -> {:>10} ({:.0}% of baseline)",
        m.base_bytes,
        m.fused_bytes,
        m.bytes_fraction() * 100.0
    );
    println!(
        "peak state : {:>10} -> {:>10} (the §V.C memory effect)",
        m.base_peak_state, m.fused_peak_state
    );
    println!("fused plan:\n{}", m.fused_result.optimized_plan.display());
}
