//! The `MarkDistinct` operator (§III.F).

use std::collections::HashSet;
use std::sync::Arc;

use fusion_common::{ColumnId, Result, Schema, Value};
use fusion_expr::Expr;

use crate::context::{BudgetedReservation, ExecContext, IntoContext};
use crate::ops::{row_bytes, BoxedOp, Operator, RowIndex};
use crate::profile::OpSpan;
use crate::Chunk;

/// Streams the input through, appending a boolean column that is TRUE the
/// first time each combination of the marked columns is observed and
/// FALSE for every subsequent occurrence. Combined with aggregate masks
/// this implements distinct aggregates without self-joins.
pub struct MarkDistinctExec {
    input: BoxedOp,
    positions: Vec<usize>,
    /// Native mask (§III.F extension): rows failing it are marked FALSE
    /// and excluded from first-occurrence tracking.
    mask: Option<Expr>,
    index: RowIndex,
    seen: HashSet<Vec<Value>>,
    schema: Schema,
    ctx: Arc<ExecContext>,
    reservation: BudgetedReservation,
}

impl MarkDistinctExec {
    pub fn new(
        input: BoxedOp,
        columns: &[ColumnId],
        mask: Expr,
        schema: Schema,
        ctx: impl IntoContext,
    ) -> Result<Self> {
        let ctx = ctx.into_ctx();
        let index = RowIndex::new(input.schema());
        let positions = columns
            .iter()
            .map(|c| index.position(*c))
            .collect::<Result<Vec<_>>>()?;
        let mask = if mask.is_true_literal() { None } else { Some(mask) };
        let reservation = BudgetedReservation::try_new(ctx.clone(), 0)?;
        Ok(MarkDistinctExec {
            input,
            positions,
            mask,
            index,
            seen: HashSet::new(),
            schema,
            ctx,
            reservation,
        })
    }
}

impl Operator for MarkDistinctExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn attach_span(&mut self, span: Arc<OpSpan>) {
        // The seen-set reservation exists from construction; attaching
        // the span retroactively credits its current bytes too.
        self.reservation.set_span(span);
    }

    fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        match self.input.next_chunk()? {
            None => Ok(None),
            Some(chunk) => {
                self.ctx.check()?;
                let mut out = Vec::with_capacity(chunk.len());
                for mut row in chunk {
                    let masked_out = match &self.mask {
                        Some(m) => !self.index.eval_pred(m, &row)?,
                        None => false,
                    };
                    let first = if masked_out {
                        false
                    } else {
                        let key: Vec<Value> = self
                            .positions
                            .iter()
                            .map(|&p| row[p].clone())
                            .collect();
                        if self.seen.contains(&key) {
                            false
                        } else {
                            self.reservation.try_grow(row_bytes(&key))?;
                            self.seen.insert(key);
                            true
                        }
                    };
                    row.push(Value::Boolean(first));
                    out.push(row);
                }
                Ok(Some(out))
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::ops::basic::ConstantTableExec;
    use crate::ops::drain;
    use fusion_common::{DataType, Field};

    fn source(values: &[i64]) -> BoxedOp {
        let schema = Schema::new(vec![Field::new(ColumnId(1), "x", DataType::Int64, true)]);
        Box::new(ConstantTableExec::new(
            values.iter().map(|v| vec![Value::Int64(*v)]).collect(),
            schema,
        ))
    }

    fn out_schema() -> Schema {
        Schema::new(vec![
            Field::new(ColumnId(1), "x", DataType::Int64, true),
            Field::new(ColumnId(2), "d", DataType::Boolean, false),
        ])
    }

    #[test]
    fn first_occurrence_marked_true() {
        let mut md = MarkDistinctExec::new(
            source(&[5, 5, 7, 5, 7]),
            &[ColumnId(1)],
            Expr::boolean(true),
            out_schema(),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut md).unwrap();
        let marks: Vec<bool> = rows
            .iter()
            .map(|r| r[1].as_bool().unwrap())
            .collect();
        assert_eq!(marks, vec![true, false, true, false, false]);
    }

    #[test]
    fn nulls_form_their_own_group() {
        let schema = Schema::new(vec![Field::new(ColumnId(1), "x", DataType::Int64, true)]);
        let input: BoxedOp = Box::new(ConstantTableExec::new(
            vec![vec![Value::Null], vec![Value::Null], vec![Value::Int64(1)]],
            schema,
        ));
        let mut md =
            MarkDistinctExec::new(input, &[ColumnId(1)], Expr::boolean(true), out_schema(), ExecMetrics::new())
                .unwrap();
        let rows = drain(&mut md).unwrap();
        let marks: Vec<bool> = rows.iter().map(|r| r[1].as_bool().unwrap()).collect();
        assert_eq!(marks, vec![true, false, true]);
    }

    /// Native masks (§III.F extension): rows failing the mask are marked
    /// FALSE and do not consume first occurrences.
    #[test]
    fn masked_rows_do_not_claim_first_occurrence() {
        use fusion_expr::{col, lit};
        // Values: 5 (masked out), 5, 7, 5, 7 — mask: x > 4 is true for
        // all; use x <> 5 to mask out the 5s except... use x > 6.
        let mut md = MarkDistinctExec::new(
            source(&[5, 5, 7, 5, 7]),
            &[ColumnId(1)],
            col(ColumnId(1)).gt(lit(6i64)),
            out_schema(),
            ExecMetrics::new(),
        )
        .unwrap();
        let rows = drain(&mut md).unwrap();
        let marks: Vec<bool> = rows.iter().map(|r| r[1].as_bool().unwrap()).collect();
        // Only the first 7 is marked; every 5 is masked out.
        assert_eq!(marks, vec![false, false, true, false, false]);
    }

    #[test]
    fn state_is_metered() {
        let m = ExecMetrics::new();
        let mut md =
            MarkDistinctExec::new(source(&[1, 2, 3]), &[ColumnId(1)], Expr::boolean(true), out_schema(), m.clone())
                .unwrap();
        drain(&mut md).unwrap();
        assert!(m.peak_state_bytes() > 0);
    }
}
