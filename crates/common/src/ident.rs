//! Column identities.
//!
//! Every column produced anywhere in a query plan carries a globally
//! unique [`ColumnId`]. Two scans of the same base table produce columns
//! with *different* ids; the fusion machinery reasons about mappings
//! between ids. An [`IdGen`] is owned by the planning session and shared
//! (cheaply, it is atomic) by the planner and the optimizer, since
//! optimizer rules also need to mint fresh columns (tags, compensating
//! counts, window outputs, ...).

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A globally unique column identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Generator of fresh [`ColumnId`]s, shared across planner and optimizer.
#[derive(Debug, Clone, Default)]
pub struct IdGen {
    next: Arc<AtomicU32>,
}

impl IdGen {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next fresh column id.
    pub fn fresh(&self) -> ColumnId {
        ColumnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate `n` consecutive fresh ids.
    pub fn fresh_n(&self, n: usize) -> Vec<ColumnId> {
        (0..n).map(|_| self.fresh()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let g = IdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn clones_share_the_counter() {
        let g = IdGen::new();
        let g2 = g.clone();
        let a = g.fresh();
        let b = g2.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn fresh_n_allocates_distinct_ids() {
        let g = IdGen::new();
        let ids = g.fresh_n(5);
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), 5);
        assert_eq!(dedup.len(), 5);
    }
}
