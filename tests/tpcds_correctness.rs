// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! End-to-end correctness of the fusion rules on the TPC-DS workload:
//! every benchmark query must produce identical results with fusion on
//! and off, the featured queries must actually change plans (and scan
//! fewer bytes), and the control queries must not change plans.

use fusion_engine::Session;
use fusion_tpcds::{all_queries, generate_catalog, BenchQuery, TpcdsConfig};

fn sessions() -> (Session, Session) {
    // Generation is deterministic, so both sessions see identical data.
    let cfg = TpcdsConfig::with_scale(0.12);
    let mut fused = Session::new();
    for table in generate_catalog(&cfg).into_tables() {
        fused.register_table(table);
    }
    let mut baseline = Session::baseline();
    for table in generate_catalog(&cfg).into_tables() {
        baseline.register_table(table);
    }
    (fused, baseline)
}

fn check_query(fused: &Session, baseline: &Session, q: &BenchQuery) {
    let rf = fused
        .sql(&q.sql)
        .unwrap_or_else(|e| panic!("{} failed with fusion on: {e}", q.id));
    let rb = baseline
        .sql(&q.sql)
        .unwrap_or_else(|e| panic!("{} failed with fusion off: {e}", q.id));

    assert_eq!(
        rf.sorted_rows(),
        rb.sorted_rows(),
        "{}: fused and baseline results differ\nfused plan:\n{}\nbaseline plan:\n{}",
        q.id,
        rf.optimized_plan.display(),
        rb.optimized_plan.display()
    );

    if q.applicable {
        assert!(
            rf.report.fusion_applied,
            "{}: expected fusion rules to fire\nplan:\n{}",
            q.id,
            rf.optimized_plan.display()
        );
        assert!(
            rf.metrics.bytes_scanned < rb.metrics.bytes_scanned,
            "{}: expected fewer bytes scanned (fused {} vs baseline {})",
            q.id,
            rf.metrics.bytes_scanned,
            rb.metrics.bytes_scanned
        );
    } else {
        assert!(
            !rf.report.fusion_applied,
            "{}: control query must not trigger fusion\nplan:\n{}",
            q.id,
            rf.optimized_plan.display()
        );
        assert_eq!(
            rf.metrics.bytes_scanned, rb.metrics.bytes_scanned,
            "{}: control query must scan identical bytes",
            q.id
        );
    }
}

macro_rules! query_test {
    ($name:ident, $id:expr) => {
        #[test]
        fn $name() {
            let (fused, baseline) = sessions();
            let queries = all_queries();
            let q = queries.iter().find(|q| q.id == $id).expect("known query");
            check_query(&fused, &baseline, q);
        }
    };
}

query_test!(q01_window_rule, "Q01");
query_test!(q09_scalar_aggregates, "Q09");
query_test!(q23_union_on_join, "Q23");
query_test!(q28_distinct_aggregates, "Q28");
query_test!(q30_window_rule_state, "Q30");
query_test!(q65_motivating_query, "Q65");
query_test!(q88_joined_scalar_counts, "Q88");
query_test!(q95_semi_join_dedup, "Q95");
query_test!(control_q03, "C03");
query_test!(control_q07, "C07");
query_test!(control_q42, "C42");
query_test!(control_q52, "C52");
query_test!(control_q55, "C55");
query_test!(control_q96, "C96");
query_test!(control_inventory, "CINV");

/// The featured queries must produce non-trivial results at test scale —
/// otherwise result equivalence would hold vacuously.
#[test]
fn featured_queries_produce_rows() {
    let (fused, _) = sessions();
    for q in fusion_tpcds::featured_queries() {
        let r = fused.sql(&q.sql).unwrap();
        assert!(
            !r.rows.is_empty(),
            "{}: expected at least one result row",
            q.id
        );
    }
}

query_test!(intro_union_fusion, "INTRO");
