//! Predicate pushdown.
//!
//! Moves filter conjuncts toward the leaves: through projections
//! (substituting assignments), into the matching side of inner/semi/left
//! joins, and finally *into* table scans, where they drive partition
//! pruning (the bytes-scanned meter, i.e. the customer's bill, only
//! counts partitions actually read).

use fusion_expr::{conjoin, split_conjuncts};
use fusion_plan::{Filter, Join, JoinType, LogicalPlan, Project, Scan};

use super::Rule;
use crate::fuse::FuseContext;

pub struct PushdownPredicates;

impl Rule for PushdownPredicates {
    fn name(&self) -> &'static str {
        "PushdownPredicates"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &FuseContext) -> Option<LogicalPlan> {
        let f = match plan {
            LogicalPlan::Filter(f) => f,
            _ => return None,
        };
        let conjuncts = split_conjuncts(&f.predicate);
        match f.input.as_ref() {
            LogicalPlan::Scan(s) => {
                // Deterministic predicates move into the scan.
                let mut scan = Scan {
                    table: s.table.clone(),
                    fields: s.fields.clone(),
                    column_indices: s.column_indices.clone(),
                    filters: s.filters.clone(),
                };
                scan.filters.extend(conjuncts);
                Some(LogicalPlan::Scan(scan))
            }
            LogicalPlan::Project(p) => {
                // Substitute projection assignments into the predicate and
                // push below.
                let map: std::collections::HashMap<_, _> = p
                    .exprs
                    .iter()
                    .map(|pe| (pe.id, pe.expr.clone()))
                    .collect();
                let pushed = conjoin(conjuncts.iter().map(|c| c.substitute(&map)));
                Some(LogicalPlan::Project(Project {
                    input: Box::new(LogicalPlan::Filter(Filter {
                        input: p.input.clone(),
                        predicate: pushed,
                    })),
                    exprs: p.exprs.clone(),
                }))
            }
            LogicalPlan::Join(j) => {
                let left_schema = j.left.schema();
                let right_schema = j.right.schema();
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut keep = Vec::new();
                for c in conjuncts {
                    let cols = c.columns();
                    let in_left = cols.iter().all(|id| left_schema.contains(*id));
                    let in_right = cols.iter().all(|id| right_schema.contains(*id));
                    // Which sides may receive pushed predicates?
                    let (left_ok, right_ok) = match j.join_type {
                        JoinType::Inner | JoinType::Cross => (true, true),
                        // A filter above a left join can push to the left
                        // side; pushing right would change padded rows.
                        JoinType::Left => (true, false),
                        JoinType::Semi => (true, false),
                    };
                    if in_left && left_ok && !cols.is_empty() {
                        to_left.push(c);
                    } else if in_right && right_ok && !cols.is_empty() {
                        to_right.push(c);
                    } else {
                        keep.push(c);
                    }
                }
                if to_left.is_empty() && to_right.is_empty() {
                    return None;
                }
                let mut left = j.left.as_ref().clone();
                if !to_left.is_empty() {
                    left = LogicalPlan::Filter(Filter {
                        input: Box::new(left),
                        predicate: conjoin(to_left),
                    });
                }
                let mut right = j.right.as_ref().clone();
                if !to_right.is_empty() {
                    right = LogicalPlan::Filter(Filter {
                        input: Box::new(right),
                        predicate: conjoin(to_right),
                    });
                }
                let new_join = LogicalPlan::Join(Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    join_type: j.join_type,
                    condition: j.condition.clone(),
                });
                if keep.is_empty() {
                    Some(new_join)
                } else {
                    Some(LogicalPlan::Filter(Filter {
                        input: Box::new(new_join),
                        predicate: conjoin(keep),
                    }))
                }
            }
            LogicalPlan::UnionAll(u) => {
                // Push positionally into every branch.
                let out_ids = u.fields.iter().map(|f| f.id).collect::<Vec<_>>();
                let mut new_inputs = Vec::with_capacity(u.inputs.len());
                for input in &u.inputs {
                    let in_ids = input.schema().ids();
                    let map: fusion_expr::ColumnMap = out_ids
                        .iter()
                        .zip(&in_ids)
                        .map(|(o, i)| (*o, *i))
                        .collect();
                    new_inputs.push(LogicalPlan::Filter(Filter {
                        input: Box::new(input.clone()),
                        predicate: f.predicate.map_columns(&map),
                    }));
                }
                Some(LogicalPlan::UnionAll(fusion_plan::UnionAll {
                    inputs: new_inputs,
                    fields: u.fields.clone(),
                }))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::apply_everywhere;
    use fusion_common::{DataType, IdGen};
    use fusion_expr::{col, lit};
    use fusion_plan::builder::ColumnDef;
    use fusion_plan::PlanBuilder;

    fn cols(p: &str) -> Vec<ColumnDef> {
        vec![
            ColumnDef::new(format!("{p}_k"), DataType::Int64, false),
            ColumnDef::new(format!("{p}_v"), DataType::Int64, true),
        ]
    }

    fn fixpoint(plan: &LogicalPlan, ctx: &FuseContext) -> LogicalPlan {
        let mut current = plan.clone();
        let mut fuel = 20;
        while fuel > 0 {
            match apply_everywhere(&PushdownPredicates, &current, ctx) {
                Some(next) => current = next,
                None => break,
            }
            fuel -= 1;
        }
        current
    }

    #[test]
    fn pushes_into_scan() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t = PlanBuilder::scan(&gen, "t", &cols("t"));
        let k = t.col("t_k").unwrap();
        let plan = t.filter(col(k).gt(lit(5i64))).build();
        let pushed = fixpoint(&plan, &ctx);
        pushed.validate().unwrap();
        match &pushed {
            LogicalPlan::Scan(s) => assert_eq!(s.filters.len(), 1),
            other => panic!("expected Scan, got {}", other.op_name()),
        }
    }

    #[test]
    fn splits_across_inner_join() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "a", &cols("a"));
        let b = PlanBuilder::scan(&gen, "b", &cols("b"));
        let (ak, av) = (a.col("a_k").unwrap(), a.col("a_v").unwrap());
        let (bk, bv) = (b.col("b_k").unwrap(), b.col("b_v").unwrap());
        let plan = a
            .join(b.build(), fusion_plan::JoinType::Inner, col(ak).eq_to(col(bk)))
            .filter(
                col(av)
                    .gt(lit(1i64))
                    .and(col(bv).lt(lit(9i64)))
                    .and(col(av).not_eq_to(col(bv))),
            )
            .build();
        let pushed = fixpoint(&plan, &ctx);
        pushed.validate().unwrap();
        // Both scans got their local predicates; the mixed one remains.
        let mut scan_filters = 0;
        pushed.visit(&mut |p| {
            if let LogicalPlan::Scan(s) = p {
                scan_filters += s.filters.len();
            }
        });
        assert_eq!(scan_filters, 2);
        assert!(matches!(pushed, LogicalPlan::Filter(_)));
    }

    #[test]
    fn pushes_through_projection_with_substitution() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let t = PlanBuilder::scan(&gen, "t", &cols("t"));
        let k = t.col("t_k").unwrap();
        let p = t.project(vec![("x", col(k).add(lit(1i64)))]);
        let x = p.col("x").unwrap();
        let plan = p.filter(col(x).gt(lit(10i64))).build();
        let pushed = fixpoint(&plan, &ctx);
        pushed.validate().unwrap();
        // The scan filter is (k + 1) > 10.
        let mut found = false;
        pushed.visit(&mut |pl| {
            if let LogicalPlan::Scan(s) = pl {
                if !s.filters.is_empty() {
                    assert!(s.filters[0].to_string().contains("+ 1"));
                    found = true;
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn does_not_push_right_of_left_join() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "a", &cols("a"));
        let b = PlanBuilder::scan(&gen, "b", &cols("b"));
        let (ak, bk, bv) = (
            a.col("a_k").unwrap(),
            b.col("b_k").unwrap(),
            b.col("b_v").unwrap(),
        );
        let plan = a
            .join(b.build(), fusion_plan::JoinType::Left, col(ak).eq_to(col(bk)))
            .filter(col(bv).gt(lit(0i64)))
            .build();
        let pushed = fixpoint(&plan, &ctx);
        // Predicate over the nullable right side must stay above the join.
        assert!(matches!(pushed, LogicalPlan::Filter(_)));
    }

    #[test]
    fn pushes_into_union_branches() {
        let gen = IdGen::new();
        let ctx = FuseContext::new(gen.clone());
        let a = PlanBuilder::scan(&gen, "a", &cols("a"));
        let b = PlanBuilder::scan(&gen, "a", &cols("a")).build();
        let u = a.union_all(vec![b]).unwrap();
        let k = u.schema().field(0).id;
        let plan = u.filter(col(k).gt(lit(3i64))).build();
        let pushed = fixpoint(&plan, &ctx);
        pushed.validate().unwrap();
        let mut scan_filters = 0;
        pushed.visit(&mut |p| {
            if let LogicalPlan::Scan(s) = p {
                scan_filters += s.filters.len();
            }
        });
        assert_eq!(scan_filters, 2);
    }
}
