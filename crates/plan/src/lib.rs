//! Logical plan IR for the athena-fusion engine.
//!
//! Plans are trees of standard relational operators. A deliberate design
//! point, inherited from the paper: **query fusion introduces no new
//! operators** — fused results are expressed with the operators in this
//! crate (`Filter`, `Project`, `Aggregate` with masks, `Window`,
//! `MarkDistinct`, `UnionAll`, `ConstantTable`, ...), so every other
//! optimizer rule composes with fusion output unchanged.
//!
//! Operators carry identity-based schemas (`fusion_common::Field`), and
//! grouping columns of an [`Aggregate`] *reuse* the input column
//! identities (a grouped `ss_store_sk` is still the same value, just
//! deduplicated), which makes the paper's `K1 = M(K2)` grouping-key test a
//! set comparison over `ColumnId`s.

pub mod builder;
pub mod display;
pub mod plan;
pub mod validate;
pub mod visit;

pub use builder::PlanBuilder;
pub use plan::{
    AggAssign, Aggregate, ConstantTable, EnforceSingleRow, Filter, Join, JoinType, Limit,
    LogicalPlan, MarkDistinct, Project, ProjExpr, Scan, Sort, SortKey, UnionAll, Window,
    WindowAssign,
};
