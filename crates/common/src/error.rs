//! Error handling shared by all athena-fusion crates.

use std::fmt;

/// The error type used throughout the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    /// A plan is structurally invalid (unknown column, arity mismatch, ...).
    Plan(String),
    /// A schema-level problem (duplicate ids, missing field, ...).
    Schema(String),
    /// A type error detected during analysis or evaluation.
    Type(String),
    /// An error raised while executing a physical plan.
    Execution(String),
    /// A SQL lexing/parsing/planning error.
    Sql(String),
    /// `EnforceSingleRow` saw zero or more than one row.
    SingleRowViolation(usize),
    /// An internal invariant was broken; indicates a bug in the engine.
    Internal(String),
    /// A feature that is intentionally out of scope.
    NotImplemented(String),
    /// The query was cancelled by the caller.
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded,
    /// An enforced memory budget was exceeded. Carries the budget and the
    /// reservation that would have crossed it.
    ResourceExhausted { budget: usize, requested: usize },
    /// A transient I/O failure (e.g. a storage read that may succeed on
    /// retry). The only retryable error class.
    TransientIo(String),
    /// Data failed an integrity check; retrying cannot help.
    DataCorruption(String),
    /// The query service refused to admit a query: the tenant's queue
    /// depth, in-flight cap, or memory budget is exhausted. A governance
    /// verdict on the *tenant*, not on the query — resubmitting after
    /// in-flight work drains may succeed.
    AdmissionRejected { tenant: String, reason: String },
}

/// Stable, machine-readable error codes. Unlike `Display` strings these are
/// part of the crate's contract: they never change meaning and can be
/// logged, matched on, or sent across process boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    Plan,
    Schema,
    Type,
    Execution,
    Sql,
    SingleRowViolation,
    Internal,
    NotImplemented,
    Cancelled,
    DeadlineExceeded,
    ResourceExhausted,
    TransientIo,
    DataCorruption,
    AdmissionRejected,
}

impl ErrorCode {
    /// The stable string form (`FUSION_...`), e.g. for logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Plan => "FUSION_PLAN",
            ErrorCode::Schema => "FUSION_SCHEMA",
            ErrorCode::Type => "FUSION_TYPE",
            ErrorCode::Execution => "FUSION_EXECUTION",
            ErrorCode::Sql => "FUSION_SQL",
            ErrorCode::SingleRowViolation => "FUSION_SINGLE_ROW_VIOLATION",
            ErrorCode::Internal => "FUSION_INTERNAL",
            ErrorCode::NotImplemented => "FUSION_NOT_IMPLEMENTED",
            ErrorCode::Cancelled => "FUSION_CANCELLED",
            ErrorCode::DeadlineExceeded => "FUSION_DEADLINE_EXCEEDED",
            ErrorCode::ResourceExhausted => "FUSION_RESOURCE_EXHAUSTED",
            ErrorCode::TransientIo => "FUSION_TRANSIENT_IO",
            ErrorCode::DataCorruption => "FUSION_DATA_CORRUPTION",
            ErrorCode::AdmissionRejected => "FUSION_ADMISSION_REJECTED",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FusionError {
    /// The stable code for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            FusionError::Plan(_) => ErrorCode::Plan,
            FusionError::Schema(_) => ErrorCode::Schema,
            FusionError::Type(_) => ErrorCode::Type,
            FusionError::Execution(_) => ErrorCode::Execution,
            FusionError::Sql(_) => ErrorCode::Sql,
            FusionError::SingleRowViolation(_) => ErrorCode::SingleRowViolation,
            FusionError::Internal(_) => ErrorCode::Internal,
            FusionError::NotImplemented(_) => ErrorCode::NotImplemented,
            FusionError::Cancelled => ErrorCode::Cancelled,
            FusionError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            FusionError::ResourceExhausted { .. } => ErrorCode::ResourceExhausted,
            FusionError::TransientIo(_) => ErrorCode::TransientIo,
            FusionError::DataCorruption(_) => ErrorCode::DataCorruption,
            FusionError::AdmissionRejected { .. } => ErrorCode::AdmissionRejected,
        }
    }

    /// Whether retrying the same operation may succeed. Only transient
    /// I/O failures qualify: every other class is deterministic (bad
    /// plan, corrupt data, exhausted budget) or caller-initiated.
    pub fn is_retryable(&self) -> bool {
        matches!(self, FusionError::TransientIo(_))
    }

    /// Whether a *fused* plan that failed with this error may be retried
    /// as the unfused baseline plan. Resource-limit and caller-initiated
    /// errors would hit the baseline identically (or are explicit caller
    /// decisions), and single-row violations are data properties that
    /// fusion cannot change — degrading would just duplicate work.
    pub fn allows_fallback(&self) -> bool {
        !matches!(
            self,
            FusionError::Cancelled
                | FusionError::DeadlineExceeded
                | FusionError::ResourceExhausted { .. }
                | FusionError::SingleRowViolation(_)
                | FusionError::AdmissionRejected { .. }
        )
    }
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::Plan(msg) => write!(f, "plan error: {msg}"),
            FusionError::Schema(msg) => write!(f, "schema error: {msg}"),
            FusionError::Type(msg) => write!(f, "type error: {msg}"),
            FusionError::Execution(msg) => write!(f, "execution error: {msg}"),
            FusionError::Sql(msg) => write!(f, "SQL error: {msg}"),
            FusionError::SingleRowViolation(n) => {
                write!(f, "scalar subquery returned {n} rows, expected exactly 1")
            }
            FusionError::Internal(msg) => write!(f, "internal error: {msg}"),
            FusionError::NotImplemented(msg) => write!(f, "not implemented: {msg}"),
            FusionError::Cancelled => write!(f, "query cancelled"),
            FusionError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            FusionError::ResourceExhausted { budget, requested } => write!(
                f,
                "memory budget exhausted: {requested} bytes requested against a {budget}-byte budget"
            ),
            FusionError::TransientIo(msg) => write!(f, "transient I/O error: {msg}"),
            FusionError::DataCorruption(msg) => write!(f, "data corruption: {msg}"),
            FusionError::AdmissionRejected { tenant, reason } => {
                write!(f, "admission rejected for tenant {tenant}: {reason}")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// Convenience alias used across the workspace.
pub type Result<T, E = FusionError> = std::result::Result<T, E>;

/// Build a [`FusionError::Plan`] from format arguments.
#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => {
        Err($crate::FusionError::Plan(format!($($arg)*)))
    };
}

/// Build a [`FusionError::Internal`] from format arguments.
#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        Err($crate::FusionError::Internal(format!($($arg)*)))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variant_payloads() {
        assert_eq!(
            FusionError::Plan("bad".into()).to_string(),
            "plan error: bad"
        );
        assert_eq!(
            FusionError::SingleRowViolation(3).to_string(),
            "scalar subquery returned 3 rows, expected exactly 1"
        );
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            FusionError::Plan(String::new()),
            FusionError::Schema(String::new()),
            FusionError::Type(String::new()),
            FusionError::Execution(String::new()),
            FusionError::Sql(String::new()),
            FusionError::SingleRowViolation(0),
            FusionError::Internal(String::new()),
            FusionError::NotImplemented(String::new()),
            FusionError::Cancelled,
            FusionError::DeadlineExceeded,
            FusionError::ResourceExhausted {
                budget: 0,
                requested: 0,
            },
            FusionError::TransientIo(String::new()),
            FusionError::DataCorruption(String::new()),
            FusionError::AdmissionRejected {
                tenant: String::new(),
                reason: String::new(),
            },
        ];
        let codes: std::collections::HashSet<_> = all.iter().map(|e| e.code().as_str()).collect();
        assert_eq!(codes.len(), all.len(), "codes must be distinct");
        assert_eq!(FusionError::Cancelled.code().as_str(), "FUSION_CANCELLED");
    }

    #[test]
    fn only_transient_io_is_retryable() {
        assert!(FusionError::TransientIo("flaky read".into()).is_retryable());
        assert!(!FusionError::DataCorruption("bad page".into()).is_retryable());
        assert!(!FusionError::Execution("div by zero".into()).is_retryable());
        assert!(!FusionError::Cancelled.is_retryable());
    }

    #[test]
    fn fallback_excludes_resource_and_caller_errors() {
        assert!(FusionError::Execution("boom".into()).allows_fallback());
        assert!(FusionError::DataCorruption("bad".into()).allows_fallback());
        assert!(!FusionError::Cancelled.allows_fallback());
        assert!(!FusionError::DeadlineExceeded.allows_fallback());
        assert!(!FusionError::ResourceExhausted {
            budget: 1,
            requested: 2
        }
        .allows_fallback());
        assert!(!FusionError::SingleRowViolation(2).allows_fallback());
        assert!(!FusionError::AdmissionRejected {
            tenant: "a".into(),
            reason: "full".into()
        }
        .allows_fallback());
    }

    #[test]
    fn macros_produce_err_variants() {
        let r: Result<()> = plan_err!("x = {}", 1);
        assert_eq!(r, Err(FusionError::Plan("x = 1".into())));
        let r: Result<()> = internal_err!("boom");
        assert_eq!(r, Err(FusionError::Internal("boom".into())));
    }
}
