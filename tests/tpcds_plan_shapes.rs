// Test code: unwrap/panic on setup or assertion failure is the point,
// so the workspace unwrap/panic gate is relaxed here.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Structural assertions on the fused plans: each featured query must be
//! rewritten into the *shape* the paper describes in Sections I and V —
//! not just produce correct results faster.

use fusion_core::OptimizerConfig;
use fusion_engine::Session;
use fusion_plan::{JoinType, LogicalPlan};
use fusion_tpcds::{generate_catalog, queries, TpcdsConfig};

fn session() -> Session {
    let cfg = TpcdsConfig::with_scale(0.05);
    let mut s = Session::new();
    for t in generate_catalog(&cfg).into_tables() {
        s.register_table(t);
    }
    s
}

fn scan_count(plan: &LogicalPlan, table: &str) -> usize {
    plan.scanned_tables().iter().filter(|t| *t == table).count()
}

fn count_nodes(plan: &LogicalPlan, pred: &dyn Fn(&LogicalPlan) -> bool) -> usize {
    let mut n = 0;
    plan.visit(&mut |p| {
        if pred(p) {
            n += 1;
        }
    });
    n
}

/// §I / Q65: the duplicated aggregation pipeline becomes a single one
/// with a window aggregate over it; store_sales and date_dim are read
/// once.
#[test]
fn q65_becomes_window_over_single_pipeline() {
    let s = session();
    let plan = s.plan_sql(&queries::q65().sql).unwrap();
    let (optimized, report) = s.optimize(&plan);

    assert!(report.fusion_applied);
    assert_eq!(scan_count(&plan, "store_sales"), 2);
    assert_eq!(scan_count(&optimized, "store_sales"), 1);
    assert_eq!(scan_count(&optimized, "date_dim"), 1);
    assert_eq!(
        count_nodes(&optimized, &|p| matches!(p, LogicalPlan::Window(_))),
        1
    );
    // Exactly one aggregation pipeline remains (the (store,item) one).
    assert_eq!(
        count_nodes(&optimized, &|p| matches!(p, LogicalPlan::Aggregate(_))),
        1
    );
}

/// §V.A / Q01: decorrelation + fusion leave one store_returns pipeline
/// and a window; the store/customer joins survive around it.
#[test]
fn q01_decorrelates_and_fuses_to_window() {
    let s = session();
    let plan = s.plan_sql(&queries::q01().sql).unwrap();
    let (optimized, report) = s.optimize(&plan);
    assert!(report.fusion_applied);
    assert_eq!(scan_count(&plan, "store_returns"), 2);
    assert_eq!(scan_count(&optimized, "store_returns"), 1);
    assert!(count_nodes(&optimized, &|p| matches!(p, LogicalPlan::Window(_))) == 1);
    assert_eq!(scan_count(&optimized, "store"), 1);
    assert_eq!(scan_count(&optimized, "customer"), 1);
}

/// §V.B / Q09: fifteen scalar subqueries merge into one scan of
/// store_sales with fifteen masked aggregates; no joins between the
/// former subqueries remain (one cross join against `reason`).
#[test]
fn q09_collapses_to_one_masked_scan() {
    let s = session();
    let plan = s.plan_sql(&queries::q09().sql).unwrap();
    let (optimized, report) = s.optimize(&plan);
    assert!(report.fusion_applied);
    assert_eq!(scan_count(&plan, "store_sales"), 15);
    assert_eq!(scan_count(&optimized, "store_sales"), 1);
    // One scalar aggregate with all 15 outputs.
    let mut agg_outputs = 0;
    optimized.visit(&mut |p| {
        if let LogicalPlan::Aggregate(a) = p {
            if a.is_scalar() {
                agg_outputs += a.aggregates.len();
            }
        }
    });
    assert_eq!(agg_outputs, 15);
    // The scan's pushed filter is the disjunction of the five buckets.
    let mut pushed_or = false;
    optimized.visit(&mut |p| {
        if let LogicalPlan::Scan(sc) = p {
            if sc.table == "store_sales" {
                pushed_or = sc.filters.iter().any(|f| f.to_string().contains("OR"));
            }
        }
    });
    assert!(pushed_or, "bucket disjunction must push into the scan");
}

/// §V.B / Q28: the distinct aggregates keep exactly one MarkDistinct per
/// bucket, each carrying its bucket as a *native mask*.
#[test]
fn q28_mark_distincts_carry_native_masks() {
    let s = session();
    let plan = s.plan_sql(&queries::q28().sql).unwrap();
    let (optimized, report) = s.optimize(&plan);
    assert!(report.fusion_applied);
    assert_eq!(scan_count(&optimized, "store_sales"), 1);
    let mut masked_mds = 0;
    optimized.visit(&mut |p| {
        if let LogicalPlan::MarkDistinct(m) = p {
            assert!(
                !m.mask.is_true_literal(),
                "fused MarkDistinct must be scoped by its bucket"
            );
            masked_mds += 1;
        }
    });
    assert_eq!(masked_mds, 3);
}

/// §V.C / Q23: after repeated UnionAllOnJoin, a UnionAll of the two raw
/// fact-table scans sits below the (formerly duplicated) subquery joins.
#[test]
fn q23_pushes_union_below_shared_subqueries() {
    let s = session();
    let plan = s.plan_sql(&queries::q23().sql).unwrap();
    let (optimized, report) = s.optimize(&plan);
    assert!(report.fusion_applied);
    for table in ["date_dim", "item", "customer"] {
        assert!(
            scan_count(&optimized, table) < scan_count(&plan, table),
            "{table} must be deduplicated"
        );
    }
    // The UnionAll's branches are projections directly over the fact
    // scans (the paper's rewritten plan).
    let mut union_over_facts = false;
    optimized.visit(&mut |p| {
        if let LogicalPlan::UnionAll(u) = p {
            let tables: Vec<String> =
                u.inputs.iter().flat_map(|i| i.scanned_tables()).collect();
            if tables == ["catalog_sales", "web_sales"] {
                union_over_facts = u
                    .inputs
                    .iter()
                    .all(|i| i.node_count() <= 2); // Project over Scan
            }
        }
    });
    assert!(union_over_facts, "{}", optimized.display());
}

/// §V.D / Q95: one instance of the ws_wh self-join is eliminated and no
/// semi joins survive the dedup chain.
#[test]
fn q95_deduplicates_self_join_cte() {
    let s = session();
    let plan = s.plan_sql(&queries::q95().sql).unwrap();
    let (optimized, report) = s.optimize(&plan);
    assert!(report.fusion_applied);
    // 1 probe + 2×2 (two ws_wh instances) = 5 → 1 probe + 2 (one ws_wh).
    assert_eq!(scan_count(&plan, "web_sales"), 5);
    assert_eq!(scan_count(&optimized, "web_sales"), 3);
    assert_eq!(
        count_nodes(&optimized, &|p| matches!(
            p,
            LogicalPlan::Join(j) if j.join_type == JoinType::Semi
        )),
        0
    );
}

/// Control: an already-minimal star join must be left byte-identical by
/// the fusion phase (same plan with fusion on and off).
#[test]
fn controls_are_untouched_by_fusion() {
    let fused = session();
    let mut baseline = session();
    baseline.set_fusion_enabled(false);
    for q in fusion_tpcds::control_queries() {
        let (pf, report) = fused.optimize(&fused.plan_sql(&q.sql).unwrap());
        assert!(!report.fusion_applied, "{}", q.id);
        // Note: plans are not literally comparable across sessions (ids
        // differ), so compare structure size and scan multiset.
        let (pb, _) = baseline.optimize(&baseline.plan_sql(&q.sql).unwrap());
        assert_eq!(pf.node_count(), pb.node_count(), "{}", q.id);
        assert_eq!(pf.scanned_tables(), pb.scanned_tables(), "{}", q.id);
    }
}

/// Ablation: disabling the carrying rule forfeits each query's rewrite.
#[test]
fn ablation_maps_rules_to_queries() {
    let cases = [
        ("GroupByJoinToWindow", "Q65"),
        ("JoinOnKeys", "Q09"),
        ("UnionAllOnJoin", "Q23"),
        ("SemiToInnerDistinct", "Q95"),
    ];
    let full = session();
    for (rule, qid) in cases {
        let q = fusion_tpcds::all_queries()
            .into_iter()
            .find(|b| b.id == qid)
            .unwrap();
        let plan = full.plan_sql(&q.sql).unwrap();
        let (full_opt, full_report) = full.optimize(&plan);
        assert!(full_report.fusion_applied);

        let mut ablated = session();
        ablated.set_config(OptimizerConfig::without_rule(rule));
        let plan = ablated.plan_sql(&q.sql).unwrap();
        let (abl_opt, _) = ablated.optimize(&plan);
        assert!(
            abl_opt.scanned_tables().len() > full_opt.scanned_tables().len(),
            "disabling {rule} must forfeit {qid}'s dedup"
        );
    }
}
